//! End-to-end experiment-harness wall-clock: the same multi-benchmark
//! table workload timed serial vs parallel and cold vs warm flow cache.
//! Writes `results/bench_harness.json` so the speedup the parallel
//! runner + artifact cache deliver is a committed, regression-gated
//! artifact (the acceptance bar is ≥2× for parallel+warm vs serial
//! cold — on a single-core host the cache carries it alone).
//!
//! Honors `BENCH_RESULTS_DIR` like the timing harness. The flow cache is
//! pointed at a scratch directory under `target/` (never the committed
//! `results/cache/`), and "cold" is made real again before each cold
//! measurement by clearing both cache layers.

use emb_fsm::cache;
use emb_fsm::flow::{ff_flow, FlowConfig, Stimulus};
use fpga_fabric::place::PlaceOptions;
use logic_synth::synth::SynthOptions;
use paper_bench::runner::{run, RunnerOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The table workload: place-dominated MCNC machines of varied size.
const ITEMS: [&str; 4] = ["keyb", "dk16", "ex1", "styr"];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
}

/// One harness pass over all items with the given worker count; returns
/// its wall-clock. Rows go through the real runner (checkpointing and
/// all) so the measurement covers the machinery the table bins use.
fn pass(label: &str, threads: usize, scratch: &PathBuf) -> Duration {
    let items: Vec<String> = ITEMS.iter().map(ToString::to_string).collect();
    let opts = RunnerOptions {
        label: format!("bench_harness_{label}"),
        max_attempts: 1,
        checkpoint_dir: scratch.clone(),
        threads: Some(threads),
        backend: None,
        keep_failed: None,
    };
    let cfg = FlowConfig {
        cycles: 500,
        verify_cycles: 200,
        place: PlaceOptions {
            seed: 1,
            effort: 2.0,
            ..PlaceOptions::default()
        },
        ..FlowConfig::default()
    };
    let t = Instant::now();
    let out = run(&opts, &items, 2, |item, _| {
        let stg = fsm_model::benchmarks::by_name(item).ok_or_else(|| format!("no {item}"))?;
        let r = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg)
            .map_err(|e| e.to_string())?;
        Ok(vec![vec![
            item.to_string(),
            format!(
                "{:.3}",
                r.power_at(85.0)
                    .map_or(0.0, powermodel::PowerReport::total_mw)
            ),
        ]])
    });
    assert!(
        out.failures.is_empty(),
        "harness bench workload must not fail"
    );
    t.elapsed()
}

/// Empties both cache layers (the disk directory stays, its contents go).
fn clear_cache(dir: &PathBuf) {
    cache::reset_memory();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

fn main() {
    let scratch = workspace_root()
        .join("target")
        .join(format!("bench_harness_scratch_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    // Must precede the first cache access: the config is read once.
    std::env::set_var("FLOW_CACHE_DIR", scratch.join("cache"));

    eprintln!("== bench suite: harness ({} items) ==", ITEMS.len());
    clear_cache(&scratch.join("cache"));
    let serial_cold = pass("serial_cold", 1, &scratch);
    let serial_warm = pass("serial_warm", 1, &scratch);
    clear_cache(&scratch.join("cache"));
    let parallel_cold = pass("parallel_cold", 4, &scratch);
    let parallel_warm = pass("parallel_warm", 4, &scratch);
    let speedup = serial_cold.as_secs_f64() / parallel_warm.as_secs_f64().max(1e-9);
    for (name, d) in [
        ("serial_cold", serial_cold),
        ("serial_warm", serial_warm),
        ("parallel_cold", parallel_cold),
        ("parallel_warm", parallel_warm),
    ] {
        eprintln!("{name:<16} {d:.2?}");
    }
    eprintln!("speedup (parallel+warm vs serial cold): {speedup:.1}x");

    let dir = std::env::var("BENCH_RESULTS_DIR").map_or_else(
        |_| workspace_root().join("results"),
        |d| {
            let d = PathBuf::from(d);
            if d.is_absolute() {
                d
            } else {
                workspace_root().join(d)
            }
        },
    );
    std::fs::create_dir_all(&dir).expect("create results/");
    let path = dir.join("bench_harness.json");
    let json = format!(
        "{{\n  \"suite\": \"harness\",\n  \"items\": {},\n  \
         \"serial_cold_ms\": {:.1},\n  \"serial_warm_ms\": {:.1},\n  \
         \"parallel_cold_ms\": {:.1},\n  \"parallel_warm_ms\": {:.1},\n  \
         \"speedup_parallel_warm_vs_serial_cold\": {:.2}\n}}\n",
        ITEMS.len(),
        serial_cold.as_secs_f64() * 1e3,
        serial_warm.as_secs_f64() * 1e3,
        parallel_cold.as_secs_f64() * 1e3,
        parallel_warm.as_secs_f64() * 1e3,
        speedup,
    );
    std::fs::write(&path, json).expect("write bench JSON");
    eprintln!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);
}
