//! Criterion micro-benchmarks for the paper's core algorithm: mapping an
//! FSM into embedded memory blocks, content generation, and the
//! clock-control synthesis.

use criterion::{criterion_group, criterion_main, Criterion};
use emb_fsm::clock_control::attach_emb_clock_control;
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use logic_synth::techmap::MapOptions;
use std::hint::black_box;

fn bench_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("map_fsm_into_embs");
    for name in ["donfile", "keyb", "planet", "sand"] {
        let stg = fsm_model::benchmarks::by_name(name).expect("paper benchmark");
        g.bench_function(name, |b| {
            b.iter(|| map_fsm_into_embs(black_box(&stg), &EmbOptions::default()).expect("maps"));
        });
    }
    g.finish();
}

fn bench_netlist_generation(c: &mut Criterion) {
    let stg = fsm_model::benchmarks::by_name("planet").expect("planet");
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    c.bench_function("emb_to_netlist/planet", |b| {
        b.iter(|| black_box(&emb).to_netlist());
    });
}

fn bench_clock_control(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_control");
    for name in ["keyb", "planet"] {
        let stg = fsm_model::benchmarks::by_name(name).expect("paper benchmark");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        g.bench_function(name, |b| {
            b.iter(|| {
                attach_emb_clock_control(black_box(&emb), MapOptions::default()).expect("cc")
            });
        });
    }
    g.finish();
}

fn bench_eco_rewrite(c: &mut Criterion) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    c.bench_function("eco_rewrite/keyb", |b| {
        b.iter(|| emb_fsm::eco::rewrite(black_box(&emb), &stg).expect("eco"));
    });
}

criterion_group!(
    benches,
    bench_map,
    bench_netlist_generation,
    bench_clock_control,
    bench_eco_rewrite
);
criterion_main!(benches);
