//! Micro-benchmarks for the paper's core algorithm: mapping an FSM into
//! embedded memory blocks, content generation, and the clock-control
//! synthesis. Runs on the in-workspace `paper_bench::timing` harness
//! (hermetic, no registry deps); writes `results/bench_mapping.json`.

use emb_fsm::clock_control::attach_emb_clock_control;
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use logic_synth::techmap::MapOptions;
use paper_bench::timing::Harness;
use std::hint::black_box;

fn bench_map(h: &mut Harness) {
    for name in ["donfile", "keyb", "planet", "sand"] {
        let stg = fsm_model::benchmarks::by_name(name).expect("paper benchmark");
        h.bench(&format!("map_fsm_into_embs/{name}"), || {
            map_fsm_into_embs(black_box(&stg), &EmbOptions::default()).expect("maps")
        });
    }
}

fn bench_netlist_generation(h: &mut Harness) {
    let stg = fsm_model::benchmarks::by_name("planet").expect("planet");
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    h.bench("emb_to_netlist/planet", || black_box(&emb).to_netlist());
}

fn bench_clock_control(h: &mut Harness) {
    for name in ["keyb", "planet"] {
        let stg = fsm_model::benchmarks::by_name(name).expect("paper benchmark");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        h.bench(&format!("clock_control/{name}"), || {
            attach_emb_clock_control(black_box(&emb), MapOptions::default()).expect("cc")
        });
    }
}

fn bench_eco_rewrite(h: &mut Harness) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    h.bench("eco_rewrite/keyb", || {
        emb_fsm::eco::rewrite(black_box(&emb), &stg).expect("eco")
    });
}

fn main() {
    let mut h = Harness::new("mapping");
    bench_map(&mut h);
    bench_netlist_generation(&mut h);
    bench_clock_control(&mut h);
    bench_eco_rewrite(&mut h);
    h.finish();
}
