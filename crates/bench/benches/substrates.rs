//! Criterion micro-benchmarks for the substrates: espresso minimization,
//! LUT technology mapping, simulated-annealing placement, routing, and
//! cycle-based netlist simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use emb_fsm::baseline::ff_netlist;
use fpga_fabric::device::Device;
use fpga_fabric::pack::pack;
use fpga_fabric::place::{place, PlaceOptions};
use fpga_fabric::route::{route, RouteOptions};
use logic_synth::cover::Cover;
use logic_synth::cube::Cube;
use logic_synth::decompose::decompose2;
use logic_synth::synth::{synthesize, SynthOptions};
use logic_synth::techmap::{map_luts, MapOptions};
use netsim::engine::Simulator;
use netsim::stimulus;
use std::hint::black_box;

fn keyb_ff_netlist() -> fpga_fabric::netlist::Netlist {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    ff_netlist(&synth, false).0
}

fn bench_espresso(c: &mut Criterion) {
    // A structured 10-var function: minterms of popcount >= 6.
    let mut onset = Cover::empty(10);
    for m in 0..1u64 << 10 {
        if m.count_ones() >= 6 {
            onset.push(Cube::minterm(10, m));
        }
    }
    c.bench_function("espresso/popcount10", |b| {
        b.iter(|| logic_synth::espresso::minimize_exact_care(black_box(&onset)));
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    c.bench_function("synthesize_fsm/keyb", |b| {
        b.iter(|| synthesize(black_box(&stg), SynthOptions::default()).expect("synthesis"));
    });
}

fn bench_techmap(c: &mut Criterion) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    let two = decompose2(&synth.network);
    c.bench_function("map_luts/keyb", |b| {
        b.iter(|| map_luts(black_box(&two), MapOptions::default()).expect("maps"));
    });
}

fn bench_place_route(c: &mut Criterion) {
    let netlist = keyb_ff_netlist();
    let packed = pack(&netlist);
    let device = Device::xc2v250();
    c.bench_function("place_sa/keyb", |b| {
        b.iter(|| {
            place(
                black_box(&netlist),
                &packed,
                device,
                PlaceOptions { seed: 1, effort: 2.0 },
            )
            .expect("places")
        });
    });
    let placement = place(&netlist, &packed, device, PlaceOptions::default()).expect("places");
    c.bench_function("route/keyb", |b| {
        b.iter(|| {
            route(
                black_box(&netlist),
                &packed,
                &placement,
                RouteOptions::default(),
            )
            .expect("routes")
        });
    });
}

fn bench_simulation(c: &mut Criterion) {
    let netlist = keyb_ff_netlist();
    let vectors = stimulus::random(netlist.inputs().len(), 1000, 3);
    c.bench_function("simulate_1k_cycles/keyb", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(black_box(&netlist)).expect("simulator");
            for v in &vectors {
                sim.clock(v);
            }
            sim.activity().cycles
        });
    });
}

criterion_group!(
    benches,
    bench_espresso,
    bench_synthesis,
    bench_techmap,
    bench_place_route,
    bench_simulation
);
criterion_main!(benches);
