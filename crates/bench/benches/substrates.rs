//! Micro-benchmarks for the substrates: espresso minimization, LUT
//! technology mapping, simulated-annealing placement, routing, and
//! cycle-based netlist simulation throughput. Runs on the in-workspace
//! `paper_bench::timing` harness (hermetic, no registry deps); writes
//! `results/bench_substrates.json`.

use emb_fsm::baseline::ff_netlist;
use emb_fsm::verify::{verify_exhaustive, verify_exhaustive_scalar, OutputTiming};
use fpga_fabric::device::Device;
use fpga_fabric::pack::pack;
use fpga_fabric::place::{place, PlaceOptions};
use fpga_fabric::route::{route, RouteOptions};
use logic_synth::cover::Cover;
use logic_synth::cube::Cube;
use logic_synth::decompose::decompose2;
use logic_synth::synth::{synthesize, SynthOptions};
use logic_synth::techmap::{map_luts, MapOptions};
use netsim::engine::Simulator;
use netsim::stimulus;
use paper_bench::timing::Harness;
use std::hint::black_box;

fn keyb_ff_netlist() -> fpga_fabric::netlist::Netlist {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    ff_netlist(&synth, false).0
}

fn bench_espresso(h: &mut Harness) {
    // A structured 10-var function: minterms of popcount >= 6.
    let mut onset = Cover::empty(10);
    for m in 0..1u64 << 10 {
        if m.count_ones() >= 6 {
            onset.push(Cube::minterm(10, m));
        }
    }
    h.bench("espresso/popcount10", || {
        logic_synth::espresso::minimize_exact_care(black_box(&onset))
    });
}

fn bench_synthesis(h: &mut Harness) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    h.bench("synthesize_fsm/keyb", || {
        synthesize(black_box(&stg), SynthOptions::default()).expect("synthesis")
    });
}

fn bench_techmap(h: &mut Harness) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    let two = decompose2(&synth.network);
    h.bench("map_luts/keyb", || {
        map_luts(black_box(&two), MapOptions::default()).expect("maps")
    });
}

fn bench_place_route(h: &mut Harness) {
    let netlist = keyb_ff_netlist();
    let packed = pack(&netlist);
    let device = Device::xc2v250();
    // The gated anneal: PlaceOptions::default() has the criticality cost
    // term enabled (timing_weight 0.5) — the 1.25x regression gate in
    // scripts/verify.sh holds with timing on.
    h.bench("place_sa/keyb", || {
        place(
            black_box(&netlist),
            &packed,
            device,
            PlaceOptions {
                seed: 1,
                effort: 2.0,
                ..PlaceOptions::default()
            },
        )
        .expect("places")
    });
    // The same anneal wirelength-only: the ratio below records what the
    // timing term costs (or saves, via early-exit rejection) end to end.
    h.bench("place_sa_wl/keyb", || {
        place(
            black_box(&netlist),
            &packed,
            device,
            PlaceOptions {
                seed: 1,
                effort: 2.0,
                timing_weight: 0.0,
                ..PlaceOptions::default()
            },
        )
        .expect("places")
    });
    h.record_ratio("place_sa_wl_over_timing/keyb", "place_sa_wl/keyb", "place_sa/keyb");
    let placement = place(&netlist, &packed, device, PlaceOptions::default()).expect("places");
    h.bench("route/keyb", || {
        route(
            black_box(&netlist),
            &packed,
            &placement,
            RouteOptions::default(),
        )
        .expect("routes")
    });
}

fn bench_timing_kernel(h: &mut Harness) {
    // The incremental STA kernel under a placer-move-like edit stream:
    // perturb a rotating window of wire delays, flush, and read back the
    // worst slack — the exact query pattern the timing-driven anneal
    // issues between moves.
    let netlist = keyb_ff_netlist();
    let model = fpga_fabric::timing::DelayModel::default();
    let mut kernel =
        fpga_fabric::sta::TimingKernel::new(&netlist, &model).expect("kernel builds");
    let nets = kernel.num_nets();
    let mut step = 0u64;
    h.bench("place_timing_kernel/keyb", || {
        let mut acc = 0.0f64;
        for k in 0..8u64 {
            let i = ((step.wrapping_mul(31).wrapping_add(k * 7)) % nets as u64) as usize;
            let bump = 0.01 * ((step + k) % 5) as f64;
            kernel.set_wire_delay(
                fpga_fabric::netlist::NetId(i as u32),
                model.net_base + bump,
            );
        }
        kernel.flush();
        step = step.wrapping_add(1);
        acc += kernel.critical_ns();
        acc
    });
}

fn bench_simulation(h: &mut Harness) {
    let netlist = keyb_ff_netlist();
    let vectors = stimulus::random(netlist.inputs().len(), 1000, 3);
    h.bench("simulate_1k_cycles/keyb", || {
        let mut sim = Simulator::new(black_box(&netlist)).expect("simulator");
        for v in &vectors {
            sim.clock(v);
        }
        sim.activity().cycles
    });
}

fn bench_verify(h: &mut Harness) {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let netlist = keyb_ff_netlist();
    // The batched product walk (64 input vectors per word) against the
    // scalar walk on the same netlist: the ratio is the kernel's whole
    // reason to exist, so both are recorded and verify.sh gates on it.
    h.bench("verify_exhaustive/keyb", || {
        verify_exhaustive(
            black_box(&netlist),
            &stg,
            OutputTiming::Combinational,
            16,
        )
        .expect("keyb is exhaustively equivalent")
        .edges_checked
    });
    h.bench("verify_exhaustive_scalar/keyb", || {
        verify_exhaustive_scalar(
            black_box(&netlist),
            &stg,
            OutputTiming::Combinational,
            16,
        )
        .expect("keyb is exhaustively equivalent")
        .edges_checked
    });
}

fn main() {
    let mut h = Harness::new("substrates");
    bench_espresso(&mut h);
    bench_synthesis(&mut h);
    bench_techmap(&mut h);
    bench_place_route(&mut h);
    bench_timing_kernel(&mut h);
    bench_simulation(&mut h);
    bench_verify(&mut h);
    h.finish();
}
