//! Ablation: BRAM aspect-ratio selection and access power
//! (DESIGN.md §5.2).
//!
//! Sec. 5: "Power consumed by the blockram is dependent upon the number
//! of word-lines used, and number of bits in a word-line used." The
//! mapper picks the widest shape whose address lines cover `I + s`; this
//! ablation compares that choice against deliberately deeper/narrower
//! organizations of the same machine realized by padding address bits.

use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use fpga_fabric::device::BramShape;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::TextTable;

fn main() {
    println!("Ablation: aspect ratio vs BRAM cost (model view)\n");
    let mut table = TextTable::new(vec![
        "shape",
        "BRAMs needed",
        "rows live",
        "bits/BRAM used",
        "access C (pF, total)",
    ]);
    // Model-level comparison: the access capacitance the power model
    // assigns to each legal organization of one benchmark's ROM. One item
    // emits the whole shape grid.
    let items = vec!["keyb".to_string()];
    let out = run(
        &RunnerOptions::new("ablation_aspect"),
        &items,
        5,
        |name, _attempt| {
            let stg = fsm_model::benchmarks::by_name(name)
                .ok_or_else(|| format!("unknown benchmark {name}"))?;
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
                .map_err(|e| format!("mapping failed: {e}"))?;
            let p = powermodel::PowerParams::default();
            let logical_bits = emb.logical_addr_bits();
            let data = emb.data_width;
            let mut rows = Vec::new();
            for shape in BramShape::ALL {
                if shape.addr_bits < logical_bits {
                    continue; // cannot hold the ROM in one bank
                }
                let brams = data.div_ceil(shape.data_bits);
                let live_rows = 1u64 << logical_bits;
                let mut total_c = 0.0;
                for i in 0..brams {
                    let bits = shape.data_bits.min(data - i * shape.data_bits);
                    total_c += p.c_bram_access_base
                        + p.c_bram_per_row * live_rows as f64
                        + p.c_bram_per_bit * bits as f64;
                }
                let chosen = shape == emb.shape;
                rows.push(vec![
                    format!("{shape}{}", if chosen { "  <= chosen" } else { "" }),
                    brams.to_string(),
                    live_rows.to_string(),
                    shape.data_bits.min(data).to_string(),
                    format!("{total_c:.1}"),
                ]);
            }
            Ok(rows)
        },
    );
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("keyb's widest shape reaching the address count uses the fewest");
    println!("BRAMs and the least total access capacitance (Fig. 5 line 2's");
    println!("selection rule).");
}
