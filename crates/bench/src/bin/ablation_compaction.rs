//! Ablation: column compaction vs the series (bank) fallback
//! (DESIGN.md §5.3).
//!
//! For machines whose `I + s` exceeds the 14 available address lines the
//! paper argues a state-controlled input mux beats "connecting more EMBs
//! in series … as instantiating more EMBs increases the power
//! consumption." This ablation maps the same wide-input machine both
//! ways and compares BRAMs, LUTs and power.

use emb_fsm::flow::{emb_flow, Stimulus};
use emb_fsm::map::EmbOptions;
use fsm_model::generate::{generate, StgSpec};
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, TextTable};

fn wide12() -> fsm_model::stg::Stg {
    // 12 inputs + 3 state bits = 15 > 14 address lines: must compact or
    // split into banks.
    generate(&StgSpec {
        states: 8,
        inputs: 12,
        outputs: 4,
        transitions: 40,
        max_support: Some(3),
        self_loop_bias: 0.2,
        idle_line: Some(0),
        ..StgSpec::new("wide12")
    })
    .expect("static wide12 spec generates")
}

fn main() {
    let stg = wide12();
    println!(
        "Ablation: compaction vs series banks ({}: {} inputs, {} states)\n",
        stg.name(),
        stg.num_inputs(),
        stg.num_states()
    );
    let mut table = TextTable::new(vec![
        "strategy",
        "BRAMs",
        "banks",
        "aux LUTs",
        "fmax",
        "power@100",
    ]);
    let items = vec!["compaction".to_string(), "series".to_string()];
    let out = run(
        &RunnerOptions::new("ablation_compaction"),
        &items,
        6,
        |item, attempt| {
            let stg = wide12();
            let (label, opts) = match item {
                "compaction" => ("compaction (Fig. 4)", EmbOptions::default()),
                "series" => (
                    "series banks (Fig. 5 l.16-18)",
                    EmbOptions {
                        allow_compaction: false,
                        ..EmbOptions::default()
                    },
                ),
                other => return Err(format!("unknown strategy {other}")),
            };
            let mut cfg = paper_config();
            cfg.seed += u64::from(attempt);
            let emb = emb_fsm::map::map_fsm_into_embs(&stg, &opts)
                .map_err(|e| format!("mapping failed: {e}"))?;
            let r = emb_flow(&stg, &opts, &Stimulus::Random, &cfg).map_err(|e| e.to_string())?;
            let p100 = r
                .power_at(100.0)
                .ok_or_else(|| "no power at 100 MHz".to_string())?;
            Ok(vec![vec![
                label.to_string(),
                emb.num_brams().to_string(),
                emb.banks.to_string(),
                emb.aux_luts().to_string(),
                format!("{:.1}", r.timing.fmax_mhz),
                mw(p100.total_mw()),
            ]])
        },
    );
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("The compacted mapping reaches a wide aspect ratio with one BRAM;");
    println!("the series mapping needs a bank per extra address bit plus an");
    println!("output mux, and pays for clocking every bank.");
}
