//! Ablation: state-encoding style for the FF baseline (DESIGN.md §5.1).
//!
//! Sec. 4.1: "The number of FFs used to implement an FSM depends on the
//! state encoding, such as sequential, one-hot, grey encoding." The EMB
//! mapping is pinned to binary (state bits are address lines); the FF
//! baseline can trade FFs against LUT depth.

use emb_fsm::flow::{ff_flow, Stimulus};
use fsm_model::encoding::EncodingStyle;
use logic_synth::synth::SynthOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, TextTable};

fn main() {
    println!("Ablation: FF-baseline state encoding (keyb, donfile)\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "encoding",
        "LUTs",
        "FFs",
        "slices",
        "fmax",
        "power@100",
    ]);
    let mut items = Vec::new();
    for name in ["keyb", "donfile"] {
        for style in ["binary", "gray", "onehot0"] {
            items.push(format!("{name}/{style}"));
        }
    }
    let out = run(
        &RunnerOptions::new("ablation_encoding"),
        &items,
        7,
        |item, attempt| {
            let (name, style_name) = item
                .split_once('/')
                .ok_or_else(|| format!("malformed item {item}"))?;
            let style = match style_name {
                "binary" => EncodingStyle::Binary,
                "gray" => EncodingStyle::Gray,
                "onehot0" => EncodingStyle::OneHotZero,
                other => return Err(format!("unknown encoding {other}")),
            };
            let stg = fsm_model::benchmarks::by_name(name)
                .ok_or_else(|| format!("unknown benchmark {name}"))?;
            let mut cfg = paper_config();
            cfg.seed += u64::from(attempt);
            let r = ff_flow(
                &stg,
                SynthOptions {
                    encoding: style,
                    ..SynthOptions::default()
                },
                &Stimulus::Random,
                &cfg,
            )
            .map_err(|e| e.to_string())?;
            let p100 = r
                .power_at(100.0)
                .ok_or_else(|| "no power at 100 MHz".to_string())?;
            Ok(vec![vec![
                name.to_string(),
                style.to_string(),
                r.area.luts.to_string(),
                r.area.ffs.to_string(),
                r.area.slices.to_string(),
                format!("{:.1}", r.timing.fmax_mhz),
                mw(p100.total_mw()),
            ]])
        },
    );
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
}
