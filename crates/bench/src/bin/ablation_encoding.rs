//! Ablation: state-encoding style for the FF baseline (DESIGN.md §5.1).
//!
//! Sec. 4.1: "The number of FFs used to implement an FSM depends on the
//! state encoding, such as sequential, one-hot, grey encoding." The EMB
//! mapping is pinned to binary (state bits are address lines); the FF
//! baseline can trade FFs against LUT depth.

use emb_fsm::flow::{ff_flow, Stimulus};
use fsm_model::encoding::EncodingStyle;
use logic_synth::synth::SynthOptions;
use paper_bench::{mw, paper_config, TextTable};

fn main() {
    let cfg = paper_config();
    println!("Ablation: FF-baseline state encoding (keyb, donfile)\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "encoding",
        "LUTs",
        "FFs",
        "slices",
        "fmax",
        "power@100",
    ]);
    for name in ["keyb", "donfile"] {
        let stg = fsm_model::benchmarks::by_name(name).expect("paper benchmark");
        for style in [
            EncodingStyle::Binary,
            EncodingStyle::Gray,
            EncodingStyle::OneHotZero,
        ] {
            let r = ff_flow(
                &stg,
                SynthOptions {
                    encoding: style,
                    ..SynthOptions::default()
                },
                &Stimulus::Random,
                &cfg,
            )
            .unwrap_or_else(|e| panic!("{name}/{style}: {e}"));
            table.row(vec![
                name.to_string(),
                style.to_string(),
                r.area.luts.to_string(),
                r.area.ffs.to_string(),
                r.area.slices.to_string(),
                format!("{:.1}", r.timing.fmax_mhz),
                mw(r.power_at(100.0).expect("100MHz").total_mw()),
            ]);
        }
    }
    print!("{}", table.render());
}
