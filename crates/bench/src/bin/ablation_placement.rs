//! Ablation: placement quality sensitivity (DESIGN.md §5.5).
//!
//! Sec. 4.1: "in a denser design, due to routing congestion, LUTs and FFs
//! may be spread all across the FPGA chip. This will increase the
//! programmable interconnect utilization and hence the power consumption.
//! Contrary to this the power consumed by the EMB-based FSM does not
//! change with routing congestion." We emulate placement quality with the
//! annealer's effort knob and compare how each implementation's
//! interconnect power responds.

use emb_fsm::flow::{FlowConfig, Stimulus};
use fpga_fabric::place::PlaceOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, try_compare, TextTable};

fn main() {
    println!("Ablation: placement effort vs interconnect power (styr, 100 MHz)\n");
    let mut table = TextTable::new(vec![
        "SA effort",
        "FF wirelength",
        "FF int (mW)",
        "FF total",
        "EMB wirelength",
        "EMB int (mW)",
        "EMB total",
    ]);
    let items: Vec<String> = ["0.02", "0.5", "4", "12"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let out = run(
        &RunnerOptions::new("ablation_placement"),
        &items,
        7,
        |item, attempt| {
            let effort: f64 = item.parse().map_err(|_| format!("bad effort {item}"))?;
            let stg = fsm_model::benchmarks::by_name("styr").ok_or("styr missing")?;
            let mut cfg = FlowConfig {
                place: PlaceOptions {
                    seed: 5,
                    effort,
                    ..PlaceOptions::default()
                },
                ..paper_config()
            };
            cfg.seed += u64::from(attempt);
            let (ff, emb) =
                try_compare(&stg, &Stimulus::Random, &cfg).map_err(|e| e.to_string())?;
            let pf = ff
                .power_at(100.0)
                .ok_or_else(|| "no FF power at 100 MHz".to_string())?;
            let pe = emb
                .power_at(100.0)
                .ok_or_else(|| "no EMB power at 100 MHz".to_string())?;
            Ok(vec![vec![
                item.to_string(),
                ff.total_wirelength.to_string(),
                mw(pf.interconnect_mw),
                mw(pf.total_mw()),
                emb.total_wirelength.to_string(),
                mw(pe.interconnect_mw),
                mw(pe.total_mw()),
            ]])
        },
    );
    // Footer statistics from the successful rows (mW columns 2 and 5).
    let mut ff_int = Vec::new();
    let mut emb_int = Vec::new();
    for row in &out.rows {
        if let (Ok(ff), Ok(emb)) = (row[2].parse::<f64>(), row[5].parse::<f64>()) {
            ff_int.push(ff);
            emb_int.push(emb);
        }
    }
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
    let swing = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        max - min
    };
    println!();
    println!(
        "Interconnect-power swing across efforts: FF {:.2} mW, EMB {:.2} mW —",
        swing(&ff_int),
        swing(&emb_int)
    );
    println!("the EMB machine is nearly placement-insensitive (Sec. 4.1).");
}
