//! Ablation: placement quality sensitivity (DESIGN.md §5.5).
//!
//! Sec. 4.1: "in a denser design, due to routing congestion, LUTs and FFs
//! may be spread all across the FPGA chip. This will increase the
//! programmable interconnect utilization and hence the power consumption.
//! Contrary to this the power consumed by the EMB-based FSM does not
//! change with routing congestion." We emulate placement quality with the
//! annealer's effort knob and compare how each implementation's
//! interconnect power responds.

use emb_fsm::flow::{FlowConfig, Stimulus};
use fpga_fabric::place::PlaceOptions;
use paper_bench::{compare, mw, paper_config, TextTable};

fn main() {
    let stg = fsm_model::benchmarks::by_name("styr").expect("styr");
    println!("Ablation: placement effort vs interconnect power (styr, 100 MHz)\n");
    let mut table = TextTable::new(vec![
        "SA effort",
        "FF wirelength",
        "FF int (mW)",
        "FF total",
        "EMB wirelength",
        "EMB int (mW)",
        "EMB total",
    ]);
    let mut ff_int = Vec::new();
    let mut emb_int = Vec::new();
    for effort in [0.02, 0.5, 4.0, 12.0] {
        let cfg = FlowConfig {
            place: PlaceOptions { seed: 5, effort },
            ..paper_config()
        };
        let (ff, emb) = compare(&stg, &Stimulus::Random, &cfg);
        let pf = ff.power_at(100.0).expect("100MHz");
        let pe = emb.power_at(100.0).expect("100MHz");
        ff_int.push(pf.interconnect_mw);
        emb_int.push(pe.interconnect_mw);
        table.row(vec![
            format!("{effort}"),
            ff.total_wirelength.to_string(),
            mw(pf.interconnect_mw),
            mw(pf.total_mw()),
            emb.total_wirelength.to_string(),
            mw(pe.interconnect_mw),
            mw(pe.total_mw()),
        ]);
    }
    print!("{}", table.render());
    let swing = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        max - min
    };
    println!();
    println!(
        "Interconnect-power swing across efforts: FF {:.2} mW, EMB {:.2} mW —",
        swing(&ff_int),
        swing(&emb_int)
    );
    println!("the EMB machine is nearly placement-insensitive (Sec. 4.1).");
}
