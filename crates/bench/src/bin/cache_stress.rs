//! Multi-process flow-cache stress driver: one writer/reader process of
//! the N that the `cache_stress` integration test runs concurrently
//! against a single tiny-budget `FLOW_CACHE_DIR`.
//!
//! ```text
//! cache_stress <seed> <iterations>
//! ```
//!
//! Each iteration publishes a placement under a key unique to
//! (seed, iteration), publishes under a small set of *shared* keys every
//! process fights over, and reloads earlier keys — so with
//! `FLOW_CACHE_MAX_BYTES` set, every process is simultaneously a writer,
//! an mtime-refreshing reader, and an evictor of the same store. The
//! memory layer is dropped each iteration to force the disk paths.
//! Prints `ok` and exits 0 when its iterations complete without a panic;
//! the store staying within budget is asserted by the test, not here.

use fpga_fabric::device::Device;
use fpga_fabric::place::{BudgetOutcome, PlaceOptions, Placement};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());
    let iterations: u64 = args
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage());

    let device = Device::xc2v250();
    let placement = synthetic_placement(&device);
    let mut keys = Vec::new();
    for i in 0..iterations {
        emb_fsm::cache::reset_memory();
        // A key nobody else publishes: unique netlist bytes.
        let unique = format!("stress-{seed}-{i}");
        let key = emb_fsm::cache::place_key(unique.as_bytes(), &device, PlaceOptions::default());
        emb_fsm::cache::store_placement(&key, &placement);
        keys.push(key);
        // A contended key: every process stores and loads these, so
        // publishes race publishes and loads race the evictor.
        let shared = format!("shared-{}", i % 7);
        let key = emb_fsm::cache::place_key(shared.as_bytes(), &device, PlaceOptions::default());
        emb_fsm::cache::store_placement(&key, &placement);
        let _ = emb_fsm::cache::load_placement(&key);
        // Reload an older key: usually evicted by now under a tiny
        // budget — a miss is fine, a panic is the bug.
        if let Some(old) = keys.get(keys.len().saturating_sub(5)) {
            let _ = emb_fsm::cache::load_placement(old);
        }
    }
    println!("ok");
}

/// A small but non-trivial placement (~30 CLBs) so records have enough
/// bytes that a few of them overflow a tiny budget.
fn synthetic_placement(device: &Device) -> Placement {
    Placement {
        device: device.clone(),
        clb_loc: (0..30).map(|i| (i % 8, i / 8)).collect(),
        bram_loc: vec![(0, 9)],
        iob_loc: (0..6).map(|i| (i, 10)).collect(),
        hpwl: 123.5,
        hpwl_sq: 1890.25,
        moves: 4096,
        budget: BudgetOutcome::Completed,
    }
}

fn usage() -> ! {
    eprintln!("usage: cache_stress <seed> <iterations>");
    std::process::exit(2);
}
