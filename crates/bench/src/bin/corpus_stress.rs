//! Corpus stress harness: thousands of synthetic machines through the
//! full flow under the degradation ladder, across every runner backend
//! and the daemon.
//!
//! Six passes over the same item list:
//!
//! 1. `serial_cold`   — sequential backend, cold flow cache (the
//!    outcome-histogram source and the serial-throughput baseline);
//! 2. `parallel_cold` — thread backend, cold cache;
//! 3. `parallel_warm` — thread backend, warm cache;
//! 4. `process_warm`  — process backend (spawned `--worker`
//!    re-invocations of this binary), warm cache;
//! 5. `overlay_auto`  — sequential backend with the mapping backend
//!    forced to `auto`: overlay-fit items land on the pre-built overlay
//!    bases, over-capacity items fall back to direct with a typed
//!    `overlay-capacity` downgrade (the overlay ladder-coverage source);
//! 6. `daemon`        — an in-process [`paper_bench::fabric::serve`]
//!    listener answering corpus-item mapping requests over its socket
//!    (one item per tier, a direct leg and an overlay `backend:auto`
//!    leg), doubling as the `fabric_daemon` load check.
//!
//! Passes 1–4 must produce byte-identical outcome rows once the
//! trailing stage-timing column is stripped
//! ([`Outcome::deterministic_columns`]) — the deterministic prefix
//! carries no timings and no cache counters, so backend choice and
//! cache warmth cannot leak into it. **stdout** is exactly the
//! deterministic payload (per-tier outcome histograms for the direct
//! and overlay passes and the union ladder-coverage summary):
//! `scripts/verify.sh` runs the harness twice and diffs it.
//! Timings and throughput go to **stderr** and to
//! `results/bench_corpus.json` (honoring `BENCH_RESULTS_DIR`).
//!
//! Knobs: `CORPUS_SEED` (default 2004), `CORPUS_PER_TIER` (machines per
//! tier, default 125 — 9 tiers × 125 = 1125 machines), `CORPUS_TIERS`
//! (comma-separated subset, default all).

use emb_fsm::MapBackend;
use paper_bench::corpus::{run_item_with_backend, Outcome};
use paper_bench::fabric::{request, request_with_retry, serve, worker_invocation_label, DaemonOptions};
use paper_bench::runner::{run, Backend, RunnerOptions};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

/// The tier list this run covers: `CORPUS_TIERS` (unknown names are
/// rejected loudly — a typo must not silently shrink coverage), else
/// every tier.
fn tiers() -> Vec<&'static str> {
    let all = fsm_model::corpus::tier_names();
    match std::env::var("CORPUS_TIERS") {
        Err(_) => all.to_vec(),
        Ok(list) => {
            let mut out = Vec::new();
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match all.iter().find(|t| **t == name) {
                    Some(t) => out.push(*t),
                    None => {
                        eprintln!("corpus_stress: unknown tier '{name}' in CORPUS_TIERS (known: {})", all.join(", "));
                        std::process::exit(2);
                    }
                }
            }
            out
        }
    }
}

/// One runner pass over all items; returns (rows, wall-clock, failures).
/// `map_backend` overrides the flow's mapping backend (`None` keeps the
/// profile default, i.e. direct).
fn pass(
    label: &str,
    backend: Backend,
    map_backend: Option<MapBackend>,
    items: &[String],
    scratch: &PathBuf,
) -> (Vec<Vec<String>>, Duration, usize) {
    let opts = RunnerOptions {
        label: format!("corpus_{label}"),
        max_attempts: 2,
        checkpoint_dir: scratch.clone(),
        threads: None,
        backend: Some(backend),
        keep_failed: Some(false),
    };
    let t = Instant::now();
    let out = run(&opts, items, Outcome::COLUMNS, |item, _attempt| {
        Ok(vec![run_item_with_backend(item, map_backend).row()])
    });
    (out.rows, t.elapsed(), out.failures.len())
}

/// The deterministic prefix of every row — the trailing stage-timing
/// column is measurement, not outcome, and differs run to run.
fn stripped(rows: &[Vec<String>]) -> Vec<&[String]> {
    rows.iter().map(|r| Outcome::deterministic_columns(r)).collect()
}

/// Empties both cache layers (the disk directory stays, its contents go).
fn clear_cache(dir: &PathBuf) {
    emb_fsm::cache::reset_memory();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

/// One per-tier histogram section, accumulating whole-corpus rung /
/// downgrade counts into the caller's coverage maps.
fn tier_sections<'a>(
    rows: &'a [Vec<String>],
    tiers: &[&str],
    rungs_hit: &mut BTreeMap<&'a str, usize>,
    downs_hit: &mut BTreeMap<String, usize>,
) {
    for tier in tiers {
        let tier_rows: Vec<&Vec<String>> = rows.iter().filter(|r| r.get(1).map(String::as_str) == Some(*tier)).collect();
        let mut status: BTreeMap<&str, usize> = BTreeMap::new();
        let mut rung: BTreeMap<&str, usize> = BTreeMap::new();
        let mut down: BTreeMap<String, usize> = BTreeMap::new();
        for r in &tier_rows {
            *status.entry(r[2].as_str()).or_default() += 1;
            *rung.entry(r[5].as_str()).or_default() += 1;
            for d in r[6].split('+') {
                *down.entry(d.to_string()).or_default() += 1;
            }
        }
        println!("tier {tier}: total={}", tier_rows.len());
        for (k, n) in &status {
            println!("  status {k}={n}");
        }
        for (k, n) in &rung {
            println!("  rung {k}={n}");
            if *k != "-" {
                *rungs_hit.entry(k).or_default() += n;
            }
        }
        for (k, n) in &down {
            println!("  downgrade {k}={n}");
            if k != "-" && k != "none" {
                *downs_hit.entry(k.clone()).or_default() += n;
            }
        }
    }
}

/// Per-tier outcome histograms (direct pass, then the overlay pass)
/// plus the union ladder coverage, printed to stdout. Everything here
/// is a pure function of the deterministic row columns, so two runs
/// with the same corpus parameters print byte-identical text.
fn print_histograms(
    rows: &[Vec<String>],
    overlay_rows: &[Vec<String>],
    tiers: &[&str],
    seed: u64,
    per_tier: u64,
) {
    println!(
        "== corpus outcome histogram (seed {seed}, {} tier(s) x {per_tier}) ==",
        tiers.len()
    );
    let mut rungs_hit: BTreeMap<&str, usize> = BTreeMap::new();
    let mut downs_hit: BTreeMap<String, usize> = BTreeMap::new();
    tier_sections(rows, tiers, &mut rungs_hit, &mut downs_hit);
    println!("== overlay pass histogram (backend auto) ==");
    tier_sections(overlay_rows, tiers, &mut rungs_hit, &mut downs_hit);
    println!("== ladder coverage ==");
    for r in ["direct", "compacted", "series", "overlay", "ff"] {
        println!("rung {r}: {}", rungs_hit.get(r).copied().unwrap_or(0));
    }
    for k in emb_fsm::flow::Downgrade::all_kinds() {
        println!("downgrade {k}: {}", downs_hit.get(*k).copied().unwrap_or(0));
    }
}

/// Daemon pass results: plain-leg ok / warm counts, overlay-leg ok
/// count, total requests sent, and wall-clock over both legs.
struct DaemonStats {
    ok: usize,
    warm: usize,
    overlay_ok: usize,
    requests: usize,
    elapsed: Duration,
}

/// Daemon pass: serve corpus mapping requests in-process over a Unix
/// socket — one item per tier, first with the profile's (direct)
/// backend, then with `"backend":"auto"` exercising the overlay wire
/// field — and count ok / warm responses. The response rows were all
/// computed (and cached) by the earlier passes, so a healthy daemon
/// answers every request warm.
fn daemon_pass(items_one_per_tier: &[String], scratch: &PathBuf) -> DaemonStats {
    let socket = scratch.join("corpus_stress.sock");
    let opts = DaemonOptions::new(&socket);
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while request(&socket, "{\"cmd\":\"ping\"}").is_err() {
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
    let t = Instant::now();
    let mut stats = DaemonStats {
        ok: 0,
        warm: 0,
        overlay_ok: 0,
        requests: 0,
        elapsed: Duration::ZERO,
    };
    for item in items_one_per_tier {
        let line = format!("{{\"bench\":\"{item}\"}}");
        stats.requests += 1;
        match request_with_retry(&socket, &line, 4) {
            Ok(r) if r.contains("\"ok\":true") => {
                stats.ok += 1;
                if r.contains("\"warm\":true") {
                    stats.warm += 1;
                }
            }
            Ok(r) => eprintln!("corpus_stress: daemon rejected {item}: {r}"),
            Err(e) => eprintln!("corpus_stress: daemon request failed for {item}: {e}"),
        }
    }
    for item in items_one_per_tier {
        let line = format!("{{\"bench\":\"{item}\",\"backend\":\"auto\"}}");
        stats.requests += 1;
        match request_with_retry(&socket, &line, 4) {
            Ok(r) if r.contains("\"ok\":true") => stats.overlay_ok += 1,
            Ok(r) => eprintln!("corpus_stress: daemon rejected overlay {item}: {r}"),
            Err(e) => eprintln!("corpus_stress: daemon overlay request failed for {item}: {e}"),
        }
    }
    stats.elapsed = t.elapsed();
    let _ = request(&socket, "{\"cmd\":\"shutdown\"}");
    let _ = handle.join();
    stats
}

fn main() {
    // A `--worker` re-invocation must keep the coordinator's scratch
    // environment (shared flow cache) and skip every side effect on the
    // way to its `run()` call, which never returns for its label.
    let in_worker = worker_invocation_label().is_some();
    let scratch = workspace_root()
        .join("target")
        .join(format!("corpus_stress_scratch_{}", std::process::id()));
    if !in_worker {
        std::fs::create_dir_all(&scratch).expect("create scratch dir");
        // Must precede the first cache access: the config is read once.
        std::env::set_var("FLOW_CACHE_DIR", scratch.join("cache"));
    }

    let seed = env_u64("CORPUS_SEED", 2004);
    let per_tier = env_u64("CORPUS_PER_TIER", 125);
    let tiers = tiers();
    let mut items = Vec::new();
    for tier in &tiers {
        for i in 0..per_tier {
            let s = fsm_model::corpus::spec(tier, i as usize, seed).expect("known tier");
            items.push(s.name);
        }
    }
    if !in_worker {
        eprintln!(
            "== corpus_stress: {} machine(s), {} tier(s), seed {seed} ==",
            items.len(),
            tiers.len()
        );
        clear_cache(&scratch.join("cache"));
    }

    let (serial_rows, serial_cold, serial_fail) =
        pass("serial_cold", Backend::Sequential, None, &items, &scratch);
    if !in_worker {
        clear_cache(&scratch.join("cache"));
    }
    let (par_cold_rows, parallel_cold, par_cold_fail) =
        pass("parallel_cold", Backend::Threads, None, &items, &scratch);
    let (par_warm_rows, parallel_warm, par_warm_fail) =
        pass("parallel_warm", Backend::Threads, None, &items, &scratch);
    let (proc_rows, process_warm, proc_fail) =
        pass("process_warm", Backend::Process, None, &items, &scratch);
    // In a worker re-invocation the passes above either served items
    // (and exited at EOF) or returned placeholder rows; nothing below
    // may run there.
    assert!(!in_worker, "worker re-invocations exit inside run()");

    // Overlay pass: same items with the mapping backend forced to
    // `auto` — overlay where the capacity ladder fits, typed
    // `overlay-capacity` fallback to direct where it does not. Runs
    // after the worker guard so `--worker` re-invocations never see it.
    let (overlay_rows, overlay_auto, overlay_fail) =
        pass("overlay_auto", Backend::Sequential, Some(MapBackend::Auto), &items, &scratch);

    let failures = serial_fail + par_cold_fail + par_warm_fail + proc_fail + overlay_fail;
    assert_eq!(failures, 0, "corpus_stress: {failures} coordinator failure(s)");
    assert_eq!(
        stripped(&serial_rows),
        stripped(&par_cold_rows),
        "thread backend diverged from sequential"
    );
    assert_eq!(
        stripped(&serial_rows),
        stripped(&par_warm_rows),
        "warm cache leaked into outcome rows"
    );
    assert_eq!(
        stripped(&serial_rows),
        stripped(&proc_rows),
        "process backend diverged from sequential"
    );

    print_histograms(&serial_rows, &overlay_rows, &tiers, seed, per_tier);

    let one_per_tier: Vec<String> = tiers
        .iter()
        .filter_map(|t| fsm_model::corpus::spec(t, 0, seed).map(|s| s.name))
        .collect();
    let daemon = daemon_pass(&one_per_tier, &scratch);
    println!("== daemon ==");
    println!("daemon ok: {}/{}", daemon.ok, one_per_tier.len());
    println!("daemon overlay ok: {}/{}", daemon.overlay_ok, one_per_tier.len());
    assert_eq!(daemon.ok, one_per_tier.len(), "daemon rejected corpus load");
    assert_eq!(
        daemon.overlay_ok,
        one_per_tier.len(),
        "daemon rejected overlay-backend corpus load"
    );

    let n = items.len() as f64;
    let fsms = |d: Duration| n / d.as_secs_f64().max(1e-9);
    let fsms_daemon = daemon.requests as f64 / daemon.elapsed.as_secs_f64().max(1e-9);
    for (name, d) in [
        ("serial_cold", serial_cold),
        ("parallel_cold", parallel_cold),
        ("parallel_warm", parallel_warm),
        ("process_warm", process_warm),
        ("overlay_auto", overlay_auto),
    ] {
        eprintln!("{name:<14} {d:>10.2?}  {:>8.1} FSMs/sec", fsms(d));
    }
    eprintln!(
        "daemon         {:>10.2?}  {}/{} ok, {} warm, {:.1} FSMs/sec",
        daemon.elapsed,
        daemon.ok,
        one_per_tier.len(),
        daemon.warm,
        fsms_daemon
    );

    let dir = std::env::var("BENCH_RESULTS_DIR").map_or_else(
        |_| workspace_root().join("results"),
        |d| {
            let d = PathBuf::from(d);
            if d.is_absolute() {
                d
            } else {
                workspace_root().join(d)
            }
        },
    );
    std::fs::create_dir_all(&dir).expect("create results/");
    let path = dir.join("bench_corpus.json");
    let json = format!(
        "{{\n  \"suite\": \"corpus\",\n  \"machines\": {},\n  \"tiers\": {},\n  \
         \"seed\": {seed},\n  \"per_tier\": {per_tier},\n  \
         \"serial_cold_ms\": {:.1},\n  \"parallel_cold_ms\": {:.1},\n  \
         \"parallel_warm_ms\": {:.1},\n  \"process_warm_ms\": {:.1},\n  \
         \"overlay_auto_ms\": {:.1},\n  \
         \"fsms_per_sec_serial\": {:.2},\n  \"fsms_per_sec_parallel\": {:.2},\n  \
         \"fsms_per_sec_warm\": {:.2},\n  \"fsms_per_sec_overlay\": {:.2},\n  \
         \"daemon_items\": {},\n  \"daemon_ok\": {},\n  \"daemon_overlay_ok\": {},\n  \
         \"daemon_warm\": {},\n  \
         \"daemon_ms\": {:.1},\n  \"fsms_per_sec_daemon\": {:.2},\n  \
         \"coordinator_failures\": 0\n}}\n",
        items.len(),
        tiers.len(),
        serial_cold.as_secs_f64() * 1e3,
        parallel_cold.as_secs_f64() * 1e3,
        parallel_warm.as_secs_f64() * 1e3,
        process_warm.as_secs_f64() * 1e3,
        overlay_auto.as_secs_f64() * 1e3,
        fsms(serial_cold),
        fsms(parallel_cold),
        fsms(parallel_warm),
        fsms(overlay_auto),
        one_per_tier.len(),
        daemon.ok,
        daemon.overlay_ok,
        daemon.warm,
        daemon.elapsed.as_secs_f64() * 1e3,
        fsms_daemon,
    );
    std::fs::write(&path, json).expect("write bench JSON");
    eprintln!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);
}
