//! One-shot client for the mapping daemon.
//!
//! ```text
//! fabric_client [--socket PATH] <ping|stats|shutdown|map BENCH|sleep MS>
//! ```
//!
//! Prints the daemon's JSON response line on stdout and exits 0 exactly
//! when the response says `"ok":true` — so shell gates (verify.sh's
//! daemon smoke test) can chain on the exit code and grep the body.
//!
//! `FABRIC_CLIENT_RETRIES` (default 0) enables bounded
//! retry-with-backoff on transient outcomes: typed
//! `overloaded`/`draining` rejects and connect-level failures (daemon
//! not yet listening). The default stays 0 so a reject is observable as
//! itself — backpressure tests and gates depend on seeing the typed
//! body, not a silent retry.

use paper_bench::fabric::request_with_retry;
use std::path::PathBuf;

fn main() {
    let mut socket: PathBuf = std::env::var_os("FABRIC_SOCKET")
        .map_or_else(|| PathBuf::from("fabric.sock"), PathBuf::from);
    let retries: u32 = std::env::var("FABRIC_CLIENT_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut words: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = PathBuf::from(p),
                None => usage("--socket needs a path"),
            },
            _ => words.push(arg),
        }
    }
    let line = match words.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["ping"] => "{\"cmd\":\"ping\"}".to_string(),
        ["stats"] => "{\"cmd\":\"stats\"}".to_string(),
        ["shutdown"] => "{\"cmd\":\"shutdown\"}".to_string(),
        ["map", bench] => format!("{{\"bench\":\"{bench}\"}}"),
        ["sleep", ms] => match ms.parse::<u64>() {
            Ok(ms) => format!("{{\"cmd\":\"sleep\",\"ms\":{ms}}}"),
            Err(_) => usage("sleep needs a millisecond count"),
        },
        _ => usage("expected one of: ping | stats | shutdown | map BENCH | sleep MS"),
    };
    match request_with_retry(&socket, &line, retries) {
        Ok(response) => {
            println!("{response}");
            if !response.contains("\"ok\":true") {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fabric_client: {}: {e}", socket.display());
            std::process::exit(1);
        }
    }
}

fn usage(why: &str) -> ! {
    eprintln!(
        "fabric_client: {why}\nusage: fabric_client [--socket PATH] <ping|stats|shutdown|map BENCH|sleep MS>"
    );
    std::process::exit(2);
}
