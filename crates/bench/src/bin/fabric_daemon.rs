//! Long-running mapping daemon: serves FF-vs-EMB flow requests over a
//! Unix socket until told to shut down.
//!
//! ```text
//! fabric_daemon [--socket PATH] [--max-inflight N]
//! ```
//!
//! Defaults come from `FABRIC_SOCKET` (else `./fabric.sock`),
//! `FABRIC_MAX_INFLIGHT` (else 4), `FABRIC_REQUEST_TIMEOUT_MS` (else
//! 120000; 0 disables the per-request deadline) and
//! `FABRIC_IDLE_TIMEOUT_MS` (else 10000, the idle-connection sweep).
//! Protocol: one JSON request line per connection — `{"bench":"keyb"}`
//! to map, `{"cmd":"ping"|"stats"|"shutdown"}` for control,
//! `{"cmd":"sleep","ms":N}` as a deterministic load stand-in — one JSON
//! response line back. A socket a live daemon still answers on is never
//! clobbered: this exits 3 with the typed `already-running` error. See
//! `paper_bench::fabric` and DESIGN.md §12–13.

use paper_bench::fabric::{serve, DaemonOptions};
use std::path::PathBuf;

fn main() {
    let mut socket: PathBuf = std::env::var_os("FABRIC_SOCKET")
        .map_or_else(|| PathBuf::from("fabric.sock"), PathBuf::from);
    let mut max_inflight: usize = std::env::var("FABRIC_MAX_INFLIGHT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = PathBuf::from(p),
                None => usage("--socket needs a path"),
            },
            "--max-inflight" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_inflight = n,
                None => usage("--max-inflight needs a number"),
            },
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let mut opts = DaemonOptions::from_env(socket);
    opts.max_inflight = max_inflight;
    if let Err(e) = serve(&opts) {
        eprintln!(
            "fabric_daemon: cannot serve on {}: {e}",
            opts.socket.display()
        );
        // Distinguish "another daemon owns this socket" (a deployment
        // race, not a fault) from genuine bind/serve failures.
        let code = if e.kind() == std::io::ErrorKind::AddrInUse {
            3
        } else {
            1
        };
        std::process::exit(code);
    }
}

fn usage(why: &str) -> ! {
    eprintln!("fabric_daemon: {why}\nusage: fabric_daemon [--socket PATH] [--max-inflight N]");
    std::process::exit(2);
}
