//! Deterministic runner exerciser for the process-backend integration
//! tests — a harness bin whose "flow" is synthetic, so tests can compare
//! serial vs multi-process output byte-for-byte in milliseconds and
//! provoke worker crashes on demand.
//!
//! Env contract (all read by the closure, so worker processes inherit
//! the same behavior):
//!
//! * `SELFTEST_ITEMS` — comma-separated item names (default
//!   `alpha,beta,gamma,delta,epsilon`);
//! * `SELFTEST_DIR` — checkpoint directory (default the workspace
//!   `results/` like every real harness bin);
//! * `SELFTEST_MARKER_DIR` — where `poison-*` items leave their
//!   been-here marker.
//!
//! Item semantics: `poison-<x>` aborts the whole process the first time
//! any process computes it (the marker file makes the second attempt
//! succeed) — simulating the `kill -9`-class death the process backend
//! exists to isolate; `fail-<x>` returns a typed error every attempt
//! (exercising placeholder rows); everything else yields one stable row.

use paper_bench::runner::{run, RunnerOptions};

fn main() {
    let items: Vec<String> = std::env::var("SELFTEST_ITEMS")
        .unwrap_or_else(|_| "alpha,beta,gamma,delta,epsilon".to_string())
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let mut opts = RunnerOptions::new("fabric_selftest");
    if let Some(dir) = std::env::var_os("SELFTEST_DIR") {
        opts.checkpoint_dir = dir.into();
    }
    let out = run(&opts, &items, 3, |item, attempt| {
        if item.starts_with("poison-") {
            let marker = std::env::var_os("SELFTEST_MARKER_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(std::env::temp_dir)
                .join(item);
            if !marker.exists() {
                let _ = std::fs::write(&marker, b"poisoned once\n");
                // Not a panic: catch_unwind cannot fence an abort, so
                // this takes down the entire hosting process like a real
                // OOM-kill or kill -9 would.
                std::process::abort();
            }
        }
        if item.starts_with("fail-") {
            return Err(format!("typed failure for {item}"));
        }
        Ok(vec![vec![
            item.to_string(),
            format!("row-{item}-{attempt}"),
            "z".to_string(),
        ]])
    });
    for row in &out.rows {
        println!("{}", row.join("|"));
    }
    if !out.unpersisted.is_empty() {
        println!("unpersisted: {}", out.unpersisted.join(","));
    }
}
