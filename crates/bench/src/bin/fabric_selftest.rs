//! Deterministic runner exerciser for the process-backend integration
//! tests — a harness bin whose "flow" is synthetic, so tests can compare
//! serial vs multi-process output byte-for-byte in milliseconds and
//! provoke worker crashes on demand.
//!
//! Env contract (all read by the closure, so worker processes inherit
//! the same behavior):
//!
//! * `SELFTEST_ITEMS` — comma-separated item names (default
//!   `alpha,beta,gamma,delta,epsilon`);
//! * `SELFTEST_DIR` — checkpoint directory (default the workspace
//!   `results/` like every real harness bin);
//! * `SELFTEST_MARKER_DIR` — where `poison-*` items leave their
//!   been-here marker.
//!
//! Item semantics: `poison-<x>` aborts the whole process the first time
//! any process computes it (the marker file makes the second attempt
//! succeed) — simulating the `kill -9`-class death the process backend
//! exists to isolate; `fail-<x>` returns a typed error every attempt
//! (exercising placeholder rows); `hang-once-<x>` sleeps forever the
//! first time a *worker* computes it (marker-gated, inline fallback
//! unaffected) — the hung-worker case the per-item deadline exists for;
//! `hang-always-<x>` sleeps forever in *every* worker (driving a slot
//! to quarantine deterministically) but computes instantly inline;
//! `gen-<seed>` runs a seeded `fsm_model::generate` machine through a
//! deterministic simulation digest — the synthetic corpus the chaos
//! campaign uses beyond the MCNC nine; everything else yields one
//! stable row. With `SELFTEST_PRINT_HEALTH=1` the bin appends a
//! `health: timeouts=N respawns=N quarantined=N` line after the rows
//! (off by default so byte-identity comparisons stay row-only).

use paper_bench::runner::{run, RunnerOptions};

/// A worker process sleeps here "forever" (10 minutes dwarfs any test
/// deadline); the coordinator's supervision — not this sleep ending —
/// is what finishes the item.
fn hang_forever() {
    std::thread::sleep(std::time::Duration::from_secs(600));
}

/// Deterministic digest row for a generated machine: state/IO counts
/// plus a trace fingerprint, stable across processes and backends.
fn generated_row(item: &str, seed: u64) -> Vec<String> {
    let mut spec = fsm_model::generate::StgSpec::new(item);
    spec.seed = seed;
    let stg = fsm_model::generate::generate(&spec).expect("default-shaped spec generates");
    let mut rng = xrand::SmallRng::seed_from_u64(seed ^ 0xc0ffee);
    let stimulus: Vec<Vec<bool>> = (0..64)
        .map(|_| (0..stg.num_inputs()).map(|_| rng.random_bool(0.5)).collect())
        .collect();
    let trace = fsm_model::simulate::trace(&stg, stimulus);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for outputs in &trace.outputs {
        for &bit in outputs {
            digest ^= u64::from(bit);
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    vec![
        item.to_string(),
        format!(
            "s{}i{}o{}",
            stg.num_states(),
            stg.num_inputs(),
            stg.num_outputs()
        ),
        format!("{digest:016x}"),
    ]
}

fn main() {
    let items: Vec<String> = std::env::var("SELFTEST_ITEMS")
        .unwrap_or_else(|_| "alpha,beta,gamma,delta,epsilon".to_string())
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let mut opts = RunnerOptions::new("fabric_selftest");
    if let Some(dir) = std::env::var_os("SELFTEST_DIR") {
        opts.checkpoint_dir = dir.into();
    }
    let out = run(&opts, &items, 3, |item, attempt| {
        let marker_dir = std::env::var_os("SELFTEST_MARKER_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(std::env::temp_dir);
        let in_worker = paper_bench::fabric::worker_invocation_label().is_some();
        if item.starts_with("poison-") {
            let marker = marker_dir.join(item);
            if !marker.exists() {
                let _ = std::fs::write(&marker, b"poisoned once\n");
                // Not a panic: catch_unwind cannot fence an abort, so
                // this takes down the entire hosting process like a real
                // OOM-kill or kill -9 would.
                std::process::abort();
            }
        }
        // Hang items sleep only inside worker processes: the coordinator's
        // inline fallback must complete instantly, or a "hung" item would
        // hang the test harness itself right after it proved supervision.
        if item.starts_with("hang-once") && in_worker {
            let marker = marker_dir.join(item);
            if !marker.exists() {
                let _ = std::fs::write(&marker, b"hung once\n");
                hang_forever();
            }
        }
        if item.starts_with("hang-always") && in_worker {
            hang_forever();
        }
        if item.starts_with("fail-") {
            return Err(format!("typed failure for {item}"));
        }
        if let Some(seed) = item
            .strip_prefix("gen-")
            .and_then(|s| s.parse::<u64>().ok())
        {
            return Ok(vec![generated_row(item, seed)]);
        }
        Ok(vec![vec![
            item.to_string(),
            format!("row-{item}-{attempt}"),
            "z".to_string(),
        ]])
    });
    for row in &out.rows {
        println!("{}", row.join("|"));
    }
    if !out.unpersisted.is_empty() {
        println!("unpersisted: {}", out.unpersisted.join(","));
    }
    // Off by default: the byte-identity tests compare stdout across
    // backends, and only the supervision tests want the health line.
    if std::env::var("SELFTEST_PRINT_HEALTH").ok().as_deref() == Some("1") {
        println!(
            "health: timeouts={} respawns={} quarantined={}",
            out.health.timeouts, out.health.respawns, out.health.quarantined
        );
    }
}
