//! Figure 1: the two FSM architectures, shown as structural statistics.
//!
//! Fig. 1a is the conventional FF + LUT machine (registers, a
//! combinational cone in LUTs, programmable interconnect); Fig. 1b is the
//! EMB machine (one memory whose latched outputs feed its own address).
//! This binary prints both netlists' structure for one benchmark so the
//! contrast — hundreds of LUTs and routed nets vs a single BRAM with a
//! handful of nets — is visible in numbers.

use emb_fsm::baseline::ff_netlist;
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use fpga_fabric::netlist::Netlist;
use logic_synth::synth::{synthesize, SynthOptions};
use paper_bench::TextTable;

fn describe(n: &Netlist) -> Vec<String> {
    let c = n.cell_counts();
    vec![
        c.luts.to_string(),
        c.ffs.to_string(),
        c.brams.to_string(),
        n.num_nets().to_string(),
        n.inputs().len().to_string(),
        n.outputs().len().to_string(),
    ]
}

fn main() {
    println!("Figure 1: FF/LUT (1a) vs EMB (1b) architecture, structurally\n");
    let mut table = TextTable::new(vec![
        "benchmark",
        "impl",
        "LUTs",
        "FFs",
        "BRAMs",
        "nets",
        "ins",
        "outs",
    ]);
    for name in ["keyb", "planet"] {
        let stg = fsm_model::benchmarks::by_name(name).expect("paper benchmark");
        let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
        let (ff, _) = ff_netlist(&synth, false);
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("mapping");
        let embn = emb.to_netlist();
        let mut row = vec![name.to_string(), "FF/LUT (1a)".to_string()];
        row.extend(describe(&ff));
        table.row(row);
        let mut row = vec![String::new(), "EMB (1b)".to_string()];
        row.extend(describe(&embn));
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("The EMB machine's only feedback nets are its state bits back to");
    println!("its own address lines; the FF machine routes every LUT-to-LUT");
    println!("connection through the programmable interconnect (Sec. 4.1).");
}
