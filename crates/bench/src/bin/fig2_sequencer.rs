//! Figure 2: the 0101 sequence detector mapped into a block RAM — state
//! diagram, memory map, and the Xilinx-style `INIT_xx` initialization
//! strings (the paper's "C program to automatically generate the VHDL
//! initialization string").

use emb_fsm::contents::{init_strings, memory_map_table};
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use fsm_model::benchmarks::sequence_detector_0101;

fn main() {
    let stg = sequence_detector_0101();
    println!("Figure 2: the 0101 sequence detector in an EMB\n");
    println!("State diagram (KISS2):");
    println!("{}", fsm_model::kiss2::write(&stg));

    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("detector maps");
    println!(
        "Mapping: {} state bits, shape {}, {} BRAM(s), address = [input, st0, st1]",
        emb.num_state_bits(),
        emb.shape,
        emb.num_brams()
    );
    println!("Word layout: [ns0, ns1, output]\n");
    println!("Memory map (cf. the paper's Fig. 2 table):");
    println!(
        "{}",
        memory_map_table(&emb.stg, &emb.encoding, &emb.rom, 1, 1)
    );

    // Physical init of the single BRAM.
    let netlist = emb.to_netlist();
    let init = netlist
        .cells()
        .iter()
        .find_map(|c| match c {
            fpga_fabric::netlist::Cell::Bram { init, .. } => Some(init.clone()),
            _ => None,
        })
        .expect("one BRAM");
    println!("First INIT strings (non-zero contents live in INIT_00):");
    for line in init_strings(emb.shape, &init).iter().take(2) {
        println!("  {line}");
    }
}
