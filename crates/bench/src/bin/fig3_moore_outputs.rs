//! Figure 3: a Moore machine's output function implemented in LUTs
//! outside the memory.
//!
//! The paper's example is prep4: "16 states were encoded using 4 output
//! lines of the blockram, which were also connected to the inputs of 8
//! LUTs to generate the FSM's output." This binary maps prep4 both ways
//! and shows the Fig. 3 structure.

use emb_fsm::map::{map_fsm_into_embs, EmbOptions, OutputMode, OutputRealization};
use paper_bench::TextTable;

fn main() {
    let stg = fsm_model::benchmarks::by_name("prep4").expect("prep4");
    println!("Figure 3: Moore output function in LUTs (prep4)\n");

    let mut table = TextTable::new(vec![
        "output mode",
        "states",
        "state bits",
        "data width",
        "BRAMs",
        "aux LUTs",
    ]);
    for (label, mode) in [
        ("in-memory", OutputMode::InMemory),
        ("LUT outputs", OutputMode::MooreLuts),
    ] {
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: mode,
                ..EmbOptions::default()
            },
        )
        .expect("prep4 maps");
        table.row(vec![
            label.to_string(),
            emb.stg.num_states().to_string(),
            emb.num_state_bits().to_string(),
            emb.data_width.to_string(),
            emb.num_brams().to_string(),
            emb.aux_luts().to_string(),
        ]);
        if let OutputRealization::Luts(l) = &emb.outputs {
            println!(
                "LUT output network: {} LUTs, depth {}, {} outputs driven by {} state bits",
                l.num_luts(),
                l.depth(),
                l.outputs.len(),
                emb.num_state_bits(),
            );
        }
    }
    println!();
    print!("{}", table.render());
    println!();
    println!("prep4 is Mealy as regenerated, so the LUT-output mode first applies");
    println!("the Mealy-to-Moore transform (Kohavi), splitting states as needed.");
}
