//! Figure 4: the EMB with a state-controlled input multiplexer after
//! column compaction.
//!
//! For each benchmark that compacts, prints the per-state input support,
//! the compacted width `i` (Fig. 5 line 11), the shape reached, and the
//! mux cost — versus what the direct mapping would have needed.

use emb_fsm::compaction::CompactionPlan;
use emb_fsm::map::{map_fsm_into_embs, AddressPlan, EmbOptions};
use fpga_fabric::device::BramShape;
use fsm_model::encoding::{EncodingStyle, StateEncoding};
use paper_bench::{suite, TextTable};

fn main() {
    println!("Figure 4: column compaction and the input multiplexer\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "I",
        "i (compacted)",
        "s",
        "direct BRAMs",
        "compacted BRAMs",
        "mux LUTs",
    ]);
    for stg in suite() {
        let enc = StateEncoding::assign(&stg, EncodingStyle::Binary);
        let s = enc.num_bits();
        let plan = CompactionPlan::build(&stg);
        // What direct addressing would cost.
        let direct = BramShape::widest_with_addr_bits(
            (stg.num_inputs() + s).min(BramShape::max_addr_bits()),
        );
        let direct_brams = match direct {
            Some(shape) if stg.num_inputs() + s <= BramShape::max_addr_bits() => {
                (s + stg.num_outputs()).div_ceil(shape.data_bits)
            }
            _ => 0, // needs series banks
        };
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("mapping");
        let (compacted, mux_luts) = match (&emb.address, &emb.input_mux) {
            (AddressPlan::Compacted(_), Some(m)) => (true, m.num_luts()),
            _ => (false, 0),
        };
        table.row(vec![
            stg.name().to_string(),
            stg.num_inputs().to_string(),
            plan.width.to_string(),
            s.to_string(),
            if direct_brams == 0 {
                "series".to_string()
            } else {
                direct_brams.to_string()
            },
            if compacted {
                emb.num_brams().to_string()
            } else {
                format!("{} (direct)", emb.num_brams())
            },
            mux_luts.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("Compaction lets wide-input machines reach the 512x36 aspect ratio");
    println!("with a single BRAM instead of joining BRAMs in parallel/series —");
    println!("\"advantageous for power savings, as instantiating more EMBs");
    println!("increases the power consumption\" (Sec. 4.2).");
}
