//! Figure 6: the experimental flow, stage by stage, for one benchmark.
//!
//! Paper flow: STG → SIS (.blif) → blif-to-VHDL → technology mapping →
//! place & route (.ncd) → post-P&R simulation (.vcd) → XPower. This
//! binary runs the corresponding stages of this workspace and prints each
//! intermediate artifact's vital statistics.

use emb_fsm::baseline::ff_netlist;
use emb_fsm::verify::{verify_against_stg, OutputTiming};
use fpga_fabric::device::Device;
use fpga_fabric::pack::pack;
use fpga_fabric::place::{place, PlaceOptions};
use fpga_fabric::route::{route, RouteOptions};
use fpga_fabric::timing::{analyze, DelayModel};
use logic_synth::synth::{synthesize, SynthOptions};
use netsim::engine::Simulator;
use netsim::stimulus;
use powermodel::{estimate, PowerParams};

fn main() {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    println!("Figure 6: the experimental flow (benchmark: keyb)\n");

    println!(
        "[1] STG: {} states, {} inputs, {} outputs, {} transitions",
        stg.num_states(),
        stg.num_inputs(),
        stg.num_outputs(),
        stg.transitions().len()
    );

    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    println!(
        "[2] two-level synthesis (SIS role): {} cubes across {} functions, {} state bits",
        synth.total_cubes,
        stg.num_outputs() + synth.num_state_bits(),
        synth.num_state_bits()
    );
    let blif = logic_synth::blif::write(&synth.to_blif());
    println!(
        "    BLIF netlist: {} lines (latches + .names)",
        blif.lines().count()
    );

    println!(
        "[3] technology mapping (Synplify role): {} LUT4s, depth {}",
        synth.luts.num_luts(),
        synth.luts.depth()
    );

    let (netlist, _) = ff_netlist(&synth, false);
    verify_against_stg(&netlist, &stg, OutputTiming::Combinational, 400, 1)
        .expect("netlist equivalent to STG");
    println!("[4] netlist assembled and verified against the STG oracle");

    let device = Device::xc2v250();
    let packed = pack(&netlist);
    let placement = place(&netlist, &packed, device, PlaceOptions::default()).expect("place");
    let routed = route(&netlist, &packed, &placement, RouteOptions::default()).expect("route");
    println!(
        "[5] place & route (ISE role) on {}: {} CLBs, HPWL {:.0}, wirelength {}",
        device.name,
        packed.clbs.len(),
        placement.hpwl,
        routed.total_wirelength
    );

    let mut sim = Simulator::new(&netlist).expect("simulator");
    let vectors = stimulus::random(stg.num_inputs(), 2000, 7);
    let mut rec = netsim::vcd::VcdRecorder::all_nets(&netlist);
    for v in &vectors {
        sim.clock(v);
        rec.sample(|n| sim.value(n));
    }
    println!(
        "[6] post-P&R simulation (ModelSim role): {} cycles, {} VCD value changes",
        rec.num_cycles(),
        rec.num_changes()
    );

    let timing = analyze(&netlist, &routed, &DelayModel::default());
    let power = estimate(
        &netlist,
        &routed,
        sim.activity(),
        100.0,
        &PowerParams::default(),
    )
    .expect("activity was recorded on this netlist");
    println!("[7] estimation (XPower role): {power}");
    println!(
        "    critical path {:.2} ns (fmax {:.1} MHz)",
        timing.critical_path_ns, timing.fmax_mhz
    );
}
