//! Extension sweep: dynamic power vs clock frequency.
//!
//! Sec. 2: "a design running at a higher clock frequency will have
//! increased power dissipation due to more frequent signal transitions."
//! Dynamic power must be linear in f for both implementations; static
//! power is frequency-independent.

use emb_fsm::flow::{FlowConfig, Stimulus};
use paper_bench::{compare, mw, paper_config, TextTable};

fn main() {
    let stg = fsm_model::benchmarks::by_name("styr").expect("styr");
    let cfg = FlowConfig {
        freqs_mhz: vec![25.0, 50.0, 85.0, 100.0, 150.0, 200.0],
        ..paper_config()
    };
    println!("Sweep: power vs clock frequency (styr)\n");
    let (ff, emb) = compare(&stg, &Stimulus::Random, &cfg);
    let mut table = TextTable::new(vec![
        "f (MHz)",
        "FF dyn",
        "FF total",
        "EMB dyn",
        "EMB total",
        "FF dyn/f",
        "EMB dyn/f",
    ]);
    for p_ff in &ff.power {
        let p_emb = emb
            .power_at(p_ff.freq_mhz)
            .expect("same frequency grid");
        table.row(vec![
            format!("{:.0}", p_ff.freq_mhz),
            mw(p_ff.dynamic_mw()),
            mw(p_ff.total_mw()),
            mw(p_emb.dynamic_mw()),
            mw(p_emb.total_mw()),
            format!("{:.4}", p_ff.dynamic_mw() / p_ff.freq_mhz),
            format!("{:.4}", p_emb.dynamic_mw() / p_emb.freq_mhz),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("The dyn/f columns are constant: dynamic power is linear in the");
    println!("clock frequency for both implementations (paper Sec. 2, Table 2).");
}
