//! Extension sweep: dynamic power vs clock frequency.
//!
//! Sec. 2: "a design running at a higher clock frequency will have
//! increased power dissipation due to more frequent signal transitions."
//! Dynamic power must be linear in f for both implementations; static
//! power is frequency-independent.

use emb_fsm::flow::{FlowConfig, Stimulus};
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, try_compare, TextTable};

fn main() {
    println!("Sweep: power vs clock frequency (styr)\n");
    let mut table = TextTable::new(vec![
        "f (MHz)",
        "FF dyn",
        "FF total",
        "EMB dyn",
        "EMB total",
        "FF dyn/f",
        "EMB dyn/f",
    ]);
    // One item producing all frequency rows: the sweep shares one pair of
    // implementations across the grid.
    let items = vec!["styr".to_string()];
    let out = run(
        &RunnerOptions::new("sweep_freq"),
        &items,
        7,
        |name, attempt| {
            let stg = fsm_model::benchmarks::by_name(name)
                .ok_or_else(|| format!("unknown benchmark {name}"))?;
            let mut cfg = FlowConfig {
                freqs_mhz: vec![25.0, 50.0, 85.0, 100.0, 150.0, 200.0],
                ..paper_config()
            };
            cfg.seed += u64::from(attempt);
            let (ff, emb) =
                try_compare(&stg, &Stimulus::Random, &cfg).map_err(|e| e.to_string())?;
            let mut rows = Vec::new();
            for p_ff in &ff.power {
                let p_emb = emb
                    .power_at(p_ff.freq_mhz)
                    .ok_or_else(|| format!("no EMB power at {} MHz", p_ff.freq_mhz))?;
                rows.push(vec![
                    format!("{:.0}", p_ff.freq_mhz),
                    mw(p_ff.dynamic_mw()),
                    mw(p_ff.total_mw()),
                    mw(p_emb.dynamic_mw()),
                    mw(p_emb.total_mw()),
                    format!("{:.4}", p_ff.dynamic_mw() / p_ff.freq_mhz),
                    format!("{:.4}", p_emb.dynamic_mw() / p_emb.freq_mhz),
                ]);
            }
            Ok(rows)
        },
    );
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("The dyn/f columns are constant: dynamic power is linear in the");
    println!("clock frequency for both implementations (paper Sec. 2, Table 2).");
}
