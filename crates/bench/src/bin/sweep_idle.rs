//! Extension sweep: power vs idle occupancy.
//!
//! Sec. 6: "The amount of power savings achieved with the clock control
//! logic is dependent upon the total time an FSM spends in idle states."
//! This sweep drives one benchmark at idle targets 0 / 25 / 50 / 75 / 90 %
//! through the free-running EMB, the clock-controlled EMB, and the
//! clock-gated FF baseline — showing the EMB savings grow with idle time
//! while FF gating saves much less (its combinational cone keeps
//! toggling).

use emb_fsm::flow::{emb_clock_controlled_flow, emb_flow, ff_clock_gated_flow, ff_flow, Stimulus};
use emb_fsm::map::EmbOptions;
use logic_synth::synth::SynthOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, pct, saving, TextTable};

fn main() {
    println!("Sweep: power vs idle occupancy (keyb, 100 MHz)\n");
    let mut table = TextTable::new(vec![
        "target idle",
        "measured",
        "EMB",
        "EMB+cc",
        "cc saving",
        "FF",
        "FF+gate",
        "gate saving",
    ]);
    let items: Vec<String> = [0.0, 0.25, 0.5, 0.75, 0.9]
        .iter()
        .map(|t| format!("{t}"))
        .collect();
    let out = run(
        &RunnerOptions::new("sweep_idle"),
        &items,
        8,
        |item, attempt| {
            let target: f64 = item
                .parse()
                .map_err(|_| format!("bad idle target {item}"))?;
            let stg = fsm_model::benchmarks::by_name("keyb").ok_or("keyb missing")?;
            let mut cfg = paper_config();
            cfg.seed += u64::from(attempt);
            let stim = Stimulus::IdleBiased(target);
            let emb =
                emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
            let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)
                .map_err(|e| e.to_string())?;
            let ff =
                ff_flow(&stg, SynthOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
            let ffg = ff_clock_gated_flow(&stg, SynthOptions::default(), &stim, &cfg)
                .map_err(|e| e.to_string())?;
            let p = |r: &emb_fsm::flow::FlowReport| {
                r.power_at(100.0)
                    .map_or(f64::NAN, powermodel::PowerReport::total_mw)
            };
            Ok(vec![vec![
                format!("{:.0}%", target * 100.0),
                format!("{:.0}%", cc.idle_fraction * 100.0),
                mw(p(&emb)),
                mw(p(&cc)),
                pct(saving(p(&emb), p(&cc))),
                mw(p(&ff)),
                mw(p(&ffg)),
                pct(saving(p(&ff), p(&ffg))),
            ]])
        },
    );
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
    println!();
    println!("Expected shape: the EMB clock-control saving grows with idle time;");
    println!("FF clock gating saves far less because \"the combinational portion");
    println!("of the FSM will continue to consume power during the idle states");
    println!("even after clock gating\" (Sec. 6).");
}
