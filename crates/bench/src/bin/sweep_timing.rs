//! Extension sweep: critical path vs FSM complexity.
//!
//! Sec. 4.2: the EMB machine's critical path runs "from the output of the
//! EMB to its address inputs. Thus no matter how many state transitions
//! an FSM may have the timing of it does not change" — while the FF
//! machine's LUT depth (and so its critical path) grows with complexity.

use emb_fsm::flow::Stimulus;
use emb_fsm::map::EmbOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{paper_config, suite_names, try_compare, TextTable};

fn main() {
    println!("Sweep: critical path vs FSM complexity\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "transitions",
        "FF path (ns)",
        "FF fmax",
        "EMB path (ns)",
        "EMB fmax",
        "EMB+cc path",
        "EMB+cc fmax",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    let out = run(
        &RunnerOptions::new("sweep_timing"),
        &items,
        8,
        |name, attempt| {
            let stg = fsm_model::benchmarks::by_name(name)
                .ok_or_else(|| format!("unknown benchmark {name}"))?;
            let mut cfg = paper_config();
            cfg.seed += u64::from(attempt);
            let (ff, emb) =
                try_compare(&stg, &Stimulus::Random, &cfg).map_err(|e| e.to_string())?;
            // The gated variant is ECO-placed on the plain design, so its
            // extra path delay is attributable to the enable cone alone.
            let cc = emb_fsm::flow::emb_clock_controlled_flow(
                &stg,
                &EmbOptions::default(),
                &Stimulus::Random,
                &cfg,
            )
            .map_err(|e| e.to_string())?;
            Ok(vec![vec![
                name.to_string(),
                stg.transitions().len().to_string(),
                format!("{:.2}", ff.timing.critical_path_ns),
                format!("{:.1}", ff.timing.fmax_mhz),
                format!("{:.2}", emb.timing.critical_path_ns),
                format!("{:.1}", emb.timing.fmax_mhz),
                format!("{:.2}", cc.timing.critical_path_ns),
                format!("{:.1}", cc.timing.fmax_mhz),
            ]])
        },
    );
    // Footer statistics from the successful rows (columns 2 and 4).
    let mut ff_paths: Vec<f64> = Vec::new();
    let mut emb_paths: Vec<f64> = Vec::new();
    for row in &out.rows {
        if let (Ok(ff), Ok(emb)) = (row[2].parse::<f64>(), row[4].parse::<f64>()) {
            ff_paths.push(ff);
            emb_paths.push(emb);
        }
    }
    for row in out.rows {
        table.row(row);
    }
    print!("{}", table.render());
    let spread = |v: &[f64]| {
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(0.0f64, f64::max);
        max / min
    };
    println!();
    println!(
        "Path spread (max/min): FF {:.2}x, EMB {:.2}x — the EMB path is",
        spread(&ff_paths),
        spread(&emb_paths)
    );
    println!("essentially fixed (\"fixed timing regardless of the FSM's");
    println!("complexity\", Sec. 1) while the FF path varies widely.");
    println!("EMB+cc is ECO-placed on the plain EMB design (base pinned),");
    println!("so its path minus the EMB path is the enable-cone cost.");
}
