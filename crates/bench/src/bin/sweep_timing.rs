//! Extension sweep: critical path vs FSM complexity.
//!
//! Sec. 4.2: the EMB machine's critical path runs "from the output of the
//! EMB to its address inputs. Thus no matter how many state transitions
//! an FSM may have the timing of it does not change" — while the FF
//! machine's LUT depth (and so its critical path) grows with complexity.

use emb_fsm::flow::Stimulus;
use paper_bench::{compare, paper_config, suite, TextTable};

fn main() {
    let cfg = paper_config();
    println!("Sweep: critical path vs FSM complexity\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "transitions",
        "FF path (ns)",
        "FF fmax",
        "EMB path (ns)",
        "EMB fmax",
    ]);
    let mut ff_paths: Vec<f64> = Vec::new();
    let mut emb_paths: Vec<f64> = Vec::new();
    for stg in suite() {
        let (ff, emb) = compare(&stg, &Stimulus::Random, &cfg);
        ff_paths.push(ff.timing.critical_path_ns);
        emb_paths.push(emb.timing.critical_path_ns);
        table.row(vec![
            stg.name().to_string(),
            stg.transitions().len().to_string(),
            format!("{:.2}", ff.timing.critical_path_ns),
            format!("{:.1}", ff.timing.fmax_mhz),
            format!("{:.2}", emb.timing.critical_path_ns),
            format!("{:.1}", emb.timing.fmax_mhz),
        ]);
    }
    print!("{}", table.render());
    let spread = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        max / min
    };
    println!();
    println!(
        "Path spread (max/min): FF {:.2}x, EMB {:.2}x — the EMB path is",
        spread(&ff_paths),
        spread(&emb_paths)
    );
    println!("essentially fixed (\"fixed timing regardless of the FSM's");
    println!("complexity\", Sec. 1) while the FF path varies widely.");
}
