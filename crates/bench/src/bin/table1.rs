//! Table 1: FPGA device utilization for the benchmark circuits under both
//! implementations (FF/LUT-based vs EMB-based).
//!
//! Paper columns: per benchmark, the FF implementation's LUT / FF / slice
//! counts and the EMB implementation's LUT / slice / block-RAM counts
//! ("In the EMB-based implementation only those benchmark circuits which
//! need an input multiplexer require LUTs in addition to the blockrams").

use emb_fsm::flow::Stimulus;
use paper_bench::{compare, paper_config, suite, TextTable};

fn main() {
    let cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "FF: LUT",
        "FF: FF",
        "FF: slice",
        "EMB: LUT",
        "EMB: slice",
        "EMB: blockRAM",
        "device",
    ]);
    for stg in suite() {
        let (ff, emb) = compare(&stg, &Stimulus::Random, &cfg);
        table.row(vec![
            stg.name().to_string(),
            ff.area.luts.to_string(),
            ff.area.ffs.to_string(),
            ff.area.slices.to_string(),
            emb.area.luts.to_string(),
            emb.area.slices.to_string(),
            emb.area.brams.to_string(),
            ff.device.name.to_string(),
        ]);
    }
    println!("Table 1: device utilization, FF/LUT vs EMB implementation");
    println!("(target {}; larger rows auto-upsized)", cfg.device.name);
    println!();
    print!("{}", table.render());
}
