//! Table 1: FPGA device utilization for the benchmark circuits under both
//! implementations (FF/LUT-based vs EMB-based).
//!
//! Paper columns: per benchmark, the FF implementation's LUT / FF / slice
//! counts and the EMB implementation's LUT / slice / block-RAM counts
//! ("In the EMB-based implementation only those benchmark circuits which
//! need an input multiplexer require LUTs in addition to the blockrams").

use emb_fsm::flow::Stimulus;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{paper_config, suite_names, try_compare, TextTable};

fn main() {
    let cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "FF: LUT",
        "FF: FF",
        "FF: slice",
        "EMB: LUT",
        "EMB: slice",
        "EMB: blockRAM",
        "device",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    let out = run(&RunnerOptions::new("table1"), &items, 8, |name, attempt| {
        let stg = fsm_model::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name}"))?;
        let mut cfg = paper_config();
        cfg.seed += u64::from(attempt);
        let (ff, emb) = try_compare(&stg, &Stimulus::Random, &cfg).map_err(|e| e.to_string())?;
        Ok(vec![vec![
            name.to_string(),
            ff.area.luts.to_string(),
            ff.area.ffs.to_string(),
            ff.area.slices.to_string(),
            emb.area.luts.to_string(),
            emb.area.slices.to_string(),
            emb.area.brams.to_string(),
            ff.device.name.to_string(),
        ]])
    });
    for row in out.rows {
        table.row(row);
    }
    println!("Table 1: device utilization, FF/LUT vs EMB implementation");
    println!("(target {}; larger rows auto-upsized)", cfg.device.name);
    println!();
    print!("{}", table.render());
}
