//! Table 2: power consumed (mW) by each benchmark at 50 / 85 / 100 MHz
//! under both implementations, and the EMB saving at 100 MHz.
//!
//! The paper reports 4–26 % savings on real MCNC netlists; our synthetic
//! signature-matched machines have less compressible logic, so the FF
//! baselines are relatively larger and the savings higher — the *shape*
//! (EMB wins, saving grows with FSM complexity, donfile-class small
//! machines save least) is the reproduced claim. See EXPERIMENTS.md.

use emb_fsm::flow::Stimulus;
use paper_bench::{compare, mw, paper_config, pct, saving, suite, TextTable};

fn main() {
    let cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "FF 50MHz",
        "FF 85MHz",
        "FF 100MHz",
        "EMB 50MHz",
        "EMB 85MHz",
        "EMB 100MHz",
        "saving@100",
    ]);
    for stg in suite() {
        let (ff, emb) = compare(&stg, &Stimulus::Random, &cfg);
        let p = |r: &emb_fsm::flow::FlowReport, f: f64| {
            r.power_at(f).expect("configured frequency").total_mw()
        };
        table.row(vec![
            stg.name().to_string(),
            mw(p(&ff, 50.0)),
            mw(p(&ff, 85.0)),
            mw(p(&ff, 100.0)),
            mw(p(&emb, 50.0)),
            mw(p(&emb, 85.0)),
            mw(p(&emb, 100.0)),
            pct(saving(p(&ff, 100.0), p(&emb, 100.0))),
        ]);
    }
    println!("Table 2: total power (mW), FF/LUT vs EMB implementation");
    println!("(random stimulus, {} cycles)", cfg.cycles);
    println!();
    print!("{}", table.render());
}
