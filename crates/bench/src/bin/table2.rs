//! Table 2: power consumed (mW) by each benchmark at 50 / 85 / 100 MHz
//! under both implementations, and the EMB saving at 100 MHz.
//!
//! The paper reports 4–26 % savings on real MCNC netlists; our synthetic
//! signature-matched machines have less compressible logic, so the FF
//! baselines are relatively larger and the savings higher — the *shape*
//! (EMB wins, saving grows with FSM complexity, donfile-class small
//! machines save least) is the reproduced claim. See EXPERIMENTS.md.
//!
//! The `EMB fmax` / `Δfmax` columns report the EMB design's post-route
//! fmax under the default timing-driven placement, and its delta versus
//! the same flow with the timing cost disabled (`timing_weight = 0`) —
//! power scales with the clock the design can actually sustain, so the
//! placer's fmax gain compounds the table's power saving.

use emb_fsm::flow::Stimulus;
use emb_fsm::map::EmbOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, pct, saving, suite_names, try_compare, TextTable};

fn main() {
    let base_cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "FF 50MHz",
        "FF 85MHz",
        "FF 100MHz",
        "EMB 50MHz",
        "EMB 85MHz",
        "EMB 100MHz",
        "EMB fmax",
        "Δfmax",
        "saving@100",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    let out = run(&RunnerOptions::new("table2"), &items, 10, |name, attempt| {
        let stg = fsm_model::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name}"))?;
        let mut cfg = paper_config();
        cfg.seed += u64::from(attempt);
        let (ff, emb) = try_compare(&stg, &Stimulus::Random, &cfg).map_err(|e| e.to_string())?;
        // The same EMB flow placed wirelength-only: the fmax baseline the
        // timing-driven placement is compared against.
        let mut cfg_wl = cfg.clone();
        cfg_wl.place.timing_weight = 0.0;
        let emb_wl = emb_fsm::flow::emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg_wl)
            .map_err(|e| e.to_string())?;
        let p = |r: &emb_fsm::flow::FlowReport, f: f64| {
            r.power_at(f)
                .map_or(f64::NAN, powermodel::PowerReport::total_mw)
        };
        let df = 100.0 * (emb.timing.fmax_mhz - emb_wl.timing.fmax_mhz) / emb_wl.timing.fmax_mhz;
        Ok(vec![vec![
            name.to_string(),
            mw(p(&ff, 50.0)),
            mw(p(&ff, 85.0)),
            mw(p(&ff, 100.0)),
            mw(p(&emb, 50.0)),
            mw(p(&emb, 85.0)),
            mw(p(&emb, 100.0)),
            format!("{:.1}", emb.timing.fmax_mhz),
            format!("{df:+.1}%"),
            pct(saving(p(&ff, 100.0), p(&emb, 100.0))),
        ]])
    });
    for row in out.rows {
        table.row(row);
    }
    println!("Table 2: total power (mW), FF/LUT vs EMB implementation");
    println!("(random stimulus, {} cycles)", base_cfg.cycles);
    println!();
    print!("{}", table.render());
}
