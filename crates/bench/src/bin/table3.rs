//! Table 3: power of the EMB implementation *with clock-control logic*
//! at 50 / 85 / 100 MHz, and its saving versus the FF implementation at
//! 100 MHz.
//!
//! The paper's scenario: "an average case (with 50% idle states)". Both
//! implementations are driven by the same idle-biased stimulus; the
//! measured idle occupancy is printed per row.
//!
//! The clock-controlled flow places its base as an ECO on top of the
//! plain EMB design (pinned coordinates, delta-only anneal); the `ECO`
//! column shows `pinned+delta` entity counts (or `full` when the flow
//! fell back). When the `TABLE3_COORDS` environment variable names a
//! file, each successful row also appends
//! `name <plain-coord-digest> <gated-base-coord-digest>` to it — the two
//! digests must be byte-identical, which `scripts/verify.sh` gates on.
//!
//! The `fmax` column reports the gated design's post-route fmax under
//! the default timing-driven placement. The `Δf vs wl` column and the
//! geomean summary line report the *placer's own STA estimate* on the
//! plain EMB design, timing-driven versus the identical flow placed
//! wirelength-only (`timing_weight = 0`) — the quantity the guarded
//! two-arm anneal makes never-worse by construction. When `TABLE3_FMAX`
//! names a file, each successful row appends
//! `name <est-fmax-timing> <est-fmax-wl>` at full precision —
//! `scripts/verify.sh` gates on both the determinism and the per-row
//! no-worse-than-wirelength-only property of that file.

use emb_fsm::flow::{emb_clock_controlled_flow, emb_flow, ff_flow, Stimulus};
use emb_fsm::map::EmbOptions;
use logic_synth::synth::SynthOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, pct, saving, suite_names, TextTable};
use std::io::Write as _;

fn main() {
    let cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "cc 50MHz",
        "cc 85MHz",
        "cc 100MHz",
        "idle",
        "saving vs FF@100",
        "ECO",
        "fmax",
        "Δf vs wl",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    // Four trailing hidden cells per row carry the plain design's
    // coordinate digest, the gated design's pinned-base digest, and the
    // full-precision timing/wirelength-only fmax pair for the
    // TABLE3_COORDS / TABLE3_FMAX side files; they are stripped before
    // printing.
    let out = run(&RunnerOptions::new("table3"), &items, 13, |name, attempt| {
        let stg = fsm_model::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name}"))?;
        let mut cfg = paper_config();
        cfg.seed += u64::from(attempt);
        let stim = Stimulus::IdleBiased(0.5);
        let ff = ff_flow(&stg, SynthOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
        let emb =
            emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)
            .map_err(|e| e.to_string())?;
        // The plain EMB flow placed wirelength-only: the estimate
        // baseline for the Δf column and the verify.sh no-worse gate.
        let mut cfg_wl = cfg.clone();
        cfg_wl.place.timing_weight = 0.0;
        let emb_wl =
            emb_flow(&stg, &EmbOptions::default(), &stim, &cfg_wl).map_err(|e| e.to_string())?;
        let p = |r: &emb_fsm::flow::FlowReport, f: f64| {
            r.power_at(f)
                .map_or(f64::NAN, powermodel::PowerReport::total_mw)
        };
        let (eco_cell, base_digest) = cc.eco.as_ref().map_or_else(
            || ("full".to_string(), String::new()),
            |e| {
                (
                    format!("{}+{}", e.pinned_entities, e.delta_entities),
                    e.base_coord_digest.clone(),
                )
            },
        );
        let df = 100.0 * (emb.place_fmax_est_mhz - emb_wl.place_fmax_est_mhz)
            / emb_wl.place_fmax_est_mhz;
        Ok(vec![vec![
            name.to_string(),
            mw(p(&cc, 50.0)),
            mw(p(&cc, 85.0)),
            mw(p(&cc, 100.0)),
            format!("{:.0}%", cc.idle_fraction * 100.0),
            pct(saving(p(&ff, 100.0), p(&cc, 100.0))),
            eco_cell,
            format!("{:.1}", cc.timing.fmax_mhz),
            format!("{df:+.1}%"),
            emb.coord_digest.clone(),
            base_digest,
            format!("{:.9}", emb.place_fmax_est_mhz),
            format!("{:.9}", emb_wl.place_fmax_est_mhz),
        ]])
    });
    let coords_path = std::env::var("TABLE3_COORDS").ok();
    let fmax_path = std::env::var("TABLE3_FMAX").ok();
    let mut coords = String::new();
    let mut fmax_lines = String::new();
    let mut fmax_ratios: Vec<f64> = Vec::new();
    for mut row in out.rows {
        if row.len() >= 13 {
            let fmax_wl = row.pop().unwrap_or_default();
            let fmax_timing = row.pop().unwrap_or_default();
            let base_digest = row.pop().unwrap_or_default();
            let plain_digest = row.pop().unwrap_or_default();
            if !plain_digest.is_empty() && !base_digest.is_empty() {
                coords.push_str(&format!("{} {plain_digest} {base_digest}\n", row[0]));
            }
            if let (Ok(t), Ok(w)) = (fmax_timing.parse::<f64>(), fmax_wl.parse::<f64>()) {
                if t.is_finite() && w.is_finite() && w > 0.0 {
                    fmax_lines.push_str(&format!("{} {fmax_timing} {fmax_wl}\n", row[0]));
                    fmax_ratios.push(t / w);
                }
            }
        }
        row.resize(9, String::new());
        table.row(row);
    }
    for (path, content) in [(coords_path, &coords), (fmax_path, &fmax_lines)] {
        if let Some(path) = path {
            match std::fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
                Ok(()) => {}
                Err(e) => eprintln!("warning: could not write {path}: {e}"),
            }
        }
    }
    println!("Table 3: EMB power with clock-control logic (mW)");
    println!(
        "(idle-biased stimulus targeting 50% idle, {} cycles)",
        cfg.cycles
    );
    println!();
    print!("{}", table.render());
    if !fmax_ratios.is_empty() {
        let geomean = (fmax_ratios.iter().map(|r| r.ln()).sum::<f64>()
            / fmax_ratios.len() as f64)
            .exp();
        println!();
        println!(
            "Geomean placer fmax estimate, timing-driven vs wirelength-only placement: \
             {:+.2}% ({} rows)",
            100.0 * (geomean - 1.0),
            fmax_ratios.len()
        );
    }
}
