//! Table 3: power of the EMB implementation *with clock-control logic*
//! at 50 / 85 / 100 MHz, and its saving versus the FF implementation at
//! 100 MHz.
//!
//! The paper's scenario: "an average case (with 50% idle states)". Both
//! implementations are driven by the same idle-biased stimulus; the
//! measured idle occupancy is printed per row.
//!
//! The clock-controlled flow places its base as an ECO on top of the
//! plain EMB design (pinned coordinates, delta-only anneal); the `ECO`
//! column shows `pinned+delta` entity counts (or `full` when the flow
//! fell back). When the `TABLE3_COORDS` environment variable names a
//! file, each successful row also appends
//! `name <plain-coord-digest> <gated-base-coord-digest>` to it — the two
//! digests must be byte-identical, which `scripts/verify.sh` gates on.

use emb_fsm::flow::{emb_clock_controlled_flow, emb_flow, ff_flow, Stimulus};
use emb_fsm::map::EmbOptions;
use logic_synth::synth::SynthOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, pct, saving, suite_names, TextTable};
use std::io::Write as _;

fn main() {
    let cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "cc 50MHz",
        "cc 85MHz",
        "cc 100MHz",
        "idle",
        "saving vs FF@100",
        "ECO",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    // Two trailing hidden cells per row carry the plain design's
    // coordinate digest and the gated design's pinned-base digest for the
    // TABLE3_COORDS side file; they are stripped before printing.
    let out = run(&RunnerOptions::new("table3"), &items, 9, |name, attempt| {
        let stg = fsm_model::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name}"))?;
        let mut cfg = paper_config();
        cfg.seed += u64::from(attempt);
        let stim = Stimulus::IdleBiased(0.5);
        let ff = ff_flow(&stg, SynthOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
        let emb =
            emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)
            .map_err(|e| e.to_string())?;
        let p = |r: &emb_fsm::flow::FlowReport, f: f64| {
            r.power_at(f)
                .map_or(f64::NAN, powermodel::PowerReport::total_mw)
        };
        let (eco_cell, base_digest) = cc.eco.as_ref().map_or_else(
            || ("full".to_string(), String::new()),
            |e| {
                (
                    format!("{}+{}", e.pinned_entities, e.delta_entities),
                    e.base_coord_digest.clone(),
                )
            },
        );
        Ok(vec![vec![
            name.to_string(),
            mw(p(&cc, 50.0)),
            mw(p(&cc, 85.0)),
            mw(p(&cc, 100.0)),
            format!("{:.0}%", cc.idle_fraction * 100.0),
            pct(saving(p(&ff, 100.0), p(&cc, 100.0))),
            eco_cell,
            emb.coord_digest.clone(),
            base_digest,
        ]])
    });
    let coords_path = std::env::var("TABLE3_COORDS").ok();
    let mut coords = String::new();
    for mut row in out.rows {
        if row.len() >= 9 {
            let base_digest = row.pop().unwrap_or_default();
            let plain_digest = row.pop().unwrap_or_default();
            if !plain_digest.is_empty() && !base_digest.is_empty() {
                coords.push_str(&format!("{} {plain_digest} {base_digest}\n", row[0]));
            }
        }
        row.resize(7, String::new());
        table.row(row);
    }
    if let Some(path) = coords_path {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(coords.as_bytes())) {
            Ok(()) => {}
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    println!("Table 3: EMB power with clock-control logic (mW)");
    println!(
        "(idle-biased stimulus targeting 50% idle, {} cycles)",
        cfg.cycles
    );
    println!();
    print!("{}", table.render());
}
