//! Table 3: power of the EMB implementation *with clock-control logic*
//! at 50 / 85 / 100 MHz, and its saving versus the FF implementation at
//! 100 MHz.
//!
//! The paper's scenario: "an average case (with 50% idle states)". Both
//! implementations are driven by the same idle-biased stimulus; the
//! measured idle occupancy is printed per row.

use emb_fsm::flow::{emb_clock_controlled_flow, ff_flow, Stimulus};
use emb_fsm::map::EmbOptions;
use logic_synth::synth::SynthOptions;
use paper_bench::{mw, paper_config, pct, saving, suite, TextTable};

fn main() {
    let cfg = paper_config();
    let stim = Stimulus::IdleBiased(0.5);
    let mut table = TextTable::new(vec![
        "Benchmark",
        "cc 50MHz",
        "cc 85MHz",
        "cc 100MHz",
        "idle",
        "saving vs FF@100",
    ]);
    for stg in suite() {
        let ff = ff_flow(&stg, SynthOptions::default(), &stim, &cfg)
            .unwrap_or_else(|e| panic!("{}: FF flow failed: {e}", stg.name()));
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)
            .unwrap_or_else(|e| panic!("{}: EMB+cc flow failed: {e}", stg.name()));
        let p = |r: &emb_fsm::flow::FlowReport, f: f64| {
            r.power_at(f).expect("configured frequency").total_mw()
        };
        table.row(vec![
            stg.name().to_string(),
            mw(p(&cc, 50.0)),
            mw(p(&cc, 85.0)),
            mw(p(&cc, 100.0)),
            format!("{:.0}%", cc.idle_fraction * 100.0),
            pct(saving(p(&ff, 100.0), p(&cc, 100.0))),
        ]);
    }
    println!("Table 3: EMB power with clock-control logic (mW)");
    println!("(idle-biased stimulus targeting 50% idle, {} cycles)", cfg.cycles);
    println!();
    print!("{}", table.render());
}
