//! Table 3: power of the EMB implementation *with clock-control logic*
//! at 50 / 85 / 100 MHz, and its saving versus the FF implementation at
//! 100 MHz.
//!
//! The paper's scenario: "an average case (with 50% idle states)". Both
//! implementations are driven by the same idle-biased stimulus; the
//! measured idle occupancy is printed per row.

use emb_fsm::flow::{emb_clock_controlled_flow, ff_flow, Stimulus};
use emb_fsm::map::EmbOptions;
use logic_synth::synth::SynthOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{mw, paper_config, pct, saving, suite_names, TextTable};

fn main() {
    let cfg = paper_config();
    let mut table = TextTable::new(vec![
        "Benchmark",
        "cc 50MHz",
        "cc 85MHz",
        "cc 100MHz",
        "idle",
        "saving vs FF@100",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    let out = run(&RunnerOptions::new("table3"), &items, 6, |name, attempt| {
        let stg = fsm_model::benchmarks::by_name(name)
            .ok_or_else(|| format!("unknown benchmark {name}"))?;
        let mut cfg = paper_config();
        cfg.seed += u64::from(attempt);
        let stim = Stimulus::IdleBiased(0.5);
        let ff = ff_flow(&stg, SynthOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)
            .map_err(|e| e.to_string())?;
        let p = |r: &emb_fsm::flow::FlowReport, f: f64| {
            r.power_at(f)
                .map_or(f64::NAN, powermodel::PowerReport::total_mw)
        };
        Ok(vec![vec![
            name.to_string(),
            mw(p(&cc, 50.0)),
            mw(p(&cc, 85.0)),
            mw(p(&cc, 100.0)),
            format!("{:.0}%", cc.idle_fraction * 100.0),
            pct(saving(p(&ff, 100.0), p(&cc, 100.0))),
        ]])
    });
    for row in out.rows {
        table.row(row);
    }
    println!("Table 3: EMB power with clock-control logic (mW)");
    println!(
        "(idle-biased stimulus targeting 50% idle, {} cycles)",
        cfg.cycles
    );
    println!();
    print!("{}", table.render());
}
