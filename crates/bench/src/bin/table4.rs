//! Table 4: area overhead of the clock-control logic (LUTs and slices)
//! for each benchmark.
//!
//! "We have written a program in C which identifies all such idle states
//! from the state transition graph and generates … the clock control
//! logic" — here [`emb_fsm::clock_control::synthesize_enable`], whose
//! mapped LUT count is the overhead.
//!
//! The `ΔCLBs` column is the same overhead measured at the packing level:
//! the number of CLBs the partitioned packer appends for the enable cone
//! on top of the plain design's (reused, byte-identical) CLB list — the
//! entities the ECO placement mode actually has to place.

use emb_fsm::clock_control::attach_emb_clock_control;
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use fpga_fabric::pack::{pack, pack_partitioned};
use logic_synth::techmap::MapOptions;
use paper_bench::runner::{run, RunnerOptions};
use paper_bench::{suite_names, TextTable};

fn main() {
    let mut table = TextTable::new(vec![
        "Benchmark",
        "LUTs",
        "Slices",
        "idle cubes",
        "cone",
        "dCLBs",
    ]);
    let items: Vec<String> = suite_names().iter().map(ToString::to_string).collect();
    let out = run(
        &RunnerOptions::new("table4"),
        &items,
        6,
        |name, _attempt| {
            let stg = fsm_model::benchmarks::by_name(name)
                .ok_or_else(|| format!("unknown benchmark {name}"))?;
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
                .map_err(|e| format!("mapping failed: {e}"))?;
            let plain = emb.to_netlist();
            let (gated, cc) = attach_emb_clock_control(&emb, MapOptions::default())
                .map_err(|e| format!("clock control failed: {e}"))?;
            let plain_packed = pack(&plain);
            let delta_clbs = pack_partitioned(&gated, &plain_packed, plain.cells().len())
                .map(|p| p.clbs.len() - plain_packed.clbs.len())
                .map_err(|e| format!("partitioned pack failed: {e}"))?;
            Ok(vec![vec![
                name.to_string(),
                cc.num_luts().to_string(),
                cc.num_slices().to_string(),
                cc.idle_cubes.to_string(),
                if cc.uses_outputs {
                    "state+inputs+outputs".to_string()
                } else {
                    "state+inputs".to_string()
                },
                delta_clbs.to_string(),
            ]])
        },
    );
    for row in out.rows {
        table.row(row);
    }
    println!("Table 4: area overhead of the clock-control logic");
    println!("(dCLBs: CLBs appended by the partitioned packer for the cone)");
    println!();
    print!("{}", table.render());
}
