//! Table 4: area overhead of the clock-control logic (LUTs and slices)
//! for each benchmark.
//!
//! "We have written a program in C which identifies all such idle states
//! from the state transition graph and generates … the clock control
//! logic" — here [`emb_fsm::clock_control::synthesize_enable`], whose
//! mapped LUT count is the overhead.

use emb_fsm::clock_control::attach_emb_clock_control;
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use logic_synth::techmap::MapOptions;
use paper_bench::{suite, TextTable};

fn main() {
    let mut table = TextTable::new(vec!["Benchmark", "LUTs", "Slices", "idle cubes", "cone"]);
    for stg in suite() {
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{}: mapping failed: {e}", stg.name()));
        let (_, cc) = attach_emb_clock_control(&emb, MapOptions::default())
            .unwrap_or_else(|e| panic!("{}: clock control failed: {e}", stg.name()));
        table.row(vec![
            stg.name().to_string(),
            cc.num_luts().to_string(),
            cc.num_slices().to_string(),
            cc.idle_cubes.to_string(),
            if cc.uses_outputs {
                "state+inputs+outputs".to_string()
            } else {
                "state+inputs".to_string()
            },
        ]);
    }
    println!("Table 4: area overhead of the clock-control logic");
    println!();
    print!("{}", table.render());
}
