//! Direct-vs-overlay backend comparison: compile turnaround, power and
//! area for the nine paper benchmarks plus one representative machine
//! per corpus tier.
//!
//! The overlay backend's claim is O(memory-init) compile turnaround:
//! once a class base (BRAM + state register + steering, sized by
//! address width × data width × bank count) has been placed and routed
//! once, every further FSM of that class compiles by re-encoding its
//! STG into memory contents and reusing the stored physical artifact.
//! This harness measures that claim end to end in four phases sharing
//! one flow-cache directory:
//!
//! * **A. cold direct** — per item, the cache is emptied and the direct
//!   EMB flow timed: the conventional per-FSM place & route turnaround.
//! * **B. base prebuild** — cache emptied once, then every item runs
//!   the overlay flow cold: frontends verify against the STG oracle
//!   (a flow error here is a verification failure and fails the run)
//!   and each distinct class base is placed & routed exactly once.
//! * **C. warm-base compile** — all records except the `ovlbase_*`
//!   base artifacts are dropped, so each item re-compiles the way a
//!   *new* FSM of an existing class would: frontend cold, base warm.
//!   This is the per-FSM overlay turnaround the speedup compares.
//! * **D. base reuse** — a second overlay pass with nothing cleared;
//!   any base-cache miss here means the base artifact key is unstable
//!   and is reported (and gated in `scripts/verify.sh`) as
//!   `second_run_base_misses`.
//!
//! Turnaround is [`emb_fsm::StageTimings::compile_ms`] (synth + place +
//! route; verification excluded for both backends). The headline
//! `fit_geomean_speedup` is the geometric mean, over overlay-fit items,
//! of cold-direct over warm-base-overlay compile time. Items past the
//! overlay capacity ladder appear with their typed rejection reason and
//! direct-only columns. Results go to stdout and to
//! `results/bench_overlay.json` (honoring `BENCH_RESULTS_DIR`).

use emb_fsm::flow::{FlowConfig, FlowReport, MapBackend, Stimulus};
use emb_fsm::map::EmbOptions;
use fsm_model::stg::Stg;
use paper_bench::{paper_config, TextTable};
use std::path::PathBuf;

/// The corpus seed the representative tier machines are drawn from —
/// the same default as `corpus_stress` (`CORPUS_SEED` there).
const CORPUS_SEED: u64 = 2004;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
}

/// Empties both cache layers.
fn clear_cache(dir: &PathBuf) {
    emb_fsm::cache::reset_memory();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let _ = std::fs::remove_file(e.path());
        }
    }
}

/// Drops every cache record except the stored overlay base artifacts
/// (`ovlbase_*.txt`), leaving exactly the state a fresh process sees
/// when the class bases exist but this FSM has never been compiled.
fn keep_only_bases(dir: &PathBuf) {
    emb_fsm::cache::reset_memory();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let keep = e
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("ovlbase_"));
            if !keep {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// One comparison item: where it came from and its machine.
struct Item {
    source: &'static str,
    name: String,
    stg: Stg,
}

fn items() -> Vec<Item> {
    let mut out = Vec::new();
    for stg in paper_bench::suite() {
        out.push(Item {
            source: "paper",
            name: stg.name().to_string(),
            stg,
        });
    }
    for tier in fsm_model::corpus::tier_names() {
        let spec = fsm_model::corpus::spec(tier, 0, CORPUS_SEED).expect("known tier");
        let stg = fsm_model::generate::generate(&spec).expect("corpus spec generates");
        out.push(Item {
            source: "corpus",
            name: spec.name.clone(),
            stg,
        });
    }
    out
}

/// Total power at 50 MHz, `NaN` when that frequency was not simulated.
fn mw50(r: &FlowReport) -> f64 {
    r.power_at(50.0)
        .map_or(f64::NAN, powermodel::PowerReport::total_mw)
}

/// Per-item measurements accumulated across the phases.
struct Row {
    source: &'static str,
    name: String,
    fit: bool,
    reject: String,
    class: String,
    banks: usize,
    direct_ms: f64,
    overlay_ms: f64,
    direct_mw: f64,
    overlay_mw: f64,
    direct_slices: usize,
    direct_brams: usize,
    overlay_slices: usize,
    overlay_brams: usize,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scratch = workspace_root()
        .join("target")
        .join(format!("table_overlay_scratch_{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let cache_dir = scratch.join("cache");
    // Must precede the first cache access: the config is read once.
    std::env::set_var("FLOW_CACHE_DIR", &cache_dir);
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    let mut cfg: FlowConfig = paper_config();
    cfg.backend = MapBackend::Direct;
    let emb_opts = EmbOptions::default();
    let stimulus = Stimulus::Random;
    let items = items();

    // Phase A: cold direct turnaround — cache emptied before every item.
    let mut rows: Vec<Row> = Vec::new();
    for it in &items {
        clear_cache(&cache_dir);
        let rep = emb_fsm::flow::emb_flow(&it.stg, &emb_opts, &stimulus, &cfg)
            .unwrap_or_else(|e| panic!("{}: direct flow failed: {e}", it.name));
        rows.push(Row {
            source: it.source,
            name: it.name.clone(),
            fit: false,
            reject: String::new(),
            class: "-".to_string(),
            banks: 0,
            direct_ms: rep.stage_ms.compile_ms(),
            overlay_ms: f64::NAN,
            direct_mw: mw50(&rep),
            overlay_mw: f64::NAN,
            direct_slices: rep.area.slices,
            direct_brams: rep.area.brams,
            overlay_slices: 0,
            overlay_brams: 0,
        });
    }

    // Phase B: prebuild every distinct class base (and prove every
    // overlay frontend equivalent to its STG — a failure here is a
    // verification failure, not a capacity rejection).
    clear_cache(&cache_dir);
    let mut verify_failures = 0usize;
    let mut base_builds = 0usize;
    for (it, row) in items.iter().zip(rows.iter_mut()) {
        match emb_fsm::flow::emb_overlay_flow(&it.stg, &stimulus, &cfg) {
            Ok(rep) => {
                let ovl = rep.overlay.as_ref().expect("overlay report present");
                if !ovl.base_cache_hit {
                    base_builds += 1;
                }
                row.fit = true;
                row.class = ovl.class.clone();
                row.banks = ovl.banks;
                row.overlay_mw = mw50(&rep);
                row.overlay_slices = rep.area.slices;
                row.overlay_brams = rep.area.brams;
            }
            Err(e) if e.is_capacity() => {
                row.reject = e.to_string();
            }
            Err(e) => {
                eprintln!("table_overlay: {} failed overlay verification: {e}", it.name);
                verify_failures += 1;
            }
        }
    }

    // Phase C: warm-base compile — frontends cold, bases warm.
    keep_only_bases(&cache_dir);
    let mut phase_c_base_misses = 0usize;
    for (it, row) in items.iter().zip(rows.iter_mut()).filter(|(_, r)| r.fit) {
        let rep = emb_fsm::flow::emb_overlay_flow(&it.stg, &stimulus, &cfg)
            .unwrap_or_else(|e| panic!("{}: warm-base overlay flow failed: {e}", it.name));
        let ovl = rep.overlay.as_ref().expect("overlay report present");
        if !ovl.base_cache_hit {
            phase_c_base_misses += 1;
        }
        row.overlay_ms = rep.stage_ms.compile_ms();
    }

    // Phase D: second pass, nothing cleared — base artifacts must hit.
    let mut second_run_base_misses = 0usize;
    for (it, _row) in items.iter().zip(rows.iter()).filter(|(_, r)| r.fit) {
        let rep = emb_fsm::flow::emb_overlay_flow(&it.stg, &stimulus, &cfg)
            .unwrap_or_else(|e| panic!("{}: second overlay flow failed: {e}", it.name));
        if !rep.overlay.as_ref().expect("overlay report present").base_cache_hit {
            second_run_base_misses += 1;
        }
    }

    let _ = std::fs::remove_dir_all(&scratch);

    let mut classes: Vec<&str> = rows.iter().filter(|r| r.fit).map(|r| r.class.as_str()).collect();
    classes.sort_unstable();
    classes.dedup();

    let floor = |ms: f64| ms.max(0.01);
    let fit_ratios: Vec<f64> = rows
        .iter()
        .filter(|r| r.fit)
        .map(|r| floor(r.direct_ms) / floor(r.overlay_ms))
        .collect();
    let geomean = if fit_ratios.is_empty() {
        f64::NAN
    } else {
        (fit_ratios.iter().map(|v| v.ln()).sum::<f64>() / fit_ratios.len() as f64).exp()
    };

    let mut table = TextTable::new(vec![
        "Benchmark", "src", "class", "direct ms", "overlay ms", "speedup",
        "direct mW", "ovl mW", "slices d/o", "BRAMs d/o",
    ]);
    for r in &rows {
        if r.fit {
            table.row(vec![
                r.name.clone(),
                r.source.to_string(),
                r.class.clone(),
                format!("{:.1}", r.direct_ms),
                format!("{:.2}", r.overlay_ms),
                format!("{:.0}x", floor(r.direct_ms) / floor(r.overlay_ms)),
                format!("{:.2}", r.direct_mw),
                format!("{:.2}", r.overlay_mw),
                format!("{}/{}", r.direct_slices, r.overlay_slices),
                format!("{}/{}", r.direct_brams, r.overlay_brams),
            ]);
        } else {
            table.row(vec![
                r.name.clone(),
                r.source.to_string(),
                "over-capacity".to_string(),
                format!("{:.1}", r.direct_ms),
                "-".to_string(),
                "-".to_string(),
                format!("{:.2}", r.direct_mw),
                "-".to_string(),
                format!("{}/-", r.direct_slices),
                format!("{}/-", r.direct_brams),
            ]);
        }
    }
    println!("Overlay backend: compile turnaround and cost vs the direct EMB flow");
    println!("(direct ms: cold full flow; overlay ms: frontend cold, class base warm)");
    println!();
    print!("{}", table.render());
    println!();
    println!(
        "fit {}/{} item(s), {} distinct base class(es), {} base build(s)",
        fit_ratios.len(),
        rows.len(),
        classes.len(),
        base_builds
    );
    println!("fit geomean speedup: {geomean:.1}x");
    println!(
        "verify failures: {verify_failures}, phase-C base misses: {phase_c_base_misses}, \
         second-run base misses: {second_run_base_misses}"
    );
    assert_eq!(verify_failures, 0, "overlay verification failed");

    let dir = std::env::var("BENCH_RESULTS_DIR").map_or_else(
        |_| workspace_root().join("results"),
        |d| {
            let d = PathBuf::from(d);
            if d.is_absolute() {
                d
            } else {
                workspace_root().join(d)
            }
        },
    );
    std::fs::create_dir_all(&dir).expect("create results/");
    let path = dir.join("bench_overlay.json");
    let mut item_json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        if r.fit {
            item_json.push_str(&format!(
                "    {{\"name\": \"{}\", \"source\": \"{}\", \"fit\": true, \
                 \"class\": \"{}\", \"banks\": {}, \
                 \"direct_compile_ms\": {:.2}, \"overlay_compile_ms\": {:.3}, \
                 \"speedup\": {:.1}, \
                 \"direct_mw_50\": {:.3}, \"overlay_mw_50\": {:.3}, \
                 \"direct_slices\": {}, \"overlay_slices\": {}, \
                 \"direct_brams\": {}, \"overlay_brams\": {}}}{sep}\n",
                r.name, r.source, r.class, r.banks,
                r.direct_ms, r.overlay_ms,
                floor(r.direct_ms) / floor(r.overlay_ms),
                r.direct_mw, r.overlay_mw,
                r.direct_slices, r.overlay_slices,
                r.direct_brams, r.overlay_brams,
            ));
        } else {
            item_json.push_str(&format!(
                "    {{\"name\": \"{}\", \"source\": \"{}\", \"fit\": false, \
                 \"reject\": \"{}\", \"direct_compile_ms\": {:.2}, \
                 \"direct_mw_50\": {:.3}, \"direct_slices\": {}, \
                 \"direct_brams\": {}}}{sep}\n",
                r.name, r.source,
                r.reject.replace('"', "'"),
                r.direct_ms, r.direct_mw, r.direct_slices, r.direct_brams,
            ));
        }
    }
    let json = format!(
        "{{\n  \"suite\": \"overlay\",\n  \"items_total\": {},\n  \"items_fit\": {},\n  \
         \"distinct_base_classes\": {},\n  \"base_builds\": {base_builds},\n  \
         \"fit_geomean_speedup\": {geomean:.2},\n  \
         \"verify_failures\": {verify_failures},\n  \
         \"phase_c_base_misses\": {phase_c_base_misses},\n  \
         \"second_run_base_misses\": {second_run_base_misses},\n  \
         \"corpus_seed\": {CORPUS_SEED},\n  \"rows\": [\n{item_json}  ]\n}}\n",
        rows.len(),
        fit_ratios.len(),
        classes.len(),
    );
    std::fs::write(&path, json).expect("write bench JSON");
    eprintln!("wrote {}", path.display());
}
