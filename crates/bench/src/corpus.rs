//! Flow profiles and outcome rows for the synthetic corpus.
//!
//! `fsm_model::corpus` owns the *machine-space* side of the corpus (tier
//! parameter grids, the self-describing item-name codec); this module
//! owns the *flow* side: which device, mapping options, budgets and
//! stimulus each tier is pushed through, chosen so every tier reliably
//! exercises its target rung of the degradation ladder. [`run_item`] is
//! the single work function every stress pass (sequential / threads /
//! process workers / daemon) shares — it reconstructs the machine from
//! the item name alone, so it runs identically in any process.
//!
//! Outcome rows carry exactly one measurement column — the per-stage
//! wall-clock breakdown, always last — and are otherwise deterministic:
//! stripped of that final column they must be byte-identical across
//! backends and cache warmth, which is what lets `corpus_stress`
//! histogram them and `scripts/verify.sh` diff two runs. Cache counters
//! stay out of rows entirely.

use crate::paper_config;
use emb_fsm::flow::{
    emb_clock_controlled_flow, emb_flow_with_fallback, mapping_for, FlowConfig, FlowReport,
    ImplKind, MapBackend, Stimulus,
};
use emb_fsm::map::EmbOptions;
use fpga_fabric::device::Device;
use fsm_model::corpus::decode_spec;
use fsm_model::generate::{generate, StgSpec};
use logic_synth::synth::SynthOptions;

/// Which flow a tier drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowChoice {
    /// `emb_flow_with_fallback`: the full mapping ladder with the FF
    /// baseline as the last rung.
    Fallback,
    /// `emb_clock_controlled_flow`: the Sec. 6 clock-controlled flow with
    /// ECO placement (the only flow that can record `EcoFallback`).
    ClockControlled,
}

/// Everything needed to push one tier's machines through the flow.
#[derive(Debug, Clone)]
pub struct TierProfile {
    /// Flow configuration (device, budgets, verify horizon).
    pub cfg: FlowConfig,
    /// Mapping options (rung gates).
    pub emb_opts: EmbOptions,
    /// FF-baseline synthesis options (budget gates).
    pub synth_opts: SynthOptions,
    /// Stimulus driving the power simulation.
    pub stimulus: Stimulus,
    /// Which flow to run.
    pub flow: FlowChoice,
}

/// The flow profile for a tier. Unknown tiers get the `nominal` profile
/// (they only arise from hand-built item names). `spec` lets the
/// squeeze tiers size their budgets to the machine — a fixed budget
/// cannot sit between "ECO route exhausts it" and "full route fits it"
/// for every machine in a tier at once.
#[must_use]
pub fn profile(tier: &str, spec: &StgSpec) -> TierProfile {
    // A deliberately cheap base: corpus throughput runs push thousands of
    // machines, so simulate/verify lengths are a fraction of the paper
    // config's. All values are fixed here — never from the environment —
    // so outcome rows are reproducible anywhere.
    let mut cfg = paper_config();
    cfg.cycles = 240;
    cfg.verify_cycles = 120;
    cfg.freqs_mhz = vec![100.0];
    cfg.place.effort = 2.0;
    let mut p = TierProfile {
        cfg,
        emb_opts: EmbOptions::default(),
        synth_opts: SynthOptions::default(),
        stimulus: Stimulus::IdleBiased(0.5),
        flow: FlowChoice::Fallback,
    };
    match tier {
        "series-cascade" => {
            // Forbid the compaction escape so the wide address must be
            // split into series banks.
            p.emb_opts.allow_compaction = false;
        }
        "always-on" => {
            // Clock control on machines that are never idle: the gating
            // logic is pure overhead, which is exactly the scenario the
            // ROADMAP wants covered. Random stimulus ≈ 0 idle occupancy.
            p.stimulus = Stimulus::Random;
            p.flow = FlowChoice::ClockControlled;
        }
        "wide-input" => {
            // 13–16 input machines with the exhaustive horizon pulled
            // down: rewrite verification must take the sampled rung.
            p.cfg.exhaustive_verify_max_inputs = 10;
        }
        "tight-device" => {
            // Start on the smallest family member with the compaction
            // escape closed: the full-width ROM cannot fit XC2V40's
            // BRAM budget, so the ladder has to upsize. Falls back to
            // the nominal device if the family ever loses the member
            // (the coverage test would flag the lost upsizes loudly).
            if let Some(d) = Device::by_name("XC2V40") {
                p.cfg.device = d;
            }
            p.emb_opts.allow_compaction = false;
        }
        "ff-fallback" => {
            // No compaction, no series: >14 address bits cannot fit, so
            // the ladder lands on the FF baseline — whose synthesis gets
            // a tiny espresso budget, covering SynthBudgetExhausted too.
            p.emb_opts.allow_compaction = false;
            p.emb_opts.allow_series = false;
            p.synth_opts.max_minimize_cubes = 8;
        }
        "budget-squeeze" => {
            // A move budget far below what these machines need: the
            // anneal stops mid-flight and keeps the best-seen placement.
            p.cfg.place.max_moves = 200;
        }
        "eco-squeeze" => {
            // Route-expansion budget sized (empirically, pinned by the
            // coverage test) so the pinned-base ECO placement of the
            // clock-control cone exhausts it on some machines while the
            // fully annealed placement still routes: a deterministic
            // EcoFallback. The budget scales with the machine — route
            // cost does too, so no constant separates the two placements
            // across the whole tier.
            p.flow = FlowChoice::ClockControlled;
            p.cfg.route.max_expansions = 50 * spec.states as u64;
        }
        _ => {}
    }
    p
}

/// One corpus outcome: the deterministic, backend-independent record of
/// pushing one item through its tier's flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The self-describing item name.
    pub item: String,
    /// Tier the item belongs to (`"-"` for undecodable names).
    pub tier: String,
    /// `ok`, `gen-error:<kind>`, `flow-error:<stage>`, or `bad-item`.
    pub status: String,
    /// Final implementation style (`-` when no report was produced).
    pub impl_kind: String,
    /// Device the flow finished on (`-` when no report was produced).
    pub device: String,
    /// Mapping rung: `direct` / `compacted` / `series` / `overlay` /
    /// `ff` / `-`.
    pub rung: String,
    /// `+`-joined downgrade kinds in record order, `none` when empty.
    pub downgrades: String,
    /// Per-stage wall-clock `synth/verify/place/route` in ms, each
    /// rounded to one decimal at this formatting boundary (`-` when no
    /// report was produced). Always the LAST column: it is measurement,
    /// not outcome, so identity checks strip it (see
    /// [`Outcome::deterministic_columns`]).
    pub stage_ms: String,
}

impl Outcome {
    /// Number of row columns (the runner's placeholder width).
    pub const COLUMNS: usize = 8;

    /// Columns that must be byte-identical across backends and cache
    /// warmth: everything except the trailing wall-clock column.
    pub const DETERMINISTIC_COLUMNS: usize = Self::COLUMNS - 1;

    /// The outcome as a checkpoint/report row.
    #[must_use]
    pub fn row(self) -> Vec<String> {
        vec![
            self.item,
            self.tier,
            self.status,
            self.impl_kind,
            self.device,
            self.rung,
            self.downgrades,
            self.stage_ms,
        ]
    }

    /// The deterministic prefix of a row: the wall-clock column dropped.
    #[must_use]
    pub fn deterministic_columns(row: &[String]) -> &[String] {
        &row[..Self::DETERMINISTIC_COLUMNS.min(row.len())]
    }

    fn skeleton(item: &str, tier: &str, status: String) -> Outcome {
        Outcome {
            item: item.to_string(),
            tier: tier.to_string(),
            status,
            impl_kind: "-".to_string(),
            device: "-".to_string(),
            rung: "-".to_string(),
            downgrades: "-".to_string(),
            stage_ms: "-".to_string(),
        }
    }
}

/// Renders a report's stage timings as the row's `synth/verify/place/
/// route` column (one decimal each — the rounding policy lives at this
/// formatting boundary, the report keeps full precision).
fn stage_column(report: &FlowReport) -> String {
    let s = report.stage_ms;
    format!(
        "{:.1}/{:.1}/{:.1}/{:.1}",
        s.synth_ms, s.verify_ms, s.place_ms, s.route_ms
    )
}

/// Pushes one corpus item through its tier's flow. Every failure mode is
/// folded into the outcome row — this function never returns `Err` to
/// the runner, so "zero coordinator failures" means exactly that.
#[must_use]
pub fn run_item(item: &str) -> Outcome {
    run_item_with_backend(item, None)
}

/// [`run_item`] with the mapping backend forced. `None` keeps the tier
/// profile's backend (the ambient [`paper_config`] resolution);
/// `Some(MapBackend::Auto)` is what the overlay stress pass uses — every
/// item either compiles onto its overlay class or records the
/// `overlay-capacity` downgrade on the direct path. Clock-controlled
/// tiers ignore the override (that flow is direct-only: its enable cone
/// is netlist-specific, so it cannot share a class base).
#[must_use]
pub fn run_item_with_backend(item: &str, backend: Option<MapBackend>) -> Outcome {
    let Some((tier, spec)) = decode_spec(item) else {
        return Outcome::skeleton(item, "-", "bad-item".to_string());
    };
    let stg = match generate(&spec) {
        Ok(stg) => stg,
        Err(e) => return Outcome::skeleton(item, &tier, format!("gen-error:{e}")),
    };
    let mut p = profile(&tier, &spec);
    if let Some(b) = backend {
        p.cfg.backend = b;
    }
    let report = match p.flow {
        FlowChoice::Fallback => {
            emb_flow_with_fallback(&stg, &p.emb_opts, p.synth_opts, &p.stimulus, &p.cfg)
        }
        FlowChoice::ClockControlled => {
            emb_clock_controlled_flow(&stg, &p.emb_opts, &p.stimulus, &p.cfg)
        }
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => return Outcome::skeleton(item, &tier, format!("flow-error:{}", e.stage)),
    };
    let rung = match report.kind {
        ImplKind::Ff | ImplKind::FfClockGated => "ff".to_string(),
        ImplKind::EmbOverlay => "overlay".to_string(),
        ImplKind::Emb | ImplKind::EmbClockControlled => mapping_for(&stg, &p.emb_opts)
            .map_or_else(|_| "ff".to_string(), |emb| emb.rung().label().to_string()),
    };
    let downgrades = if report.downgrades.is_empty() {
        "none".to_string()
    } else {
        report
            .downgrades
            .iter()
            .map(emb_fsm::flow::Downgrade::kind)
            .collect::<Vec<_>>()
            .join("+")
    };
    Outcome {
        item: item.to_string(),
        tier,
        status: "ok".to_string(),
        impl_kind: report.kind.to_string(),
        device: report.device.name.to_string(),
        rung,
        stage_ms: stage_column(&report),
        downgrades,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::corpus::{spec, TIERS};

    fn scratch_cache(tag: &str) {
        let dir = std::env::temp_dir().join(format!("corpus_profile_test_{tag}"));
        let _ = std::fs::create_dir_all(&dir);
        std::env::set_var("FLOW_CACHE_DIR", &dir);
    }

    #[test]
    fn profiles_cover_every_tier() {
        for t in &TIERS {
            let s = spec(t.name, 0, 1).expect("known tier");
            let p = profile(t.name, &s);
            assert!(p.cfg.cycles > 0, "{}", t.name);
        }
        // Unknown tiers take the nominal shape rather than panicking.
        let s = spec("nominal", 0, 1).expect("known tier");
        let p = profile("nonesuch", &s);
        assert_eq!(p.flow, FlowChoice::Fallback);
    }

    #[test]
    fn bad_items_and_gen_errors_become_rows() {
        let o = run_item("not-a-corpus-item");
        assert_eq!(o.status, "bad-item");
        assert_eq!(o.tier, "-");
        // A decodable name with a degenerate spec: states 0.
        let o = run_item("cx.nominal.s0.i2.o1.t8.un.b300.m0.qn.d0.k0.x0000000000000001");
        assert_eq!(o.tier, "nominal");
        assert!(o.status.starts_with("gen-error:"), "{}", o.status);
    }

    #[test]
    fn nominal_item_runs_clean_through_the_flow() {
        scratch_cache("nominal");
        let s = spec("nominal", 0, 7).expect("known tier");
        let o = run_item(&s.name);
        assert_eq!(o.status, "ok", "{o:?}");
        assert_eq!(o.tier, "nominal");
        assert_ne!(o.rung, "-");
        // And the outcome is deterministic across repeat runs (second run
        // is warm-cache: rows must not see the difference).
        let again = run_item(&s.name);
        assert_eq!(o, again);
    }
}
