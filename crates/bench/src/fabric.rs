//! Multi-process flow fabric: worker processes and the mapping daemon.
//!
//! Two layers sit on top of [`crate::runner`]'s `run()` entry point:
//!
//! **Process backend** (`RUNNER_BACKEND=process`). The coordinator — the
//! ordinary harness binary — spawns `--worker <label>` re-invocations of
//! *itself* (`std::env::current_exe()`), one per configured worker. A
//! worker re-executes `main` until it reaches the `run()` call whose
//! label matches its `--worker` argument, then serves items from stdin
//! instead of computing the item list: the coordinator writes one
//! JSON-encoded item name per line, the worker answers each with a
//! sentinel-prefixed checkpoint line on stdout, and EOF on stdin is the
//! shutdown signal. The closure `f` exists in the worker because the
//! worker *is* the same binary — no serialization of work, only of item
//! names and row results.
//!
//! Contract with the other backends:
//!
//! * **byte identity** — rows come back through the same
//!   `ItemOutcome`/checkpoint-line codec, are reassembled in input order
//!   by the coordinator, and every worker computes attempt 0 with the
//!   canonical seed, so the emitted table is identical whatever the
//!   worker count (the serial-vs-parallel gate in `scripts/verify.sh`
//!   extends verbatim to this backend);
//! * **checkpointing** — only the coordinator appends to the checkpoint
//!   file (through the same serialized, fsync'd sink as the thread
//!   backend), so resume semantics and line sets are unchanged and
//!   worker processes never contend on the file;
//! * **crash isolation** — a worker that dies (abort, OOM-kill,
//!   `kill -9`) costs exactly its in-flight item: the coordinator
//!   respawns a worker and resubmits, and after
//!   [`PROCESS_ATTEMPTS_PER_ITEM`] consecutive process deaths on the
//!   same item falls back to computing it inline under `catch_unwind`
//!   (so even an unspawnable environment still completes the run);
//! * **shared store** — workers inherit `FLOW_CACHE_DIR`, so all
//!   processes share the content-addressed on-disk artifact store; the
//!   concurrent-process hardening in `emb_fsm::cache` (re-stat before
//!   evict, ENOENT-safe refresh, atomic publishes) is what makes that
//!   safe.
//!
//! **Daemon mode** ([`serve`], the `fabric_daemon` bin). A long-running
//! service that accepts mapping requests over a Unix socket: one JSON
//! request line per connection, one JSON response line back. Admission
//! control bounds concurrently *running* mapping requests
//! ([`DaemonOptions::max_inflight`]); a request over the bound gets a
//! typed `{"ok":false,"kind":"overloaded"}` reject immediately
//! (backpressure the client can see) instead of queueing without bound.
//! Repeated requests amortize warm flow-cache hits — the response
//! carries the per-request cache delta and a `warm` flag so callers (and
//! the verify.sh smoke gate) can observe it. Control commands (`ping`,
//! `stats`, `shutdown`) bypass admission so the daemon stays steerable
//! under load.

use crate::runner::{
    checkpoint_line, json_string, parse_checkpoint_line, run_one, CheckpointSink, ItemOutcome,
    JsonCursor, RunnerOptions,
};
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Protocol sentinel prefixing every line a worker writes for the
/// coordinator. Anything else on the worker's stdout (a stray `println!`
/// from an unrelated part of the harness binary) is ignored, so the
/// protocol survives bins that print between `run()` calls.
const SENTINEL: &str = "RUNNER-WORKER";

/// Distinct worker *processes* tried per item before the coordinator
/// computes it inline. Process attempts are orthogonal to
/// [`RunnerOptions::max_attempts`]: each submission runs the full
/// bounded-retry loop inside whichever process executes it.
const PROCESS_ATTEMPTS_PER_ITEM: u32 = 2;

// --- worker side ------------------------------------------------------

/// The label this process was spawned to serve, when it is a `--worker`
/// re-invocation of a harness binary; `None` in ordinary processes.
#[must_use]
pub fn worker_invocation_label() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--worker" {
            return args.next();
        }
    }
    None
}

/// Serves items from stdin until EOF, then exits the process (a worker
/// must never fall through to the harness binary's table-printing code —
/// its stdout is the protocol channel).
///
/// Wire format: the coordinator sends one JSON string (the item name)
/// per line; the worker answers `RUNNER-WORKER RESULT <checkpoint-line>`
/// and flushes. Item panics are fenced inside [`run_one`] exactly as in
/// the other backends; only an abort-class death (the thing this backend
/// exists to isolate) ends the process early.
pub(crate) fn worker_loop<F>(opts: &RunnerOptions, f: &F) -> !
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String> + Sync,
{
    let stdout = std::io::stdout();
    {
        let mut out = stdout.lock();
        let ok = writeln!(out, "{SENTINEL} READY {}", json_string(&opts.label))
            .and_then(|()| out.flush());
        if ok.is_err() {
            std::process::exit(0); // coordinator already gone
        }
    }
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => std::process::exit(0), // EOF: clean shutdown
            Ok(_) => {}
        }
        let Some(item) = JsonCursor::new(line.trim()).string() else {
            // Protocol violation: refuse to guess what the coordinator
            // meant; exiting surfaces as a dead worker on its side.
            std::process::exit(2);
        };
        let outcome = run_one(&item, opts.max_attempts, f);
        let mut out = stdout.lock();
        let ok = writeln!(out, "{SENTINEL} RESULT {}", checkpoint_line(&item, &outcome))
            .and_then(|()| out.flush());
        if ok.is_err() {
            std::process::exit(0);
        }
    }
}

// --- coordinator side -------------------------------------------------

/// One spawned worker process and its protocol pipes.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Worker {
    /// Spawns a `--worker <label>` re-invocation of the current binary
    /// and waits for its READY handshake.
    fn spawn(label: &str) -> std::io::Result<Worker> {
        let exe = std::env::current_exe()?;
        let mut child = Command::new(exe)
            .arg("--worker")
            .arg(label)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit()) // retry/diagnostic lines stay visible
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        let (Some(stdin), Some(stdout)) = (stdin, stdout) else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other("worker pipes unavailable"));
        };
        let mut worker = Worker {
            child,
            stdin,
            stdout: BufReader::new(stdout),
        };
        let ready = format!("{SENTINEL} READY {}", json_string(label));
        match worker.read_protocol_line(&ready, "") {
            Ok(_) => Ok(worker),
            Err(e) => {
                worker.dispose();
                Err(e)
            }
        }
    }

    /// Reads stdout lines until one equals `exact` or starts with
    /// `prefix` (when non-empty), ignoring non-protocol chatter.
    fn read_protocol_line(&mut self, exact: &str, prefix: &str) -> std::io::Result<String> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.stdout.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "worker exited",
                ));
            }
            let t = line.trim_end();
            if t == exact {
                return Ok(t.to_string());
            }
            if !prefix.is_empty() {
                if let Some(rest) = t.strip_prefix(prefix) {
                    return Ok(rest.to_string());
                }
            }
        }
    }

    /// Submits one item and blocks for its outcome. Any I/O failure —
    /// including the worker dying mid-item — surfaces as `Err`, and the
    /// caller discards this worker.
    fn submit(&mut self, item: &str) -> std::io::Result<ItemOutcome> {
        writeln!(self.stdin, "{}", json_string(item))?;
        self.stdin.flush()?;
        let result_prefix = format!("{SENTINEL} RESULT ");
        loop {
            let rest = self.read_protocol_line("", &result_prefix)?;
            let Some((got_item, outcome)) = parse_checkpoint_line(&rest) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unparseable worker result",
                ));
            };
            if got_item == item {
                return Ok(outcome);
            }
            // A result for some other item (e.g. a stale line after a
            // protocol hiccup): keep reading for ours.
        }
    }

    /// Closes stdin (the worker's EOF shutdown signal) and reaps.
    fn dispose(self) {
        drop(self.stdin);
        let mut child = self.child;
        let _ = child.wait();
    }
}

/// Runs the pending items on `workers` spawned worker processes, writing
/// results through the coordinator's checkpoint sink. Returns outcomes
/// aligned with `pending`. See the module docs for the contract.
pub(crate) fn run_pending_in_workers<F>(
    opts: &RunnerOptions,
    sink: &CheckpointSink<'_>,
    pending: &[(usize, &String)],
    workers: usize,
    f: &F,
) -> Vec<Option<ItemOutcome>>
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String> + Sync,
{
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ItemOutcome>>> =
        (0..pending.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut worker: Option<Worker> = None;
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, item)) = pending.get(k) else {
                        break;
                    };
                    let mut outcome: Option<ItemOutcome> = None;
                    for _ in 0..PROCESS_ATTEMPTS_PER_ITEM {
                        if worker.is_none() {
                            worker = match Worker::spawn(&opts.label) {
                                Ok(w) => Some(w),
                                Err(e) => {
                                    eprintln!(
                                        "[runner] {}: cannot spawn worker process ({e}); computing inline",
                                        opts.label
                                    );
                                    break;
                                }
                            };
                        }
                        let Some(w) = worker.as_mut() else { break };
                        match w.submit(item) {
                            Ok(o) => {
                                outcome = Some(o);
                                break;
                            }
                            Err(e) => {
                                eprintln!(
                                    "[runner] {}: worker died on '{item}' ({e}); respawning",
                                    opts.label
                                );
                                if let Some(dead) = worker.take() {
                                    dead.dispose();
                                }
                            }
                        }
                    }
                    // Last resort: the item crashed every worker we gave
                    // it, or workers cannot spawn at all. Inline under
                    // catch_unwind keeps the run complete (a true abort
                    // here would kill the coordinator — the trade the
                    // caller accepted by exhausting process isolation).
                    let o = outcome
                        .unwrap_or_else(|| run_one(item, opts.max_attempts, f));
                    sink.append(item, &o);
                    *lock_unpoisoned(&slots[k]) = Some(o);
                }
                if let Some(w) = worker.take() {
                    w.dispose();
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .collect()
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// --- daemon mode ------------------------------------------------------

/// Configuration for the mapping daemon.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Unix socket path to listen on (created fresh; a stale file is
    /// removed first).
    pub socket: PathBuf,
    /// Admission bound: mapping requests allowed in flight at once.
    /// Requests beyond it receive a typed `overloaded` reject.
    pub max_inflight: usize,
}

impl DaemonOptions {
    /// Daemon listening on `socket` with a default in-flight bound of 4.
    #[must_use]
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        DaemonOptions {
            socket: socket.into(),
            max_inflight: 4,
        }
    }
}

/// Counters the daemon exposes through the `stats` command.
#[derive(Debug, Default)]
struct DaemonCounters {
    served: AtomicU64,
    rejected: AtomicU64,
    inflight: AtomicUsize,
}

/// A parsed request line.
enum Request {
    Map { bench: String },
    Ping,
    Stats,
    Shutdown,
    Malformed(String),
}

/// Parses one request line: `{"bench":"keyb"}` or `{"cmd":"ping"}` /
/// `{"cmd":"stats"}` / `{"cmd":"shutdown"}`.
fn parse_request(line: &str) -> Request {
    let mut p = JsonCursor::new(line.trim());
    let bad = |why: &str| Request::Malformed(why.to_string());
    if p.expect('{').is_none() {
        return bad("request is not a JSON object");
    }
    let mut cmd = None;
    let mut bench = None;
    loop {
        let Some(key) = p.string() else {
            return bad("expected a string key");
        };
        if p.expect(':').is_none() {
            return bad("expected ':'");
        }
        let Some(value) = p.string() else {
            return bad("expected a string value");
        };
        match key.as_str() {
            "cmd" => cmd = Some(value),
            "bench" => bench = Some(value),
            _ => return bad("unknown request field"),
        }
        match p.next_non_ws() {
            Some(',') => continue,
            Some('}') => break,
            _ => return bad("expected ',' or '}'"),
        }
    }
    match (cmd.as_deref(), bench) {
        (None, Some(bench)) => Request::Map { bench },
        (Some("ping"), None) => Request::Ping,
        (Some("stats"), None) => Request::Stats,
        (Some("shutdown"), None) => Request::Shutdown,
        _ => bad("request needs either \"bench\" or a known \"cmd\""),
    }
}

/// A typed reject/error response line.
fn error_response(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"kind\":{},\"error\":{}}}",
        json_string(kind),
        json_string(message)
    )
}

/// Runs the FF-vs-EMB mapping flow for one benchmark and renders the
/// response line, including the request's own flow-cache delta (thread
/// locals: each connection is handled on a fresh thread, so the delta is
/// exactly this request's traffic).
fn handle_map(bench: &str) -> String {
    let Some(stg) = fsm_model::benchmarks::by_name(bench) else {
        return error_response(
            "unknown-bench",
            &format!("no benchmark named '{bench}' (see fsm_model::benchmarks)"),
        );
    };
    let started = Instant::now();
    let before = emb_fsm::cache::stats_snapshot();
    let cfg = crate::paper_config();
    match crate::try_compare(&stg, &emb_fsm::flow::Stimulus::Random, &cfg) {
        Err(e) => error_response("flow", &e.to_string()),
        Ok((ff, emb)) => {
            let delta = emb_fsm::cache::stats_snapshot().since(before);
            let warm = delta.misses == 0 && delta.hits > 0;
            let (ff_mw, emb_mw) = match (ff.power.first(), emb.power.first()) {
                (Some(a), Some(b)) => (a.total_mw(), b.total_mw()),
                _ => (0.0, 0.0),
            };
            format!(
                "{{\"ok\":true,\"bench\":{},\"device\":{},\
                 \"ff\":{{\"luts\":{},\"ffs\":{},\"slices\":{},\"mw\":{ff_mw:.3}}},\
                 \"emb\":{{\"luts\":{},\"slices\":{},\"brams\":{},\"mw\":{emb_mw:.3}}},\
                 \"saving_pct\":{:.1},\
                 \"cache\":{{\"hits\":{},\"misses\":{}}},\"warm\":{warm},\
                 \"ms\":{}}}",
                json_string(&ff.name),
                json_string(ff.device.name),
                ff.area.luts,
                ff.area.ffs,
                ff.area.slices,
                emb.area.luts,
                emb.area.slices,
                emb.area.brams,
                if ff_mw > 0.0 {
                    100.0 * (ff_mw - emb_mw) / ff_mw
                } else {
                    0.0
                },
                delta.hits,
                delta.misses,
                started.elapsed().as_millis()
            )
        }
    }
}

/// Handles one connection: read a request line, write a response line.
/// Returns `true` when the request asked the daemon to shut down.
fn handle_connection(stream: UnixStream, opts: &DaemonOptions, counters: &DaemonCounters) -> bool {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    });
    let mut writer = stream;
    let mut line = String::new();
    if matches!(reader.read_line(&mut line), Ok(0) | Err(_)) {
        return false;
    }
    let respond = |writer: &mut UnixStream, body: &str| {
        let _ = writeln!(writer, "{body}");
        let _ = writer.flush();
    };
    match parse_request(&line) {
        Request::Malformed(why) => {
            respond(&mut writer, &error_response("bad-request", &why));
            false
        }
        Request::Ping => {
            respond(&mut writer, "{\"ok\":true,\"pong\":true}");
            false
        }
        Request::Stats => {
            respond(
                &mut writer,
                &format!(
                    "{{\"ok\":true,\"served\":{},\"rejected\":{},\"inflight\":{},\"max_inflight\":{}}}",
                    counters.served.load(Ordering::Relaxed),
                    counters.rejected.load(Ordering::Relaxed),
                    counters.inflight.load(Ordering::Relaxed),
                    opts.max_inflight
                ),
            );
            false
        }
        Request::Shutdown => {
            respond(&mut writer, "{\"ok\":true,\"shutdown\":true}");
            true
        }
        Request::Map { bench } => {
            // Admission control: claim a slot or reject — never block.
            let admitted = counters
                .inflight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < opts.max_inflight).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                counters.rejected.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    &error_response(
                        "overloaded",
                        &format!(
                            "daemon at capacity ({} mapping request(s) in flight); retry later",
                            opts.max_inflight
                        ),
                    ),
                );
                return false;
            }
            let response = handle_map(&bench);
            counters.inflight.fetch_sub(1, Ordering::SeqCst);
            counters.served.fetch_add(1, Ordering::Relaxed);
            respond(&mut writer, &response);
            false
        }
    }
}

/// Runs the mapping daemon until a `shutdown` request arrives.
///
/// One request line per connection, one response line back, connection
/// closed — the simplest protocol that lets `nc`-grade clients talk to
/// it. Each connection is handled on its own scoped thread; admission
/// control bounds the *expensive* (mapping) work, not the cheap control
/// commands.
///
/// # Errors
///
/// Returns the underlying I/O error when the socket cannot be bound.
pub fn serve(opts: &DaemonOptions) -> std::io::Result<()> {
    // A stale socket file from a previous (killed) daemon blocks bind.
    let _ = std::fs::remove_file(&opts.socket);
    let listener = UnixListener::bind(&opts.socket)?;
    let counters = DaemonCounters::default();
    let stop = AtomicBool::new(false);
    eprintln!(
        "[fabric] daemon listening on {} (max {} mapping request(s) in flight)",
        opts.socket.display(),
        opts.max_inflight
    );
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let counters = &counters;
            let stop = &stop;
            let opts_ref = opts;
            scope.spawn(move || {
                if handle_connection(stream, opts_ref, counters) {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it observes the flag.
                    let _ = UnixStream::connect(&opts_ref.socket);
                }
            });
        }
    });
    let _ = std::fs::remove_file(&opts.socket);
    eprintln!(
        "[fabric] daemon shut down ({} served, {} rejected)",
        counters.served.load(Ordering::Relaxed),
        counters.rejected.load(Ordering::Relaxed)
    );
    Ok(())
}

/// Sends one request line over the socket and returns the response line.
/// The client half of the daemon protocol, shared by the `fabric_client`
/// bin and the integration tests.
///
/// # Errors
///
/// Returns the underlying I/O error on connect/write/read failure, or
/// `UnexpectedEof` when the daemon closed without responding.
pub fn request(socket: &Path, line: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    writeln!(stream, "{line}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without a response",
        ));
    }
    Ok(response.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parser_accepts_the_protocol_and_rejects_junk() {
        assert!(matches!(
            parse_request("{\"bench\":\"keyb\"}"),
            Request::Map { bench } if bench == "keyb"
        ));
        assert!(matches!(parse_request("{\"cmd\":\"ping\"}"), Request::Ping));
        assert!(matches!(
            parse_request("{\"cmd\":\"stats\"}"),
            Request::Stats
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"shutdown\"}"),
            Request::Shutdown
        ));
        for junk in [
            "",
            "hello",
            "{\"cmd\":\"reboot\"}",
            "{\"bench\":\"keyb\",\"cmd\":\"ping\"}",
            "{\"wat\":\"x\"}",
        ] {
            assert!(
                matches!(parse_request(junk), Request::Malformed(_)),
                "accepted junk request: {junk}"
            );
        }
    }

    #[test]
    fn worker_label_extraction_matches_argv_convention() {
        // This test binary was not started with --worker.
        assert_eq!(worker_invocation_label(), None);
    }

    #[test]
    fn error_responses_are_single_json_lines() {
        let r = error_response("overloaded", "busy\nretry");
        assert!(!r.contains('\n'), "response must stay one line: {r}");
        assert!(r.contains("\"ok\":false"));
        assert!(r.contains("\"kind\":\"overloaded\""));
    }
}
