//! Multi-process flow fabric: worker processes and the mapping daemon.
//!
//! Two layers sit on top of [`crate::runner`]'s `run()` entry point:
//!
//! **Process backend** (`RUNNER_BACKEND=process`). The coordinator — the
//! ordinary harness binary — spawns `--worker <label>` re-invocations of
//! *itself* (`std::env::current_exe()`), one per configured worker. A
//! worker re-executes `main` until it reaches the `run()` call whose
//! label matches its `--worker` argument, then serves items from stdin
//! instead of computing the item list: the coordinator writes one
//! JSON-encoded item name per line, the worker answers each with a
//! sentinel-prefixed checkpoint line on stdout, and EOF on stdin is the
//! shutdown signal. The closure `f` exists in the worker because the
//! worker *is* the same binary — no serialization of work, only of item
//! names and row results.
//!
//! Contract with the other backends:
//!
//! * **byte identity** — rows come back through the same
//!   `ItemOutcome`/checkpoint-line codec, are reassembled in input order
//!   by the coordinator, and every worker computes attempt 0 with the
//!   canonical seed, so the emitted table is identical whatever the
//!   worker count (the serial-vs-parallel gate in `scripts/verify.sh`
//!   extends verbatim to this backend);
//! * **checkpointing** — only the coordinator appends to the checkpoint
//!   file (through the same serialized, fsync'd sink as the thread
//!   backend), so resume semantics and line sets are unchanged and
//!   worker processes never contend on the file;
//! * **crash isolation** — a worker that dies (abort, OOM-kill,
//!   `kill -9`) costs exactly its in-flight item: the coordinator
//!   respawns a worker and resubmits, and after
//!   [`PROCESS_ATTEMPTS_PER_ITEM`] consecutive process deaths on the
//!   same item falls back to computing it inline under `catch_unwind`
//!   (so even an unspawnable environment still completes the run);
//! * **shared store** — workers inherit `FLOW_CACHE_DIR`, so all
//!   processes share the content-addressed on-disk artifact store; the
//!   concurrent-process hardening in `emb_fsm::cache` (re-stat before
//!   evict, ENOENT-safe refresh, atomic publishes) is what makes that
//!   safe.
//!
//! **Daemon mode** ([`serve`], the `fabric_daemon` bin). A long-running
//! service that accepts mapping requests over a Unix socket: one JSON
//! request line per connection, one JSON response line back. Admission
//! control bounds concurrently *running* mapping requests
//! ([`DaemonOptions::max_inflight`]); a request over the bound gets a
//! typed `{"ok":false,"kind":"overloaded"}` reject immediately
//! (backpressure the client can see) instead of queueing without bound.
//! Repeated requests amortize warm flow-cache hits — the response
//! carries the per-request cache delta and a `warm` flag so callers (and
//! the verify.sh smoke gate) can observe it. Control commands (`ping`,
//! `stats`, `shutdown`) bypass admission so the daemon stays steerable
//! under load.

pub mod chaos;

use crate::runner::{
    checkpoint_line, json_string, parse_checkpoint_line, run_one, CheckpointSink, ItemOutcome,
    JsonCursor, RunnerOptions,
};
use std::fmt;
use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Protocol sentinel prefixing every line a worker writes for the
/// coordinator. Anything else on the worker's stdout (a stray `println!`
/// from an unrelated part of the harness binary) is ignored, so the
/// protocol survives bins that print between `run()` calls.
const SENTINEL: &str = "RUNNER-WORKER";

/// Distinct worker *processes* tried per item before the coordinator
/// computes it inline. Process attempts are orthogonal to
/// [`RunnerOptions::max_attempts`]: each submission runs the full
/// bounded-retry loop inside whichever process executes it.
const PROCESS_ATTEMPTS_PER_ITEM: u32 = 2;

/// Effectively-infinite deadline used when a timeout knob is set to 0
/// ("disabled"): one year, far beyond any run, yet still a valid
/// `Duration` for `recv_timeout` arithmetic.
const FOREVER: Duration = Duration::from_secs(365 * 24 * 60 * 60);

// --- supervision types ------------------------------------------------

/// Coordinator-side supervision knobs for the process backend, read once
/// per run from the environment.
#[derive(Debug, Clone)]
pub(crate) struct FabricTuning {
    /// Deadline for one submitted item (`RUNNER_ITEM_TIMEOUT_MS`,
    /// default 300000 ms; 0 disables the deadline).
    pub(crate) item_timeout: Duration,
    /// Deadline for a fresh worker's READY handshake
    /// (`RUNNER_HANDSHAKE_TIMEOUT_MS`, default 10000 ms).
    pub(crate) handshake_timeout: Duration,
    /// Consecutive strikes (timeouts/deaths with no intervening success)
    /// before a worker slot is quarantined (`RUNNER_MAX_STRIKES`,
    /// default 3, minimum 1).
    pub(crate) max_strikes: u32,
    /// Base respawn backoff in milliseconds (`RUNNER_BACKOFF_BASE_MS`,
    /// default 50); doubled per strike, capped at 2 s, plus jitter.
    pub(crate) backoff_base_ms: u64,
}

/// Reads a millisecond knob from the environment, tolerating junk.
fn env_ms(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl FabricTuning {
    pub(crate) fn from_env() -> Self {
        let item_ms = env_ms("RUNNER_ITEM_TIMEOUT_MS", 300_000);
        FabricTuning {
            item_timeout: if item_ms == 0 {
                FOREVER
            } else {
                Duration::from_millis(item_ms)
            },
            handshake_timeout: Duration::from_millis(
                env_ms("RUNNER_HANDSHAKE_TIMEOUT_MS", 10_000).max(1),
            ),
            max_strikes: u32::try_from(env_ms("RUNNER_MAX_STRIKES", 3))
                .unwrap_or(u32::MAX)
                .max(1),
            backoff_base_ms: env_ms("RUNNER_BACKOFF_BASE_MS", 50),
        }
    }
}

/// One supervision event recorded by the process-backend coordinator.
/// The full event list rides in [`FabricHealth::events`] so callers can
/// distinguish "clean run" from "completed, but only after the
/// supervisor killed a hung worker".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricEvent {
    /// An item blew the per-item deadline; the worker on `slot` was
    /// presumed hung and killed.
    ItemTimeout {
        /// The item that was in flight when the deadline passed.
        item: String,
        /// The coordinator slot whose worker was killed.
        slot: usize,
        /// The deadline that was exceeded, in milliseconds.
        timeout_ms: u64,
    },
    /// A freshly spawned worker missed the READY handshake deadline.
    HandshakeTimeout {
        /// The coordinator slot whose spawn was abandoned.
        slot: usize,
    },
    /// A replacement worker is about to be spawned after a strike, once
    /// the backoff expires.
    Respawn {
        /// The slot being respawned.
        slot: usize,
        /// Consecutive strike count that triggered this respawn.
        strike: u32,
        /// Backoff slept before the respawn, in milliseconds.
        backoff_ms: u64,
    },
    /// The slot exhausted its strikes; items it claims from now on are
    /// computed inline by the coordinator instead.
    Quarantine {
        /// The quarantined slot.
        slot: usize,
        /// Consecutive strikes accumulated when quarantine triggered.
        strikes: u32,
    },
}

impl fmt::Display for FabricEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricEvent::ItemTimeout {
                item,
                slot,
                timeout_ms,
            } => write!(
                f,
                "slot {slot}: item '{item}' exceeded {timeout_ms} ms; worker killed"
            ),
            FabricEvent::HandshakeTimeout { slot } => {
                write!(f, "slot {slot}: worker missed the READY handshake deadline")
            }
            FabricEvent::Respawn {
                slot,
                strike,
                backoff_ms,
            } => write!(
                f,
                "slot {slot}: respawning after strike {strike} (backoff {backoff_ms} ms)"
            ),
            FabricEvent::Quarantine { slot, strikes } => write!(
                f,
                "slot {slot}: quarantined after {strikes} consecutive strike(s); falling back inline"
            ),
        }
    }
}

/// Aggregate supervision health of one run, carried on
/// `RunOutcome::health`. A clean run (no timeouts, no respawns, no
/// quarantines) has empty `events` and zeroed counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FabricHealth {
    /// Item + handshake deadline expiries.
    pub timeouts: u64,
    /// Workers respawned after a strike.
    pub respawns: u64,
    /// Worker slots quarantined after exhausting their strikes.
    pub quarantined: u64,
    /// The full event stream, in the order the coordinator recorded it.
    pub events: Vec<FabricEvent>,
}

impl FabricHealth {
    /// Folds an event stream into counters.
    #[must_use]
    pub fn from_events(events: Vec<FabricEvent>) -> Self {
        let mut health = FabricHealth {
            events,
            ..FabricHealth::default()
        };
        for e in &health.events {
            match e {
                FabricEvent::ItemTimeout { .. } | FabricEvent::HandshakeTimeout { .. } => {
                    health.timeouts += 1;
                }
                FabricEvent::Respawn { .. } => health.respawns += 1,
                FabricEvent::Quarantine { .. } => health.quarantined += 1,
            }
        }
        health
    }

    /// `true` when the run needed no supervisor intervention.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }
}

// --- worker side ------------------------------------------------------

/// The label this process was spawned to serve, when it is a `--worker`
/// re-invocation of a harness binary; `None` in ordinary processes.
#[must_use]
pub fn worker_invocation_label() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--worker" {
            return args.next();
        }
    }
    None
}

/// Serves items from stdin until EOF, then exits the process (a worker
/// must never fall through to the harness binary's table-printing code —
/// its stdout is the protocol channel).
///
/// Wire format: the coordinator sends one JSON string (the item name)
/// per line; the worker answers `RUNNER-WORKER RESULT <checkpoint-line>`
/// and flushes. Item panics are fenced inside [`run_one`] exactly as in
/// the other backends; only an abort-class death (the thing this backend
/// exists to isolate) ends the process early.
pub(crate) fn worker_loop<F>(opts: &RunnerOptions, f: &F) -> !
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String> + Sync,
{
    // Wire-fault injection is a no-op unless FABRIC_CHAOS_SEED is set
    // (the chaos campaign sets it; production workers never see it).
    let plan = chaos::FaultPlan::from_env();
    let stdout = std::io::stdout();
    {
        if let Some(p) = &plan {
            p.stall_handshake();
        }
        let mut out = stdout.lock();
        let ok = writeln!(out, "{SENTINEL} READY {}", json_string(&opts.label))
            .and_then(|()| out.flush());
        if ok.is_err() {
            std::process::exit(0); // coordinator already gone
        }
    }
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => std::process::exit(0), // EOF: clean shutdown
            Ok(_) => {}
        }
        let Some(item) = JsonCursor::new(line.trim()).string() else {
            // Protocol violation: refuse to guess what the coordinator
            // meant; exiting surfaces as a dead worker on its side.
            std::process::exit(2);
        };
        let outcome = run_one(&item, opts.max_attempts, f);
        let payload = format!("{SENTINEL} RESULT {}", checkpoint_line(&item, &outcome));
        let mut out = stdout.lock();
        let ok = match &plan {
            Some(p) => p.deliver(&mut out, &payload, &item),
            None => writeln!(out, "{payload}").and_then(|()| out.flush()),
        };
        if ok.is_err() {
            std::process::exit(0);
        }
    }
}

// --- coordinator side -------------------------------------------------

/// Why a submission to (or handshake with) a worker failed.
enum SubmitError {
    /// The deadline passed with no parseable result; the worker is
    /// presumed hung and must be killed, not reaped gracefully.
    Timeout,
    /// The worker's stdout closed, errored, or produced unrecoverable
    /// garbage; the process is dead or useless.
    Died(String),
}

/// One spawned worker process. Its stdout is drained by a dedicated
/// reader thread into a channel, which is what lets the coordinator
/// impose deadlines on protocol reads (`recv_timeout`) without
/// platform-specific non-blocking pipe I/O.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    lines: mpsc::Receiver<std::io::Result<String>>,
    reader: std::thread::JoinHandle<()>,
}

impl Worker {
    /// Spawns a `--worker <label>` re-invocation of the current binary
    /// and waits (at most `handshake_timeout`) for its READY handshake.
    /// A missed handshake surfaces as `ErrorKind::TimedOut` so the
    /// caller can record it as a distinct supervision event.
    fn spawn(label: &str, handshake_timeout: Duration) -> std::io::Result<Worker> {
        let exe = std::env::current_exe()?;
        let mut child = Command::new(exe)
            .arg("--worker")
            .arg(label)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit()) // retry/diagnostic lines stay visible
            .spawn()?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take();
        let (Some(stdin), Some(stdout)) = (stdin, stdout) else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other("worker pipes unavailable"));
        };
        let (tx, lines) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut out = BufReader::new(stdout);
            loop {
                let mut line = String::new();
                match out.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if tx.send(Ok(line)).is_err() {
                            break; // coordinator dropped the worker
                        }
                    }
                    Err(e) => {
                        // Includes invalid-UTF-8 garbage on the pipe: the
                        // coordinator sees it as a dead worker.
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            }
        });
        let mut worker = Worker {
            child,
            stdin,
            lines,
            reader,
        };
        let ready = format!("{SENTINEL} READY {}", json_string(label));
        match worker.recv_protocol_line(&ready, "", Instant::now() + handshake_timeout) {
            Ok(_) => Ok(worker),
            Err(SubmitError::Timeout) => {
                worker.dispose(true);
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "worker missed the READY handshake deadline",
                ))
            }
            Err(SubmitError::Died(why)) => {
                worker.dispose(true);
                Err(std::io::Error::other(why))
            }
        }
    }

    /// Receives stdout lines until one equals `exact` or starts with
    /// `prefix` (when non-empty), ignoring non-protocol chatter. Returns
    /// `Timeout` once `deadline` passes — chatter keeps being consumed
    /// until then, so a slow-dripping worker cannot stall the
    /// coordinator past the deadline.
    fn recv_protocol_line(
        &mut self,
        exact: &str,
        prefix: &str,
        deadline: Instant,
    ) -> Result<String, SubmitError> {
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(SubmitError::Timeout);
            }
            match self.lines.recv_timeout(left) {
                Ok(Ok(line)) => {
                    let t = line.trim_end();
                    if t == exact {
                        return Ok(t.to_string());
                    }
                    if !prefix.is_empty() {
                        if let Some(rest) = t.strip_prefix(prefix) {
                            return Ok(rest.to_string());
                        }
                    }
                    // Non-protocol chatter: keep reading.
                }
                Ok(Err(e)) => return Err(SubmitError::Died(format!("worker stdout error: {e}"))),
                Err(mpsc::RecvTimeoutError::Timeout) => return Err(SubmitError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(SubmitError::Died("worker exited".to_string()))
                }
            }
        }
    }

    /// Submits one item and waits at most `timeout` for its outcome.
    fn submit(&mut self, item: &str, timeout: Duration) -> Result<ItemOutcome, SubmitError> {
        let sent = writeln!(self.stdin, "{}", json_string(item)).and_then(|()| self.stdin.flush());
        if let Err(e) = sent {
            return Err(SubmitError::Died(format!("worker stdin closed: {e}")));
        }
        let deadline = Instant::now() + timeout;
        let result_prefix = format!("{SENTINEL} RESULT ");
        loop {
            let rest = self.recv_protocol_line("", &result_prefix, deadline)?;
            let Some((got_item, outcome)) = parse_checkpoint_line(&rest) else {
                return Err(SubmitError::Died("unparseable worker result".to_string()));
            };
            if got_item == item {
                return Ok(outcome);
            }
            // A result for some other item (e.g. a stale line after a
            // protocol hiccup): keep reading for ours.
        }
    }

    /// Reaps the worker. `kill` forces termination first (the path for
    /// hung or garbage-spewing workers); otherwise dropping stdin is the
    /// EOF shutdown signal and the worker exits on its own. Either way
    /// the reader thread drains to pipe EOF and is joined.
    fn dispose(self, kill: bool) {
        let Worker {
            mut child,
            stdin,
            lines,
            reader,
        } = self;
        if kill {
            let _ = child.kill();
        }
        drop(stdin);
        let _ = child.wait();
        drop(lines);
        let _ = reader.join();
    }
}

/// Supervision state for one coordinator slot: the worker it currently
/// fields, its consecutive-strike count, and whether it has been
/// quarantined. State machine per DESIGN.md §13:
/// running → timed-out/died → respawning(backoff) → running, and after
/// `max_strikes` consecutive failures → quarantined (inline fallback).
struct SlotSupervisor<'a> {
    slot: usize,
    label: &'a str,
    tuning: &'a FabricTuning,
    events: &'a Mutex<Vec<FabricEvent>>,
    worker: Option<Worker>,
    strikes: u32,
    quarantined: bool,
}

impl<'a> SlotSupervisor<'a> {
    fn new(
        slot: usize,
        label: &'a str,
        tuning: &'a FabricTuning,
        events: &'a Mutex<Vec<FabricEvent>>,
    ) -> Self {
        SlotSupervisor {
            slot,
            label,
            tuning,
            events,
            worker: None,
            strikes: 0,
            quarantined: false,
        }
    }

    fn record(&self, event: FabricEvent) {
        eprintln!("[fabric] {}: {event}", self.label);
        lock_unpoisoned(self.events).push(event);
    }

    /// One failure on this slot: count a consecutive strike, then either
    /// quarantine (strikes ≥ max) or back off before the next spawn.
    fn strike(&mut self) {
        self.strikes += 1;
        if self.strikes >= self.tuning.max_strikes {
            self.quarantined = true;
            self.record(FabricEvent::Quarantine {
                slot: self.slot,
                strikes: self.strikes,
            });
        } else {
            let backoff_ms =
                backoff_with_jitter(self.tuning.backoff_base_ms, self.strikes, self.label, self.slot);
            self.record(FabricEvent::Respawn {
                slot: self.slot,
                strike: self.strikes,
                backoff_ms,
            });
            std::thread::sleep(Duration::from_millis(backoff_ms));
        }
    }

    /// Ensures `self.worker` holds a live worker, spawning one inside
    /// the handshake deadline if needed. A missed handshake strikes; an
    /// unspawnable environment (no current_exe, fork failure) quarantines
    /// immediately — retrying a spawn that cannot succeed per item would
    /// only slow the inline fallback down.
    fn ensure_worker(&mut self) {
        if self.worker.is_some() || self.quarantined {
            return;
        }
        match Worker::spawn(self.label, self.tuning.handshake_timeout) {
            Ok(w) => self.worker = Some(w),
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {
                self.record(FabricEvent::HandshakeTimeout { slot: self.slot });
                self.strike();
            }
            Err(e) => {
                eprintln!(
                    "[runner] {}: cannot spawn worker process ({e}); computing inline",
                    self.label
                );
                self.quarantined = true;
            }
        }
    }

    /// Tries the item on up to [`PROCESS_ATTEMPTS_PER_ITEM`] worker
    /// processes under the per-item deadline. `None` means process
    /// isolation is exhausted (or the slot is quarantined) and the
    /// caller must compute inline.
    fn submit_item(&mut self, item: &str) -> Option<ItemOutcome> {
        for _ in 0..PROCESS_ATTEMPTS_PER_ITEM {
            if self.quarantined {
                return None;
            }
            self.ensure_worker();
            let timeout = self.tuning.item_timeout;
            let result = match self.worker.as_mut() {
                None => continue, // spawn failed; strike already counted
                Some(w) => w.submit(item, timeout),
            };
            match result {
                Ok(o) => {
                    self.strikes = 0; // strikes are consecutive, not cumulative
                    return Some(o);
                }
                Err(SubmitError::Timeout) => {
                    self.record(FabricEvent::ItemTimeout {
                        item: item.to_string(),
                        slot: self.slot,
                        timeout_ms: u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX),
                    });
                    if let Some(hung) = self.worker.take() {
                        hung.dispose(true);
                    }
                    self.strike();
                }
                Err(SubmitError::Died(why)) => {
                    eprintln!(
                        "[runner] {}: worker died on '{item}' ({why}); supervising",
                        self.label
                    );
                    if let Some(dead) = self.worker.take() {
                        dead.dispose(true);
                    }
                    self.strike();
                }
            }
        }
        None
    }
}

/// Exponential backoff (base · 2^(strike−1), capped at 2 s) plus a
/// deterministic jitter drawn from the (label, slot, strike) triple, so
/// striking slots never thunder in lockstep yet reruns stay
/// reproducible.
fn backoff_with_jitter(base_ms: u64, strike: u32, label: &str, slot: usize) -> u64 {
    let exp = base_ms
        .saturating_mul(1_u64 << strike.saturating_sub(1).min(10))
        .min(2_000);
    let mut state = chaos::fnv1a(label.as_bytes()) ^ ((slot as u64) << 32) ^ u64::from(strike);
    exp + xrand::splitmix64(&mut state) % (exp / 2).max(1)
}

/// Runs the pending items on `workers` supervised worker slots, writing
/// results through the coordinator's checkpoint sink and supervision
/// events into `events`. Returns outcomes aligned with `pending`. See
/// the module docs for the contract.
pub(crate) fn run_pending_in_workers<F>(
    opts: &RunnerOptions,
    sink: &CheckpointSink<'_>,
    pending: &[(usize, &String)],
    workers: usize,
    events: &Mutex<Vec<FabricEvent>>,
    f: &F,
) -> Vec<Option<ItemOutcome>>
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String> + Sync,
{
    let tuning = FabricTuning::from_env();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ItemOutcome>>> =
        (0..pending.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let slots = &slots;
        let tuning = &tuning;
        for slot in 0..workers {
            scope.spawn(move || {
                let mut sup = SlotSupervisor::new(slot, &opts.label, tuning, events);
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, item)) = pending.get(k) else {
                        break;
                    };
                    // Last resort when process isolation is exhausted:
                    // inline under catch_unwind keeps the run complete (a
                    // true abort here would kill the coordinator — the
                    // trade accepted by exhausting process attempts).
                    let o = sup
                        .submit_item(item)
                        .unwrap_or_else(|| run_one(item, opts.max_attempts, f));
                    sink.append(item, &o);
                    *lock_unpoisoned(&slots[k]) = Some(o);
                }
                if let Some(w) = sup.worker.take() {
                    w.dispose(false);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        .collect()
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// --- daemon mode ------------------------------------------------------

/// Configuration for the mapping daemon.
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Unix socket path to listen on. A *stale* socket file is removed;
    /// a socket a live daemon still answers on is never clobbered —
    /// [`serve`] probe-connects first and returns a typed
    /// `already-running` error instead.
    pub socket: PathBuf,
    /// Admission bound: mapping requests allowed in flight at once.
    /// Requests beyond it receive a typed `overloaded` reject.
    pub max_inflight: usize,
    /// Per-request deadline for admitted work (map/sleep). A request
    /// past it gets a typed `deadline` reject while the work runs to
    /// completion in the background (its admission slot is released only
    /// when it actually finishes). Zero disables the deadline.
    pub request_timeout: Duration,
    /// Idle-connection sweep: how long an accepted connection may sit
    /// silent before it is closed with a typed `idle` response.
    pub idle_timeout: Duration,
}

impl DaemonOptions {
    /// Daemon listening on `socket` with defaults: in-flight bound 4,
    /// request deadline 120 s, idle sweep 10 s.
    #[must_use]
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        DaemonOptions {
            socket: socket.into(),
            max_inflight: 4,
            request_timeout: Duration::from_millis(120_000),
            idle_timeout: Duration::from_millis(10_000),
        }
    }

    /// [`DaemonOptions::new`] with the lifecycle knobs read from the
    /// environment: `FABRIC_REQUEST_TIMEOUT_MS` (0 disables) and
    /// `FABRIC_IDLE_TIMEOUT_MS` (clamped to ≥ 1 ms).
    #[must_use]
    pub fn from_env(socket: impl Into<PathBuf>) -> Self {
        let mut opts = DaemonOptions::new(socket);
        let request_ms = env_ms("FABRIC_REQUEST_TIMEOUT_MS", 120_000);
        opts.request_timeout = if request_ms == 0 {
            FOREVER
        } else {
            Duration::from_millis(request_ms)
        };
        opts.idle_timeout = Duration::from_millis(env_ms("FABRIC_IDLE_TIMEOUT_MS", 10_000).max(1));
        opts
    }
}

/// Counters the daemon exposes through the `stats` command, plus the
/// drain flag and the active-connection count the accept loop watches.
/// `inflight` tracks admitted *work* (released by the job thread even
/// after a deadline reject, so admission stays honest about work still
/// running); `active_conns` tracks connection handlers (what graceful
/// drain waits on).
#[derive(Debug, Default)]
struct DaemonCounters {
    served: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    idle_closed: AtomicU64,
    inflight: AtomicUsize,
    active_conns: AtomicUsize,
    draining: AtomicBool,
}

/// A parsed request line.
enum Request {
    Map {
        bench: String,
        backend: Option<emb_fsm::MapBackend>,
    },
    Sleep {
        ms: u64,
    },
    Ping,
    Stats,
    Shutdown,
    Malformed(String),
}

/// Parses one request line: `{"bench":"keyb"}` (optionally with
/// `"backend":"direct"|"overlay"|"auto"` forcing the mapping backend),
/// `{"cmd":"ping"}` / `{"cmd":"stats"}` / `{"cmd":"shutdown"}`, or the
/// deterministic load-stand-in `{"cmd":"sleep","ms":N}`.
fn parse_request(line: &str) -> Request {
    let mut p = JsonCursor::new(line.trim());
    let bad = |why: &str| Request::Malformed(why.to_string());
    if p.next_non_ws() != Some('{') {
        return bad("request is not a JSON object");
    }
    let mut cmd = None;
    let mut bench = None;
    let mut ms = None;
    let mut backend = None;
    loop {
        let Some(key) = p.string() else {
            return bad("expected a string key");
        };
        if p.next_non_ws() != Some(':') {
            return bad("expected ':'");
        }
        match key.as_str() {
            "cmd" => match p.string() {
                Some(v) => cmd = Some(v),
                None => return bad("expected a string value"),
            },
            "bench" => match p.string() {
                Some(v) => bench = Some(v),
                None => return bad("expected a string value"),
            },
            "ms" => match p.number() {
                Some(v) => ms = Some(u64::from(v)),
                None => return bad("expected a number value"),
            },
            "backend" => match p.string() {
                Some(v) => match emb_fsm::MapBackend::parse(&v) {
                    Some(b) => backend = Some(b),
                    None => return bad("backend must be direct, overlay or auto"),
                },
                None => return bad("expected a string value"),
            },
            _ => return bad("unknown request field"),
        }
        match p.next_non_ws() {
            Some(',') => continue,
            Some('}') => break,
            _ => return bad("expected ',' or '}'"),
        }
    }
    match (cmd.as_deref(), bench, ms, backend) {
        (None, Some(bench), None, backend) => Request::Map { bench, backend },
        (Some("sleep"), None, Some(ms), None) => Request::Sleep { ms },
        (Some("ping"), None, None, None) => Request::Ping,
        (Some("stats"), None, None, None) => Request::Stats,
        (Some("shutdown"), None, None, None) => Request::Shutdown,
        _ => bad("request needs either \"bench\" or a known \"cmd\""),
    }
}

/// A typed reject/error response line.
fn error_response(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"kind\":{},\"error\":{}}}",
        json_string(kind),
        json_string(message)
    )
}

/// Runs the FF-vs-EMB mapping flow for one benchmark and renders the
/// response line, including the request's own flow-cache delta (thread
/// locals: each connection is handled on a fresh thread, so the delta is
/// exactly this request's traffic).
fn handle_map(bench: &str, backend: Option<emb_fsm::MapBackend>) -> String {
    let Some(stg) = fsm_model::benchmarks::by_name(bench) else {
        // Not a paper benchmark: corpus item names (`cx.<tier>...`) are
        // self-describing, so the daemon can serve synthetic load too —
        // `corpus_stress` uses this as its daemon pass.
        if fsm_model::corpus::decode_spec(bench).is_some() {
            return handle_corpus_map(bench, backend);
        }
        return error_response(
            "unknown-bench",
            &format!("no benchmark named '{bench}' (see fsm_model::benchmarks or fsm_model::corpus)"),
        );
    };
    let started = Instant::now();
    let before = emb_fsm::cache::stats_snapshot();
    let mut cfg = crate::paper_config();
    if let Some(b) = backend {
        cfg.backend = b;
    }
    match crate::try_compare(&stg, &emb_fsm::flow::Stimulus::Random, &cfg) {
        Err(e) => error_response("flow", &e.to_string()),
        Ok((ff, emb)) => {
            let delta = emb_fsm::cache::stats_snapshot().since(before);
            let warm = delta.misses == 0 && delta.hits > 0;
            let (ff_mw, emb_mw) = match (ff.power.first(), emb.power.first()) {
                (Some(a), Some(b)) => (a.total_mw(), b.total_mw()),
                _ => (0.0, 0.0),
            };
            format!(
                "{{\"ok\":true,\"bench\":{},\"device\":{},\
                 \"ff\":{{\"luts\":{},\"ffs\":{},\"slices\":{},\"mw\":{ff_mw:.3}}},\
                 \"emb\":{{\"luts\":{},\"slices\":{},\"brams\":{},\"mw\":{emb_mw:.3}}},\
                 \"saving_pct\":{:.1},\
                 \"cache\":{{\"hits\":{},\"misses\":{}}},\"warm\":{warm},\
                 \"ms\":{}}}",
                json_string(&ff.name),
                json_string(ff.device.name),
                ff.area.luts,
                ff.area.ffs,
                ff.area.slices,
                emb.area.luts,
                emb.area.slices,
                emb.area.brams,
                if ff_mw > 0.0 {
                    100.0 * (ff_mw - emb_mw) / ff_mw
                } else {
                    0.0
                },
                delta.hits,
                delta.misses,
                started.elapsed().as_millis()
            )
        }
    }
}

/// Runs one corpus item through its tier's flow profile and renders the
/// response line. The outcome columns are exactly the ones
/// [`crate::corpus::run_item`] computes for the batch passes, so a
/// daemon response and a runner row for the same item always agree.
fn handle_corpus_map(item: &str, backend: Option<emb_fsm::MapBackend>) -> String {
    let started = Instant::now();
    let before = emb_fsm::cache::stats_snapshot();
    let o = crate::corpus::run_item_with_backend(item, backend);
    let delta = emb_fsm::cache::stats_snapshot().since(before);
    let warm = delta.misses == 0 && delta.hits > 0;
    format!(
        "{{\"ok\":true,\"item\":{},\"tier\":{},\"status\":{},\
         \"kind\":{},\"device\":{},\"rung\":{},\"downgrades\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{}}},\"warm\":{warm},\
         \"ms\":{}}}",
        json_string(&o.item),
        json_string(&o.tier),
        json_string(&o.status),
        json_string(&o.impl_kind),
        json_string(&o.device),
        json_string(&o.rung),
        json_string(&o.downgrades),
        delta.hits,
        delta.misses,
        started.elapsed().as_millis()
    )
}

/// Runs `job` on a detached thread and waits at most `timeout` for its
/// response line. On deadline the caller gets a typed `deadline` reject
/// while the job runs to completion in the background — the job thread,
/// not this function, releases the admission slot, so `inflight` keeps
/// reflecting work actually running. Returns `(response, timed_out)`.
fn run_with_deadline(
    counters: &Arc<DaemonCounters>,
    timeout: Duration,
    job: impl FnOnce() -> String + Send + 'static,
) -> (String, bool) {
    let (tx, rx) = mpsc::channel();
    let counters = Arc::clone(counters);
    std::thread::spawn(move || {
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
            .unwrap_or_else(|_| error_response("flow", "request thread panicked"));
        counters.inflight.fetch_sub(1, Ordering::SeqCst);
        let _ = tx.send(response);
    });
    match rx.recv_timeout(timeout) {
        Ok(response) => (response, false),
        Err(_) => (
            error_response(
                "deadline",
                &format!(
                    "request exceeded the {} ms deadline; it completes in the background",
                    timeout.as_millis()
                ),
            ),
            true,
        ),
    }
}

/// Admits one unit of expensive work (or rejects with `draining` /
/// `overloaded`) and runs it under the per-request deadline, updating
/// the served/rejected/timeouts counters. Returns the response line.
fn admit_and_run(
    opts: &DaemonOptions,
    counters: &Arc<DaemonCounters>,
    job: impl FnOnce() -> String + Send + 'static,
) -> String {
    if counters.draining.load(Ordering::SeqCst) {
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return error_response(
            "draining",
            "daemon is draining after a shutdown request; no new work accepted",
        );
    }
    // Admission control: claim a slot or reject — never block.
    let admitted = counters
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < opts.max_inflight).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        return error_response(
            "overloaded",
            &format!(
                "daemon at capacity ({} mapping request(s) in flight); retry later",
                opts.max_inflight
            ),
        );
    }
    let (response, timed_out) = run_with_deadline(counters, opts.request_timeout, job);
    if timed_out {
        counters.timeouts.fetch_add(1, Ordering::Relaxed);
    } else {
        counters.served.fetch_add(1, Ordering::Relaxed);
    }
    response
}

/// Handles one connection: read a request line, write a response line.
/// Returns `true` when the request asked the daemon to shut down (the
/// drain flag is already set by then).
fn handle_connection(
    stream: UnixStream,
    opts: &DaemonOptions,
    counters: &Arc<DaemonCounters>,
) -> bool {
    // The listener hands us the stream from a non-blocking accept loop;
    // reads must block (bounded by the idle sweep), not spin.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(opts.idle_timeout.max(Duration::from_millis(1))));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return false,
    });
    let mut writer = stream;
    let respond = |writer: &mut UnixStream, body: &str| {
        let _ = writeln!(writer, "{body}");
        let _ = writer.flush();
    };
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return false,
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            // Idle sweep: the client connected but never sent a request
            // line inside the window. Tell it why before hanging up.
            counters.idle_closed.fetch_add(1, Ordering::Relaxed);
            respond(
                &mut writer,
                &error_response("idle", "connection sat idle past the sweep deadline"),
            );
            return false;
        }
        Err(_) => return false,
    }
    match parse_request(&line) {
        Request::Malformed(why) => {
            respond(&mut writer, &error_response("bad-request", &why));
            false
        }
        Request::Ping => {
            respond(&mut writer, "{\"ok\":true,\"pong\":true}");
            false
        }
        Request::Stats => {
            respond(
                &mut writer,
                &format!(
                    "{{\"ok\":true,\"served\":{},\"rejected\":{},\"timeouts\":{},\
                     \"idle_closed\":{},\"inflight\":{},\"max_inflight\":{},\"draining\":{}}}",
                    counters.served.load(Ordering::Relaxed),
                    counters.rejected.load(Ordering::Relaxed),
                    counters.timeouts.load(Ordering::Relaxed),
                    counters.idle_closed.load(Ordering::Relaxed),
                    counters.inflight.load(Ordering::Relaxed),
                    opts.max_inflight,
                    counters.draining.load(Ordering::SeqCst)
                ),
            );
            false
        }
        Request::Shutdown => {
            // Graceful drain: flip the flag *before* acking so any
            // request racing the ack already sees `draining`.
            counters.draining.store(true, Ordering::SeqCst);
            respond(&mut writer, "{\"ok\":true,\"shutdown\":true}");
            true
        }
        Request::Map { bench, backend } => {
            let response = admit_and_run(opts, counters, move || handle_map(&bench, backend));
            respond(&mut writer, &response);
            false
        }
        Request::Sleep { ms } => {
            // Deterministic stand-in for a long mapping request, used by
            // the drain/deadline tests and the verify.sh smoke gate. The
            // cap keeps a typo from parking a thread for hours.
            let capped = ms.min(600_000);
            let response = admit_and_run(opts, counters, move || {
                std::thread::sleep(Duration::from_millis(capped));
                format!("{{\"ok\":true,\"slept_ms\":{capped}}}")
            });
            respond(&mut writer, &response);
            false
        }
    }
}

/// Runs the mapping daemon until a `shutdown` request arrives, then
/// drains gracefully: in-flight connections finish, new work is
/// rejected with a typed `draining` response, and the socket is
/// unlinked only once the last handler returns.
///
/// One request line per connection, one response line back, connection
/// closed — the simplest protocol that lets `nc`-grade clients talk to
/// it. Each connection is handled on its own thread; admission control
/// bounds the *expensive* (mapping) work, not the cheap control
/// commands.
///
/// # Errors
///
/// Returns `AddrInUse` with an `already-running:` message when a live
/// daemon still answers on the socket (probe-connect before unlink — a
/// stale file from a killed daemon is removed, a live one is never
/// clobbered), or the underlying I/O error when the socket cannot be
/// bound.
pub fn serve(opts: &DaemonOptions) -> std::io::Result<()> {
    if opts.socket.exists() {
        match UnixStream::connect(&opts.socket) {
            Ok(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!(
                        "already-running: a live daemon answers on {}",
                        opts.socket.display()
                    ),
                ));
            }
            // Nothing answers: a stale file from a killed daemon.
            Err(_) => {
                let _ = std::fs::remove_file(&opts.socket);
            }
        }
    }
    let listener = UnixListener::bind(&opts.socket)?;
    // Non-blocking accept: the loop polls so it can observe the drain
    // flag without needing a self-connection to unblock itself.
    listener.set_nonblocking(true)?;
    let counters = Arc::new(DaemonCounters::default());
    eprintln!(
        "[fabric] daemon listening on {} (max {} in flight, request deadline {} ms, idle sweep {} ms)",
        opts.socket.display(),
        opts.max_inflight,
        opts.request_timeout.as_millis(),
        opts.idle_timeout.as_millis()
    );
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        if counters.draining.load(Ordering::SeqCst)
            && counters.active_conns.load(Ordering::SeqCst) == 0
        {
            break; // drained: every in-flight connection has finished
        }
        match listener.accept() {
            Ok((stream, _)) => {
                counters.active_conns.fetch_add(1, Ordering::SeqCst);
                let counters = Arc::clone(&counters);
                let opts = opts.clone();
                handlers.push(std::thread::spawn(move || {
                    // The drain flag is set inside handle_connection
                    // (before the shutdown ack); the return value only
                    // says whether this was the shutdown request.
                    let _ = handle_connection(stream, &opts, &counters);
                    counters.active_conns.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        // Prune finished handlers so a long-lived daemon's join list
        // doesn't grow with every connection it ever served.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(&opts.socket);
    eprintln!(
        "[fabric] daemon drained and shut down ({} served, {} rejected, {} deadline timeout(s), {} idle close(s))",
        counters.served.load(Ordering::Relaxed),
        counters.rejected.load(Ordering::Relaxed),
        counters.timeouts.load(Ordering::Relaxed),
        counters.idle_closed.load(Ordering::Relaxed)
    );
    Ok(())
}

/// Sends one request line over the socket and returns the response line.
/// The client half of the daemon protocol, shared by the `fabric_client`
/// bin and the integration tests.
///
/// # Errors
///
/// Returns the underlying I/O error on connect/write/read failure, or
/// `UnexpectedEof` when the daemon closed without responding.
pub fn request(socket: &Path, line: &str) -> std::io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    writeln!(stream, "{line}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "daemon closed the connection without a response",
        ));
    }
    Ok(response.trim_end().to_string())
}

/// [`request`] with bounded retry-with-backoff on *transient* outcomes:
/// typed `overloaded`/`draining` rejects and connect-level failures (the
/// daemon not yet listening, refused, reset, or closed mid-handshake).
/// Anything else — success, `deadline`, `flow`, `bad-request` — returns
/// immediately. `retries` is the number of extra attempts after the
/// first; backoff starts at 25 ms and doubles to a 400 ms cap.
///
/// # Errors
///
/// Returns the final attempt's I/O error when every attempt failed.
pub fn request_with_retry(socket: &Path, line: &str, retries: u32) -> std::io::Result<String> {
    let mut wait = Duration::from_millis(25);
    let mut attempt = 0u32;
    loop {
        let outcome = request(socket, line);
        let transient = match &outcome {
            Ok(response) => {
                response.contains("\"kind\":\"overloaded\"")
                    || response.contains("\"kind\":\"draining\"")
            }
            Err(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::NotFound
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::UnexpectedEof
            ),
        };
        if !transient || attempt >= retries {
            return outcome;
        }
        attempt += 1;
        std::thread::sleep(wait);
        wait = (wait * 2).min(Duration::from_millis(400));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parser_accepts_the_protocol_and_rejects_junk() {
        assert!(matches!(
            parse_request("{\"bench\":\"keyb\"}"),
            Request::Map { bench, backend: None } if bench == "keyb"
        ));
        assert!(matches!(
            parse_request("{\"bench\":\"keyb\",\"backend\":\"auto\"}"),
            Request::Map { bench, backend: Some(emb_fsm::MapBackend::Auto) } if bench == "keyb"
        ));
        assert!(matches!(
            parse_request("{\"backend\":\"overlay\",\"bench\":\"dk17\"}"),
            Request::Map { backend: Some(emb_fsm::MapBackend::Overlay), .. }
        ));
        assert!(matches!(parse_request("{\"cmd\":\"ping\"}"), Request::Ping));
        assert!(matches!(
            parse_request("{\"cmd\":\"stats\"}"),
            Request::Stats
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"shutdown\"}"),
            Request::Shutdown
        ));
        assert!(matches!(
            parse_request("{\"cmd\":\"sleep\",\"ms\":250}"),
            Request::Sleep { ms: 250 }
        ));
        for junk in [
            "",
            "hello",
            "{\"cmd\":\"reboot\"}",
            "{\"bench\":\"keyb\",\"cmd\":\"ping\"}",
            "{\"wat\":\"x\"}",
            "{\"cmd\":\"sleep\"}",
            "{\"cmd\":\"sleep\",\"ms\":\"soon\"}",
            "{\"ms\":9}",
            "{\"bench\":\"keyb\",\"backend\":\"vliw\"}",
            "{\"backend\":\"auto\"}",
            "{\"cmd\":\"ping\",\"backend\":\"auto\"}",
        ] {
            assert!(
                matches!(parse_request(junk), Request::Malformed(_)),
                "accepted junk request: {junk}"
            );
        }
    }

    #[test]
    fn worker_label_extraction_matches_argv_convention() {
        // This test binary was not started with --worker.
        assert_eq!(worker_invocation_label(), None);
    }

    #[test]
    fn error_responses_are_single_json_lines() {
        let r = error_response("overloaded", "busy\nretry");
        assert!(!r.contains('\n'), "response must stay one line: {r}");
        assert!(r.contains("\"ok\":false"));
        assert!(r.contains("\"kind\":\"overloaded\""));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let a = backoff_with_jitter(50, 1, "table1", 0);
        let b = backoff_with_jitter(50, 1, "table1", 0);
        assert_eq!(a, b, "same (label, slot, strike) must back off identically");
        assert!((50..=75).contains(&a), "strike 1: base + up to half jitter, got {a}");
        let c = backoff_with_jitter(50, 1, "table1", 1);
        let d = backoff_with_jitter(50, 2, "table1", 0);
        assert!((100..=150).contains(&d), "strike 2 doubles, got {d}");
        // Jitter decorrelates slots (not guaranteed unequal in general,
        // but pinned here for the seeds verify.sh relies on).
        assert_ne!(a, c, "slots 0 and 1 must not thunder in lockstep");
        // Cap: enormous strikes stay ≤ 2 s + half jitter.
        let e = backoff_with_jitter(50, 63, "table1", 0);
        assert!(e <= 3_000, "backoff must cap, got {e}");
    }

    #[test]
    fn health_counters_fold_the_event_stream() {
        let health = FabricHealth::from_events(vec![
            FabricEvent::ItemTimeout {
                item: "keyb".to_string(),
                slot: 0,
                timeout_ms: 250,
            },
            FabricEvent::Respawn {
                slot: 0,
                strike: 1,
                backoff_ms: 60,
            },
            FabricEvent::HandshakeTimeout { slot: 1 },
            FabricEvent::Quarantine { slot: 1, strikes: 3 },
        ]);
        assert_eq!(health.timeouts, 2);
        assert_eq!(health.respawns, 1);
        assert_eq!(health.quarantined, 1);
        assert!(!health.is_clean());
        assert!(FabricHealth::default().is_clean());
        // Events render as one-line diagnostics.
        for e in &health.events {
            assert!(!e.to_string().contains('\n'));
        }
    }
}
