//! Seeded wire-level fault injection for the worker protocol.
//!
//! Mirrors `emb_fsm::faultinject`'s campaign style — a typed fault
//! enum, a seed, deterministic per-target fault selection — but aims at
//! a different layer: not the mapped netlist, the *wire protocol*
//! between the process-backend coordinator and its workers. A
//! [`FaultPlan`] wraps the worker's RESULT delivery (and READY
//! handshake) and injects the failure modes a real fleet sees from a
//! sick host: hangs, mid-line kills, torn writes, garbage lines,
//! slow-dripping output, and early EOF.
//!
//! Activation is environment-gated (`FABRIC_CHAOS_SEED`), so production
//! workers never pay for it; the chaos campaign in
//! `tests/chaos_campaign.rs` and the verify.sh chaos gate set the seed
//! and assert the supervised coordinator still emits byte-identical
//! tables.
//!
//! Determinism contract: the fault for an item depends only on
//! `(seed, item)` — every respawned worker draws the *same* fault for
//! the same item. That makes the campaign reproducible and exercises
//! the worst case: a fault that follows the item across respawns until
//! the coordinator's per-item attempts are exhausted and it falls back
//! inline (where no wire exists to fault).

use std::io::Write;
use std::time::Duration;

/// FNV-1a 64-bit hash — the stable, dependency-free way to turn item
/// names and labels into seed material.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One injectable wire fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Deliver the result normally.
    None,
    /// Sleep "forever" (the plan's hang duration) before writing — the
    /// stuck-anneal / blocked-pipe case the per-item deadline exists for.
    Hang,
    /// Write half the result line, flush, and abort the process — a
    /// crash mid-write, leaving a torn protocol line on the pipe.
    MidLineKill,
    /// Write the line in two flushed halves with a pause between — a
    /// torn-but-complete write the coordinator must reassemble.
    TornWrite,
    /// Emit garbage (chatter, a sentinel-lookalike, or raw non-UTF-8
    /// bytes) before the real line.
    GarbageLine,
    /// Drip the line a few bytes at a time with flushes and sleeps — a
    /// worker on a congested or throttled transport.
    SlowDrip,
    /// Exit cleanly without answering — the coordinator sees EOF where
    /// a result was due.
    EarlyEof,
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WireFault::None => "none",
            WireFault::Hang => "hang",
            WireFault::MidLineKill => "mid-line-kill",
            WireFault::TornWrite => "torn-write",
            WireFault::GarbageLine => "garbage-line",
            WireFault::SlowDrip => "slow-drip",
            WireFault::EarlyEof => "early-eof",
        };
        f.write_str(name)
    }
}

/// A seeded plan mapping protocol moments to injected faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Campaign seed; combined with the item name per delivery.
    pub seed: u64,
    /// How long a [`WireFault::Hang`] sleeps (default 600 s — far past
    /// any test deadline, so a hang is never "accidentally survived").
    pub hang: Duration,
    /// Delay injected before the READY handshake line (default zero).
    pub handshake_delay: Duration,
}

impl FaultPlan {
    /// A plan with the default hang duration and no handshake delay.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            hang: Duration::from_millis(600_000),
            handshake_delay: Duration::ZERO,
        }
    }

    /// Builds the plan from the environment: `None` unless
    /// `FABRIC_CHAOS_SEED` is set to a number. `FABRIC_CHAOS_HANG_MS`
    /// and `FABRIC_CHAOS_HANDSHAKE_MS` tune the two durations.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let seed: u64 = std::env::var("FABRIC_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())?;
        let mut plan = FaultPlan::new(seed);
        if let Some(ms) = std::env::var("FABRIC_CHAOS_HANG_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
        {
            plan.hang = Duration::from_millis(ms);
        }
        if let Some(ms) = std::env::var("FABRIC_CHAOS_HANDSHAKE_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
        {
            plan.handshake_delay = Duration::from_millis(ms);
        }
        Some(plan)
    }

    /// The fault this plan injects when delivering `item`'s result.
    /// Deterministic in `(seed, item)` — respawned workers redraw the
    /// same fault. Weights: 28% clean, 12% hang, 12% mid-line kill,
    /// 12% torn write, 14% garbage, 14% slow drip, 8% early EOF.
    #[must_use]
    pub fn fault_for(&self, item: &str) -> WireFault {
        let mut state = self.seed ^ fnv1a(item.as_bytes());
        match xrand::splitmix64(&mut state) % 100 {
            0..=27 => WireFault::None,
            28..=39 => WireFault::Hang,
            40..=51 => WireFault::MidLineKill,
            52..=63 => WireFault::TornWrite,
            64..=77 => WireFault::GarbageLine,
            78..=91 => WireFault::SlowDrip,
            _ => WireFault::EarlyEof,
        }
    }

    /// Sleeps the configured handshake delay (used by the worker loop
    /// right before it writes READY, to exercise the handshake
    /// deadline).
    pub fn stall_handshake(&self) {
        if !self.handshake_delay.is_zero() {
            std::thread::sleep(self.handshake_delay);
        }
    }

    /// Delivers `line` (newline appended) to `out` under the fault drawn
    /// for `item`. [`WireFault::MidLineKill`] aborts and
    /// [`WireFault::EarlyEof`] exits — they do not return.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error (the worker loop treats it
    /// as "coordinator gone" and exits cleanly).
    pub fn deliver(&self, out: &mut dyn Write, line: &str, item: &str) -> std::io::Result<()> {
        let fault = self.fault_for(item);
        eprintln!("[chaos] {fault} for '{item}'");
        match fault {
            WireFault::None => {
                writeln!(out, "{line}")?;
                out.flush()
            }
            WireFault::Hang => {
                std::thread::sleep(self.hang);
                writeln!(out, "{line}")?;
                out.flush()
            }
            WireFault::MidLineKill => {
                let half = line.len() / 2;
                // Write on the byte level: the split point may not be a
                // char boundary, and a real crash doesn't care.
                out.write_all(&line.as_bytes()[..half])?;
                out.flush()?;
                std::process::abort();
            }
            WireFault::TornWrite => {
                let half = line.len() / 2;
                out.write_all(&line.as_bytes()[..half])?;
                out.flush()?;
                std::thread::sleep(Duration::from_millis(10));
                out.write_all(&line.as_bytes()[half..])?;
                out.write_all(b"\n")?;
                out.flush()
            }
            WireFault::GarbageLine => {
                let mut state = self.seed ^ fnv1a(item.as_bytes()) ^ 0x9e37;
                match xrand::splitmix64(&mut state) % 3 {
                    0 => writeln!(out, "stray diagnostic chatter from the harness")?,
                    // A sentinel-lookalike that parses as no checkpoint
                    // line — the coordinator must reject it, not panic.
                    1 => writeln!(out, "RUNNER-WORKER RESULT {{\"torn\":")?,
                    _ => {
                        out.write_all(&[0xff, 0xfe, 0x80, 0x00, 0xc3, 0x28])?;
                        out.write_all(b"\n")?;
                    }
                }
                out.flush()?;
                writeln!(out, "{line}")?;
                out.flush()
            }
            WireFault::SlowDrip => {
                let bytes = line.as_bytes();
                for chunk in bytes.chunks(5) {
                    out.write_all(chunk)?;
                    out.flush()?;
                    std::thread::sleep(Duration::from_millis(1));
                }
                out.write_all(b"\n")?;
                out.flush()
            }
            WireFault::EarlyEof => {
                out.flush()?;
                std::process::exit(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_selection_is_deterministic_and_covers_every_variant() {
        let plan = FaultPlan::new(11);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..200 {
            let item = format!("case-{i:03}");
            let a = plan.fault_for(&item);
            assert_eq!(a, plan.fault_for(&item), "same (seed, item) must redraw identically");
            seen.insert(a.to_string());
        }
        assert_eq!(
            seen.len(),
            7,
            "200 items must draw every fault variant, got {seen:?}"
        );
        // A different seed reshuffles (the campaign relies on seeds
        // exploring different fault assignments).
        let other = FaultPlan::new(12);
        assert!(
            (0..200).any(|i| {
                let item = format!("case-{i:03}");
                plan.fault_for(&item) != other.fault_for(&item)
            }),
            "seeds 11 and 12 assign identical faults everywhere"
        );
    }

    #[test]
    fn deliver_survivable_faults_end_with_the_real_line_on_the_wire() {
        // Every fault that returns (doesn't abort/exit) must leave the
        // full protocol line, newline-terminated, at the end of the
        // stream — that's what makes byte identity under chaos possible.
        let plan = FaultPlan {
            seed: 3,
            hang: Duration::from_millis(1), // keep the test fast
            handshake_delay: Duration::ZERO,
        };
        let line = "RUNNER-WORKER RESULT {\"item\":\"x\",\"ok\":true,\"rows\":[[\"x\",\"1\"]]}";
        for i in 0..400 {
            let item = format!("probe-{i}");
            let fault = plan.fault_for(&item);
            if matches!(fault, WireFault::MidLineKill | WireFault::EarlyEof) {
                continue; // process-terminating: covered by the campaign
            }
            let mut sink: Vec<u8> = Vec::new();
            plan.deliver(&mut sink, line, &item).unwrap();
            let text = String::from_utf8_lossy(&sink);
            let last = text
                .lines()
                .last()
                .unwrap_or_default();
            assert_eq!(last, line, "fault {fault} corrupted the final line");
            assert!(sink.ends_with(b"\n"), "fault {fault} dropped the newline");
        }
    }

    #[test]
    fn env_gating_requires_a_numeric_seed() {
        // from_env reads the live environment; this test only asserts
        // the inactive default in the test harness (no FABRIC_CHAOS_SEED
        // set) so unit tests never race an env mutation.
        if std::env::var_os("FABRIC_CHAOS_SEED").is_none() {
            assert!(FaultPlan::from_env().is_none());
        }
    }

    #[test]
    fn verify_gate_seed_keeps_the_campaign_fast_enough() {
        // The verify.sh chaos gate runs table1's nine benchmarks under
        // FABRIC_CHAOS_SEED=5 with a 5 s item deadline. Pin the fault mix
        // for that seed: at most 2 of the 9 items may hang (each hang
        // costs one deadline), so the gate stays well under a minute.
        let plan = FaultPlan::new(5);
        let names = [
            "bbara", "bbsse", "cse", "dk14", "keyb", "planet", "s1", "sand", "styr",
        ];
        let hangs = names
            .iter()
            .filter(|n| plan.fault_for(n) == WireFault::Hang)
            .count();
        assert!(hangs <= 2, "seed 5 hangs {hangs} of 9 benchmarks; pick another gate seed");
    }
}
