//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` prints one table or figure of
//! *"Saving Power by Mapping Finite-State Machines into Embedded Memory
//! Blocks in FPGAs"* (Tiwari & Tomko, DATE 2004); this library holds the
//! common plumbing: running the four implementation flows over the nine-
//! benchmark suite and formatting aligned text tables.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod corpus;
pub mod fabric;
pub mod runner;
pub mod timing;

use emb_fsm::flow::{FlowConfig, FlowError, FlowReport, Stimulus};
use emb_fsm::map::EmbOptions;
use fsm_model::benchmarks::{paper_suite, PAPER_BENCHMARKS};
use fsm_model::stg::Stg;
use logic_synth::synth::SynthOptions;

/// The flow configuration every experiment uses unless it sweeps a knob.
///
/// The timing-driven placement knobs are resolved from the environment
/// **here** — never inside the placer itself, so the values are part of
/// the [`emb_fsm::cache`] placement keys and a knob change can never
/// resurrect a stale cached placement:
///
/// * `PLACE_TIMING_WEIGHT` — criticality-cost weight in `[0, 1]`
///   (0 = pure wirelength, default 0.5);
/// * `PLACE_CRIT_EXP` — VPR-style criticality exponent (default 8);
/// * `PLACE_RETIME_INTERVAL` — full re-times are forced every N-th
///   refresh to bound incremental drift (default 8).
///
/// The mapping backend is resolved here for the same reason:
///
/// * `MAP_BACKEND` — `direct` (default), `overlay`, or `auto` (overlay
///   with direct fallback past the capacity ladder). Unknown values are
///   ignored and the default kept.
#[must_use]
pub fn paper_config() -> FlowConfig {
    let mut cfg = FlowConfig {
        cycles: 2000,
        verify_cycles: 400,
        ..FlowConfig::default()
    };
    if let Some(w) = env_f64("PLACE_TIMING_WEIGHT") {
        cfg.place.timing_weight = w;
    }
    if let Some(e) = env_f64("PLACE_CRIT_EXP") {
        cfg.place.crit_exp = e;
    }
    if let Ok(s) = std::env::var("PLACE_RETIME_INTERVAL") {
        if let Ok(n) = s.trim().parse::<u32>() {
            cfg.place.retime_interval = n;
        }
    }
    if let Some(b) = std::env::var("MAP_BACKEND")
        .ok()
        .and_then(|s| emb_fsm::MapBackend::parse(s.trim()))
    {
        cfg.backend = b;
    }
    cfg
}

/// A finite `f64` environment knob, `None` when unset or unparsable.
fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|v| v.is_finite())
}

/// The nine paper benchmarks, in table row order.
#[must_use]
pub fn suite() -> Vec<Stg> {
    paper_suite()
}

/// Benchmark names in row order.
#[must_use]
pub fn suite_names() -> Vec<&'static str> {
    PAPER_BENCHMARKS.iter().map(|s| s.name).collect()
}

/// FF and EMB reports for one benchmark under the given stimulus.
///
/// # Panics
///
/// Panics with a diagnostic if a flow fails. Prefer [`try_compare`] from
/// runner-driven experiments — it surfaces the typed [`FlowError`] so the
/// runner can retry or emit a placeholder instead of dying.
#[must_use]
pub fn compare(stg: &Stg, stimulus: &Stimulus, cfg: &FlowConfig) -> (FlowReport, FlowReport) {
    try_compare(stg, stimulus, cfg).unwrap_or_else(|e| panic!("{}: flow failed: {e}", stg.name()))
}

/// FF and EMB reports for one benchmark, propagating flow failures.
///
/// # Errors
///
/// Returns the first stage failure of either flow, tagged with benchmark
/// and stage context.
pub fn try_compare(
    stg: &Stg,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<(FlowReport, FlowReport), FlowError> {
    let ff = emb_fsm::flow::ff_flow(stg, SynthOptions::default(), stimulus, cfg)?;
    let emb = emb_fsm::flow::emb_flow(stg, &EmbOptions::default(), stimulus, cfg)?;
    Ok((ff, emb))
}

/// A minimal fixed-width text-table writer.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a milliwatt value like the paper's tables.
#[must_use]
pub fn mw(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Percentage saving of `new` relative to `base`.
#[must_use]
pub fn saving(base: f64, new: f64) -> f64 {
    100.0 * (base - new) / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn suite_is_the_paper_suite() {
        assert_eq!(suite().len(), 9);
        assert_eq!(suite_names()[0], "prep4");
    }

    #[test]
    fn saving_math() {
        assert!((saving(100.0, 74.0) - 26.0).abs() < 1e-9);
    }
}
