//! Resilient, optionally parallel experiment runner.
//!
//! The table/sweep/ablation binaries used to run every benchmark inline:
//! one panic or flow failure blanked the whole table, and a killed run
//! lost all completed work. This module gives them:
//!
//! - **per-item panic isolation** — each work item runs under
//!   `catch_unwind` at the bin boundary (library code stays panic-free by
//!   construction; this is the last-resort fence),
//! - **bounded retry with deterministic reseeding** — a failing item is
//!   retried up to [`RunnerOptions::max_attempts`] times, each attempt
//!   passing its attempt index to the closure so it can derive a fresh
//!   seed deterministically (attempt 0 is always the canonical seed, so
//!   an uninterrupted run's output never depends on the retry machinery),
//! - **JSONL checkpointing** — every finished item is appended to
//!   `results/checkpoint_<label>.jsonl` and fsync'd, so a kill cannot
//!   lose buffered completed items; a killed run resumes from the
//!   checkpoint and re-emits the recorded rows byte-identically, and the
//!   file is removed once all items complete,
//! - **partial-result emission** — an item that fails every attempt
//!   yields a placeholder row instead of aborting the table,
//! - **work-stealing parallelism** — pending items are claimed from a
//!   shared atomic cursor by [`RunnerOptions::threads`] scoped worker
//!   threads (default: the `RUNNER_THREADS` environment variable, else
//!   the machine's available parallelism). Results are reassembled in
//!   input order and checkpoint appends are serialized through a mutex,
//!   so the emitted rows are identical whatever the thread count.
//!   `RUNNER_THREADS=1` takes the exact sequential path (items computed
//!   and checkpointed strictly in input order).
//!
//! The checkpoint line format is a flat JSON object per line:
//!
//! ```json
//! {"item":"keyb","ok":true,"rows":[["keyb","1.23","4.56"]]}
//! {"item":"bbara","ok":false,"error":"place [pack]: ...","attempts":3}
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Configuration for one resilient run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Checkpoint label (becomes `checkpoint_<label>.jsonl`).
    pub label: String,
    /// Attempts per item before emitting a placeholder (≥ 1).
    pub max_attempts: u32,
    /// Directory the checkpoint lives in.
    pub checkpoint_dir: PathBuf,
    /// Worker-thread count. `None` defers to the `RUNNER_THREADS`
    /// environment variable, falling back to the machine's available
    /// parallelism; `Some(1)` (or `RUNNER_THREADS=1`) forces the exact
    /// sequential path.
    pub threads: Option<usize>,
}

impl RunnerOptions {
    /// Options for the named experiment, checkpointing under the
    /// workspace `results/` directory.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        RunnerOptions {
            label: label.into(),
            max_attempts: 3,
            checkpoint_dir: workspace_results_dir(),
            threads: None,
        }
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.checkpoint_dir
            .join(format!("checkpoint_{}.jsonl", self.label))
    }

    /// The worker count this run will use: the explicit option, else the
    /// `RUNNER_THREADS` environment variable, else available parallelism
    /// (always ≥ 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        let n = self.threads.or_else(|| {
            std::env::var("RUNNER_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        });
        n.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1)
    }
}

/// How one item ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemOutcome {
    /// The item produced its rows (possibly after retries).
    Ok(Vec<Vec<String>>),
    /// Every attempt failed; `error` is the last failure.
    Failed {
        /// Display of the last error (or panic payload).
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// The aggregate result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// All rows in item order; failed items contribute one placeholder
    /// row (`[item, "FAILED: <error>", "", ...]` padded to the requested
    /// column count).
    pub rows: Vec<Vec<String>>,
    /// `(item, error)` for items that failed every attempt.
    pub failures: Vec<(String, String)>,
    /// Items restored from the checkpoint instead of recomputed.
    pub resumed: usize,
}

/// Runs `f` over `items` with isolation, retry, checkpointing, and
/// (when more than one worker is configured) work-stealing parallelism.
///
/// `f` is called as `f(item, attempt)` with `attempt` starting at 0; use
/// it to derive a retry seed (`cfg.seed + attempt`) so reruns are
/// deterministic. `placeholder_cols` is the table width used for failure
/// placeholder rows.
///
/// Whatever the worker count, the returned rows (and therefore every
/// table built from them) are assembled in input order, so a parallel
/// run's output is identical to a sequential run's. The checkpoint file
/// may record items in completion order under parallelism; resume keys
/// items by name, so a resumed run still re-emits rows byte-identically.
///
/// # Panics
///
/// Panics only if the checkpoint directory cannot be created or written —
/// an experiment that cannot record its progress is a failed experiment.
pub fn run<F>(opts: &RunnerOptions, items: &[String], placeholder_cols: usize, f: F) -> RunOutcome
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String> + Sync,
{
    let started = Instant::now();
    let path = opts.checkpoint_path();
    let mut done: HashMap<String, ItemOutcome> = load_checkpoint(&path);
    if !done.is_empty() {
        eprintln!(
            "[runner] resuming {} finished item(s) from {}",
            done.len(),
            path.display()
        );
    }
    let resumed = done.len();

    // Work list: items the checkpoint does not already cover. Duplicated
    // item names each get their own computation slot in the sequential
    // path; under parallelism a duplicate is computed once per pending
    // occurrence too (the pending list is positional).
    let pending: Vec<(usize, &String)> = items
        .iter()
        .enumerate()
        .filter(|(_, item)| !done.contains_key(*item))
        .collect();
    let threads = opts.effective_threads().min(pending.len().max(1));

    let mut computed: Vec<Option<ItemOutcome>> = (0..items.len()).map(|_| None).collect();
    if threads <= 1 {
        // Exact sequential path: compute and checkpoint strictly in input
        // order (byte-identical checkpoints to the historical runner).
        for &(idx, item) in &pending {
            let o = run_one(item, opts.max_attempts, &f);
            append_checkpoint(&path, item, &o);
            computed[idx] = Some(o);
        }
    } else {
        // Work stealing: workers claim the next pending index from a
        // shared cursor; checkpoint appends are serialized by a mutex so
        // rows never interleave mid-line.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ItemOutcome>>> =
            (0..pending.len()).map(|_| Mutex::new(None)).collect();
        let checkpoint_lock = Mutex::new(());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, item)) = pending.get(k) else {
                        break;
                    };
                    let o = run_one(item, opts.max_attempts, &f);
                    {
                        let _guard = lock_unpoisoned(&checkpoint_lock);
                        append_checkpoint(&path, item, &o);
                    }
                    *lock_unpoisoned(&slots[k]) = Some(o);
                });
            }
        });
        for (&(idx, _), slot) in pending.iter().zip(slots) {
            computed[idx] = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    // Reassemble in input order, preferring checkpointed outcomes.
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let outcome = match done.remove(item) {
            Some(o) => o,
            None => match computed[idx].take() {
                Some(o) => o,
                // A duplicate item name resolved from the checkpoint on
                // its first occurrence; recompute is unreachable in
                // practice (paper bins use unique items) but a duplicate
                // after resume lands here — rerun it inline.
                None => run_one(item, opts.max_attempts, &f),
            },
        };
        match outcome {
            ItemOutcome::Ok(item_rows) => rows.extend(item_rows),
            ItemOutcome::Failed { error, attempts } => {
                eprintln!("[runner] {item}: FAILED after {attempts} attempt(s): {error}");
                let mut row = vec![item.clone(), format!("FAILED: {error}")];
                row.resize(placeholder_cols.max(2), String::new());
                rows.push(row);
                failures.push((item.clone(), error));
            }
        }
    }
    // All items accounted for: the checkpoint has served its purpose.
    let _ = std::fs::remove_file(&path);
    eprintln!(
        "[runner] {}: {} item(s) ({} resumed) on {} thread(s) in {:.2?}",
        opts.label,
        items.len(),
        resumed,
        threads,
        started.elapsed()
    );
    RunOutcome {
        rows,
        failures,
        resumed,
    }
}

/// Locks a mutex, tolerating poisoning: a poisoned runner mutex only
/// means another worker panicked past its `catch_unwind` fence, and the
/// protected state (an appended line / a result slot) is always valid.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One item: bounded attempts, panics fenced at this boundary only.
fn run_one<F>(item: &str, max_attempts: u32, f: &F) -> ItemOutcome
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String>,
{
    let mut last_error = String::new();
    for attempt in 0..max_attempts.max(1) {
        if attempt > 0 {
            eprintln!("[runner] {item}: retry {attempt} (reseeded)");
        }
        match catch_unwind(AssertUnwindSafe(|| f(item, attempt))) {
            Ok(Ok(rows)) => return ItemOutcome::Ok(rows),
            Ok(Err(e)) => last_error = e,
            Err(payload) => last_error = format!("panic: {}", panic_message(&*payload)),
        }
    }
    ItemOutcome::Failed {
        error: last_error,
        attempts: max_attempts.max(1),
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The workspace `results/` directory (two levels above this manifest).
fn workspace_results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .join("results")
}

// --- checkpoint I/O ---------------------------------------------------

/// Loads finished items from a checkpoint, tolerating missing files and
/// skipping unparseable lines (those items are simply recomputed).
fn load_checkpoint(path: &Path) -> HashMap<String, ItemOutcome> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    let mut done = HashMap::new();
    for line in text.lines() {
        if let Some((item, outcome)) = parse_checkpoint_line(line) {
            done.insert(item, outcome);
        }
    }
    done
}

/// Appends one finished item to the checkpoint (created on first use).
///
/// The row is flushed **and fsync'd** before this returns: a `kill -9`
/// right after an item completes can no longer lose it to OS buffering —
/// the resume contract is "every item whose append returned is on disk".
fn append_checkpoint(path: &Path, item: &str, outcome: &ItemOutcome) {
    let line = checkpoint_line(item, outcome);
    let write = || -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(file, "{line}")?;
        file.flush()?;
        file.sync_data()
    };
    if let Err(e) = write() {
        panic!("cannot record checkpoint {}: {e}", path.display());
    }
}

/// Renders one checkpoint line.
fn checkpoint_line(item: &str, outcome: &ItemOutcome) -> String {
    match outcome {
        ItemOutcome::Ok(rows) => {
            let rows_json: Vec<String> = rows
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            format!(
                "{{\"item\":{},\"ok\":true,\"rows\":[{}]}}",
                json_string(item),
                rows_json.join(",")
            )
        }
        ItemOutcome::Failed { error, attempts } => format!(
            "{{\"item\":{},\"ok\":false,\"error\":{},\"attempts\":{attempts}}}",
            json_string(item),
            json_string(error)
        ),
    }
}

/// JSON string literal with the escapes our cell contents can need.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one checkpoint line; `None` on any malformation.
fn parse_checkpoint_line(line: &str) -> Option<(String, ItemOutcome)> {
    let mut p = JsonCursor::new(line);
    p.expect('{')?;
    let mut item = None;
    let mut ok = None;
    let mut rows = None;
    let mut error = None;
    let mut attempts = 0u32;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "item" => item = Some(p.string()?),
            "ok" => ok = Some(p.boolean()?),
            "rows" => rows = Some(p.string_matrix()?),
            "error" => error = Some(p.string()?),
            "attempts" => attempts = p.number()?,
            _ => return None,
        }
        match p.next_non_ws()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    let item = item?;
    match ok? {
        true => Some((item, ItemOutcome::Ok(rows?))),
        false => Some((
            item,
            ItemOutcome::Failed {
                error: error?,
                attempts,
            },
        )),
    }
}

/// A minimal cursor over the JSON subset the checkpoint uses.
struct JsonCursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> Self {
        JsonCursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t')) {
            self.chars.next();
        }
    }

    fn next_non_ws(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.next()
    }

    fn expect(&mut self, want: char) -> Option<()> {
        (self.next_non_ws()? == want).then_some(())
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = (0..4).filter_map(|_| self.chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn boolean(&mut self) -> Option<bool> {
        self.skip_ws();
        let mut word = String::new();
        while let Some(&c) = self.chars.peek() {
            if !c.is_ascii_alphabetic() {
                break;
            }
            word.push(c);
            self.chars.next();
        }
        match word.as_str() {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<u32> {
        self.skip_ws();
        let mut digits = String::new();
        while let Some(&c) = self.chars.peek() {
            if !c.is_ascii_digit() {
                break;
            }
            digits.push(c);
            self.chars.next();
        }
        digits.parse().ok()
    }

    /// Parses `[["a","b"],["c"]]`.
    fn string_matrix(&mut self) -> Option<Vec<Vec<String>>> {
        self.expect('[')?;
        let mut rows = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.chars.next();
            return Some(rows);
        }
        loop {
            self.expect('[')?;
            let mut row = Vec::new();
            self.skip_ws();
            if self.chars.peek() == Some(&']') {
                self.chars.next();
            } else {
                loop {
                    row.push(self.string()?);
                    match self.next_non_ws()? {
                        ',' => continue,
                        ']' => break,
                        _ => return None,
                    }
                }
            }
            rows.push(row);
            match self.next_non_ws()? {
                ',' => continue,
                ']' => return Some(rows),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_opts(label: &str) -> RunnerOptions {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("test_runner_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunnerOptions {
            label: label.to_string(),
            max_attempts: 3,
            checkpoint_dir: dir,
            threads: Some(1),
        }
    }

    #[test]
    fn checkpoint_line_roundtrips() {
        let outcome = ItemOutcome::Ok(vec![
            vec!["keyb".to_string(), "1.23\" \\ \n".to_string()],
            vec![],
        ]);
        let line = checkpoint_line("key\"b", &outcome);
        let (item, parsed) = parse_checkpoint_line(&line).unwrap();
        assert_eq!(item, "key\"b");
        assert_eq!(parsed, outcome);
        let fail = ItemOutcome::Failed {
            error: "boom: {x}".to_string(),
            attempts: 3,
        };
        let line = checkpoint_line("b", &fail);
        let (item, parsed) = parse_checkpoint_line(&line).unwrap();
        assert_eq!(item, "b");
        assert_eq!(parsed, fail);
        assert!(parse_checkpoint_line("{garbage").is_none());
        assert!(parse_checkpoint_line("").is_none());
    }

    #[test]
    fn isolates_panics_and_emits_placeholder() {
        let opts = temp_opts("panics");
        let items = vec![
            "good".to_string(),
            "bad".to_string(),
            "also-good".to_string(),
        ];
        let out = run(&opts, &items, 3, |item, _| {
            if item == "bad" {
                panic!("injected panic for {item}");
            }
            Ok(vec![vec![
                item.to_string(),
                "1".to_string(),
                "2".to_string(),
            ]])
        });
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0][0], "good");
        assert!(out.rows[1][1].contains("FAILED: panic: injected panic"));
        assert_eq!(out.rows[2][0], "also-good");
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].0, "bad");
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn retry_reseeds_then_succeeds() {
        let opts = temp_opts("retry");
        let items = vec!["flaky".to_string()];
        let calls = AtomicUsize::new(0);
        let out = run(&opts, &items, 2, |item, attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            if attempt < 2 {
                Err(format!("{item} failed attempt {attempt}"))
            } else {
                Ok(vec![vec![item.to_string(), format!("seed+{attempt}")]])
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(
            out.rows,
            vec![vec!["flaky".to_string(), "seed+2".to_string()]]
        );
        assert!(out.failures.is_empty());
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn killed_run_resumes_from_checkpoint_byte_identically() {
        let opts = temp_opts("resume");
        let items: Vec<String> = ["a", "b", "c"].iter().map(ToString::to_string).collect();
        let work = |item: &str, _attempt: u32| -> Result<Vec<Vec<String>>, String> {
            Ok(vec![
                vec![item.to_string(), format!("{item}-row1")],
                vec![item.to_string(), format!("{item}-row2")],
            ])
        };
        // Uninterrupted reference run.
        let reference = run(&opts, &items, 2, work);

        // Simulate a run killed after two items: re-create their
        // checkpoint lines, then rerun. The closure must not be invoked
        // for the checkpointed items.
        for item in &items[..2] {
            let rows = work(item, 0).unwrap();
            append_checkpoint(&opts.checkpoint_path(), item, &ItemOutcome::Ok(rows));
        }
        let recomputed = AtomicUsize::new(0);
        let resumed = run(&opts, &items, 2, |item, attempt| {
            recomputed.fetch_add(1, Ordering::SeqCst);
            assert_eq!(item, "c", "checkpointed items must not rerun");
            work(item, attempt)
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
        assert_eq!(resumed.resumed, 2);
        assert_eq!(
            resumed.rows, reference.rows,
            "resume must be byte-identical"
        );
        // The checkpoint is cleaned up after a complete run.
        assert!(!opts.checkpoint_path().exists());
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }
}
