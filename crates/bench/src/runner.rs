//! Resilient, optionally parallel experiment runner.
//!
//! The table/sweep/ablation binaries used to run every benchmark inline:
//! one panic or flow failure blanked the whole table, and a killed run
//! lost all completed work. This module gives them:
//!
//! - **per-item panic isolation** — each work item runs under
//!   `catch_unwind` at the bin boundary (library code stays panic-free by
//!   construction; this is the last-resort fence),
//! - **bounded retry with deterministic reseeding** — a failing item is
//!   retried up to [`RunnerOptions::max_attempts`] times, each attempt
//!   passing its attempt index to the closure so it can derive a fresh
//!   seed deterministically (attempt 0 is always the canonical seed, so
//!   an uninterrupted run's output never depends on the retry machinery),
//! - **JSONL checkpointing** — every finished item is appended to
//!   `results/checkpoint_<label>.jsonl` and fsync'd, so a kill cannot
//!   lose buffered completed items; a killed run resumes from the
//!   checkpoint and re-emits the recorded rows byte-identically, and the
//!   file is removed once all items complete,
//! - **partial-result emission** — an item that fails every attempt
//!   yields a placeholder row instead of aborting the table,
//! - **work-stealing parallelism** — pending items are claimed from a
//!   shared atomic cursor by [`RunnerOptions::threads`] scoped worker
//!   threads (default: the `RUNNER_THREADS` environment variable, else
//!   the machine's available parallelism). Results are reassembled in
//!   input order and checkpoint appends are serialized through a mutex,
//!   so the emitted rows are identical whatever the thread count.
//!   `RUNNER_THREADS=1` takes the exact sequential path (items computed
//!   and checkpointed strictly in input order).
//! - **process-backend isolation** — under [`Backend::Process`]
//!   (`RUNNER_BACKEND=process`) items are farmed to spawned `--worker`
//!   re-invocations of the same harness binary over a stdin/stdout
//!   protocol (see [`crate::fabric`]): a `kill -9` of a worker loses only
//!   its in-flight item (the coordinator respawns a worker and resubmits),
//!   all workers share the on-disk flow-artifact cache, and the emitted
//!   rows and checkpoint lines are identical to the other backends. The
//!   coordinator supervises its workers under per-item deadlines
//!   (`RUNNER_ITEM_TIMEOUT_MS`): a hung worker is killed and respawned
//!   with exponential backoff, a slot that strikes `RUNNER_MAX_STRIKES`
//!   times in a row is quarantined (inline fallback), and every
//!   intervention is recorded as a typed event in [`RunOutcome::health`].
//!
//! The checkpoint line format is a flat JSON object per line:
//!
//! ```json
//! {"item":"keyb","ok":true,"rows":[["keyb","1.23","4.56"]]}
//! {"item":"bbara","ok":false,"error":"place [pack]: ...","attempts":3}
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How [`run`] executes its pending items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Strictly in input order on the calling thread (the exact
    /// historical path: items computed and checkpointed in order).
    Sequential,
    /// Work-stealing scoped threads inside this process.
    Threads,
    /// Work-stealing worker *processes* — `--worker` re-invocations of
    /// the current binary coordinated over pipes. Crash isolation goes
    /// beyond `catch_unwind`: an abort/OOM-kill/`kill -9` in one item
    /// costs one worker process, not the run.
    Process,
}

/// Configuration for one resilient run.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Checkpoint label (becomes `checkpoint_<label>.jsonl`).
    pub label: String,
    /// Attempts per item before emitting a placeholder (≥ 1).
    pub max_attempts: u32,
    /// Directory the checkpoint lives in.
    pub checkpoint_dir: PathBuf,
    /// Worker-thread count. `None` defers to the `RUNNER_THREADS`
    /// environment variable, falling back to the machine's available
    /// parallelism; `Some(1)` (or `RUNNER_THREADS=1`) forces the exact
    /// sequential path.
    pub threads: Option<usize>,
    /// Execution backend. `None` defers to the `RUNNER_BACKEND`
    /// environment variable (`sequential` / `threads` / `process`),
    /// defaulting to [`Backend::Threads`].
    pub backend: Option<Backend>,
    /// Whether checkpointed `ok:false` entries survive a resume as
    /// placeholder rows instead of being re-attempted. `None` defers to
    /// the `RUNNER_KEEP_FAILED` environment variable (default: rerun
    /// failures — a recorded failure may have been transient, e.g. a
    /// budget-exhausted attempt right before a kill).
    pub keep_failed: Option<bool>,
}

impl RunnerOptions {
    /// Options for the named experiment, checkpointing under the
    /// workspace `results/` directory.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        RunnerOptions {
            label: label.into(),
            max_attempts: 3,
            checkpoint_dir: workspace_results_dir(),
            threads: None,
            backend: None,
            keep_failed: None,
        }
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.checkpoint_dir
            .join(format!("checkpoint_{}.jsonl", self.label))
    }

    /// The worker count this run will use: the explicit option, else the
    /// `RUNNER_THREADS` environment variable, else available parallelism
    /// (always ≥ 1).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        let n = self.threads.or_else(|| {
            std::env::var("RUNNER_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        });
        n.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .max(1)
    }

    /// The backend this run will use: the explicit option, else
    /// `RUNNER_BACKEND`, else [`Backend::Threads`]. Unknown values fall
    /// back to threads rather than failing an experiment over a typo.
    #[must_use]
    pub fn effective_backend(&self) -> Backend {
        if let Some(b) = self.backend {
            return b;
        }
        match std::env::var("RUNNER_BACKEND")
            .ok()
            .as_deref()
            .map(str::trim)
        {
            Some("sequential" | "serial") => Backend::Sequential,
            Some("process" | "processes") => Backend::Process,
            _ => Backend::Threads,
        }
    }

    /// Whether resume keeps checkpointed failures as placeholders (see
    /// [`RunnerOptions::keep_failed`]).
    #[must_use]
    pub fn effective_keep_failed(&self) -> bool {
        self.keep_failed.unwrap_or_else(|| {
            matches!(
                std::env::var("RUNNER_KEEP_FAILED").ok().as_deref(),
                Some("1" | "true" | "yes")
            )
        })
    }
}

/// How one item ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemOutcome {
    /// The item produced its rows (possibly after retries).
    Ok(Vec<Vec<String>>),
    /// Every attempt failed; `error` is the last failure.
    Failed {
        /// Display of the last error (or panic payload).
        error: String,
        /// Attempts consumed.
        attempts: u32,
    },
}

/// The aggregate result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// All rows in item order; failed items contribute one placeholder
    /// row (`[item, "FAILED: <error>", "", ...]` padded to the requested
    /// column count).
    pub rows: Vec<Vec<String>>,
    /// `(item, error)` for items that failed every attempt.
    pub failures: Vec<(String, String)>,
    /// Items restored from the checkpoint instead of recomputed.
    pub resumed: usize,
    /// Items (in input order) whose results are in `rows` but whose
    /// checkpoint append failed (full disk, read-only results dir). The
    /// resume contract — "every item whose append returned is on disk" —
    /// stays honest: these items returned *without* an on-disk record,
    /// so a killed-and-resumed run would recompute exactly them.
    pub unpersisted: Vec<String>,
    /// Supervision summary from the process backend: per-item deadline
    /// expiries, worker respawns, quarantined slots, and the full typed
    /// event stream. Always clean (`health.is_clean()`) under the
    /// sequential and thread backends.
    pub health: crate::fabric::FabricHealth,
}

/// Serialized checkpoint appends shared by every backend, degrading to
/// in-memory outcomes (with a one-line warning and a typed note) when
/// the checkpoint cannot be written: under the thread backend a panic
/// here would abort the whole scoped-thread run, and under a daemon it
/// would kill the service — an experiment that cannot record progress
/// is still a better experiment than no experiment.
pub(crate) struct CheckpointSink<'a> {
    path: &'a Path,
    lock: Mutex<()>,
    warned: AtomicBool,
    unpersisted: Mutex<Vec<String>>,
}

impl<'a> CheckpointSink<'a> {
    fn new(path: &'a Path) -> Self {
        CheckpointSink {
            path,
            lock: Mutex::new(()),
            warned: AtomicBool::new(false),
            unpersisted: Mutex::new(Vec::new()),
        }
    }

    /// Appends one finished item, serialized against other workers.
    pub(crate) fn append(&self, item: &str, outcome: &ItemOutcome) {
        let _guard = lock_unpoisoned(&self.lock);
        if let Err(e) = append_checkpoint(self.path, item, outcome) {
            if !self.warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "[runner] warning: cannot record checkpoint {}: {e} — completed items stay in memory only; a killed run would recompute them",
                    self.path.display()
                );
            }
            lock_unpoisoned(&self.unpersisted).push(item.to_string());
        }
    }

    fn into_unpersisted(self) -> Vec<String> {
        self.unpersisted
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Runs `f` over `items` with isolation, retry, checkpointing, and
/// (when more than one worker is configured) work-stealing parallelism.
///
/// `f` is called as `f(item, attempt)` with `attempt` starting at 0; use
/// it to derive a retry seed (`cfg.seed + attempt`) so reruns are
/// deterministic. `placeholder_cols` is the table width used for failure
/// placeholder rows.
///
/// Whatever the worker count, the returned rows (and therefore every
/// table built from them) are assembled in input order, so a parallel
/// run's output is identical to a sequential run's. The checkpoint file
/// may record items in completion order under parallelism; resume keys
/// items by name, so a resumed run still re-emits rows byte-identically.
///
/// When this process is itself a `--worker` re-invocation spawned by a
/// process-backend coordinator (see [`crate::fabric`]), this call never
/// returns for the coordinated label: it serves items from stdin and
/// exits at EOF. A `run` call for a *different* label inside the same
/// worker binary returns placeholder rows without computing or touching
/// that label's checkpoint, so control flow reaches the coordinated call.
pub fn run<F>(opts: &RunnerOptions, items: &[String], placeholder_cols: usize, f: F) -> RunOutcome
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String> + Sync,
{
    if let Some(worker_label) = crate::fabric::worker_invocation_label() {
        if worker_label == opts.label {
            crate::fabric::worker_loop(opts, &f);
        }
        return skipped_outcome(items, placeholder_cols);
    }

    let started = Instant::now();
    let path = opts.checkpoint_path();
    let mut done: HashMap<String, ItemOutcome> =
        load_checkpoint(&path, opts.effective_keep_failed());
    if !done.is_empty() {
        eprintln!(
            "[runner] resuming {} finished item(s) from {}",
            done.len(),
            path.display()
        );
    }
    let resumed = done.len();

    // Work list: items the checkpoint does not already cover. Duplicated
    // item names each get their own computation slot in the sequential
    // path; under parallelism a duplicate is computed once per pending
    // occurrence too (the pending list is positional).
    let pending: Vec<(usize, &String)> = items
        .iter()
        .enumerate()
        .filter(|(_, item)| !done.contains_key(*item))
        .collect();
    let backend = opts.effective_backend();
    let threads = match backend {
        Backend::Sequential => 1,
        Backend::Threads | Backend::Process => opts.effective_threads(),
    }
    .min(pending.len().max(1));

    let sink = CheckpointSink::new(&path);
    let events: Mutex<Vec<crate::fabric::FabricEvent>> = Mutex::new(Vec::new());
    let mut computed: Vec<Option<ItemOutcome>> = (0..items.len()).map(|_| None).collect();
    if backend == Backend::Process && !pending.is_empty() {
        // Process fabric: items farmed to spawned `--worker`
        // re-invocations of this binary under deadline supervision; the
        // coordinator owns the checkpoint, so its line set matches the
        // other backends. Even a single-slot run uses a worker process —
        // that keeps crash/hang isolation (and the supervision tests)
        // independent of the thread count.
        let outcomes =
            crate::fabric::run_pending_in_workers(opts, &sink, &pending, threads, &events, &f);
        for (&(idx, _), o) in pending.iter().zip(outcomes) {
            computed[idx] = o;
        }
    } else if threads <= 1 {
        // Exact sequential path: compute and checkpoint strictly in input
        // order (byte-identical checkpoints to the historical runner).
        for &(idx, item) in &pending {
            let o = run_one(item, opts.max_attempts, &f);
            sink.append(item, &o);
            computed[idx] = Some(o);
        }
    } else {
        // Work stealing: workers claim the next pending index from a
        // shared cursor; checkpoint appends are serialized by a mutex so
        // rows never interleave mid-line.
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ItemOutcome>>> =
            (0..pending.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&(_, item)) = pending.get(k) else {
                        break;
                    };
                    let o = run_one(item, opts.max_attempts, &f);
                    sink.append(item, &o);
                    *lock_unpoisoned(&slots[k]) = Some(o);
                });
            }
        });
        for (&(idx, _), slot) in pending.iter().zip(slots) {
            computed[idx] = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    let unpersisted_set = sink.into_unpersisted();
    let health = crate::fabric::FabricHealth::from_events(
        events
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    if !health.is_clean() {
        eprintln!(
            "[runner] {}: fabric health: {} timeout(s), {} respawn(s), {} quarantine(s)",
            opts.label, health.timeouts, health.respawns, health.quarantined
        );
    }

    // Reassemble in input order, preferring checkpointed outcomes.
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let outcome = match done.remove(item) {
            Some(o) => o,
            None => match computed[idx].take() {
                Some(o) => o,
                // A duplicate item name resolved from the checkpoint on
                // its first occurrence; recompute is unreachable in
                // practice (paper bins use unique items) but a duplicate
                // after resume lands here — rerun it inline.
                None => run_one(item, opts.max_attempts, &f),
            },
        };
        match outcome {
            ItemOutcome::Ok(item_rows) => rows.extend(item_rows),
            ItemOutcome::Failed { error, attempts } => {
                eprintln!("[runner] {item}: FAILED after {attempts} attempt(s): {error}");
                let mut row = vec![item.clone(), format!("FAILED: {error}")];
                row.resize(placeholder_cols.max(2), String::new());
                rows.push(row);
                failures.push((item.clone(), error));
            }
        }
    }
    // Report unpersisted items in input order (appends complete in
    // arbitrary order under parallelism).
    let unpersisted: Vec<String> = items
        .iter()
        .filter(|i| unpersisted_set.contains(i))
        .cloned()
        .collect();
    // All items accounted for: the checkpoint has served its purpose —
    // unless some items never made it to disk, in which case deleting it
    // is the right call anyway (every line it holds was re-emitted).
    let _ = std::fs::remove_file(&path);
    eprintln!(
        "[runner] {}: {} item(s) ({} resumed) on {} {} in {:.2?}",
        opts.label,
        items.len(),
        resumed,
        threads,
        match backend {
            Backend::Process => "worker process(es)",
            Backend::Sequential | Backend::Threads => "thread(s)",
        },
        started.elapsed()
    );
    RunOutcome {
        rows,
        failures,
        resumed,
        unpersisted,
        health,
    }
}

/// The outcome a worker process returns for a `run` call whose label is
/// not the one it was spawned to serve: placeholder rows, no
/// computation, no checkpoint traffic (touching another label's
/// checkpoint from a worker would corrupt that run's resume state).
fn skipped_outcome(items: &[String], placeholder_cols: usize) -> RunOutcome {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for item in items {
        let mut row = vec![item.clone(), "SKIPPED: worker mode".to_string()];
        row.resize(placeholder_cols.max(2), String::new());
        rows.push(row);
        failures.push((item.clone(), "skipped in worker mode".to_string()));
    }
    RunOutcome {
        rows,
        failures,
        resumed: 0,
        unpersisted: Vec::new(),
        health: crate::fabric::FabricHealth::default(),
    }
}

/// Locks a mutex, tolerating poisoning: a poisoned runner mutex only
/// means another worker panicked past its `catch_unwind` fence, and the
/// protected state (an appended line / a result slot) is always valid.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One item: bounded attempts, panics fenced at this boundary only.
pub(crate) fn run_one<F>(item: &str, max_attempts: u32, f: &F) -> ItemOutcome
where
    F: Fn(&str, u32) -> Result<Vec<Vec<String>>, String>,
{
    let mut last_error = String::new();
    for attempt in 0..max_attempts.max(1) {
        if attempt > 0 {
            eprintln!("[runner] {item}: retry {attempt} (reseeded)");
        }
        match catch_unwind(AssertUnwindSafe(|| f(item, attempt))) {
            Ok(Ok(rows)) => return ItemOutcome::Ok(rows),
            Ok(Err(e)) => last_error = e,
            Err(payload) => last_error = format!("panic: {}", panic_message(&*payload)),
        }
    }
    ItemOutcome::Failed {
        error: last_error,
        attempts: max_attempts.max(1),
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The workspace `results/` directory (two levels above this manifest).
fn workspace_results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
        .join("results")
}

// --- checkpoint I/O ---------------------------------------------------

/// Loads finished items from a checkpoint, tolerating missing files and
/// skipping unparseable lines (those items are simply recomputed —
/// including a final line torn mid-append by a `kill -9`).
///
/// Lines are replayed in append (i.e. chronological) order, so the
/// latest record for an item wins. Unless `keep_failed`, `ok:false`
/// entries are dropped so the items are re-attempted on resume: a
/// recorded failure may have been transient (a budget-exhausted attempt
/// right before the kill), and re-emitting it as a placeholder forever
/// would make one bad run sticky. `ok:true` entries always replay
/// byte-identically.
fn load_checkpoint(path: &Path, keep_failed: bool) -> HashMap<String, ItemOutcome> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    let mut done = HashMap::new();
    for line in text.lines() {
        if let Some((item, outcome)) = parse_checkpoint_line(line) {
            if !keep_failed && matches!(outcome, ItemOutcome::Failed { .. }) {
                done.remove(&item);
            } else {
                done.insert(item, outcome);
            }
        }
    }
    done
}

/// Appends one finished item to the checkpoint (created on first use).
///
/// The row is flushed **and fsync'd** before this returns `Ok`: a
/// `kill -9` right after an item completes can no longer lose it to OS
/// buffering — the resume contract is "every item whose append returned
/// *successfully* is on disk". An `Err` (full disk, read-only results
/// dir) means the item exists in memory only; [`CheckpointSink`] records
/// it in [`RunOutcome::unpersisted`] instead of aborting the run.
fn append_checkpoint(path: &Path, item: &str, outcome: &ItemOutcome) -> std::io::Result<()> {
    let line = checkpoint_line(item, outcome);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")?;
    file.flush()?;
    file.sync_data()
}

/// Renders one checkpoint line.
pub(crate) fn checkpoint_line(item: &str, outcome: &ItemOutcome) -> String {
    match outcome {
        ItemOutcome::Ok(rows) => {
            let rows_json: Vec<String> = rows
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row.iter().map(|c| json_string(c)).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            format!(
                "{{\"item\":{},\"ok\":true,\"rows\":[{}]}}",
                json_string(item),
                rows_json.join(",")
            )
        }
        ItemOutcome::Failed { error, attempts } => format!(
            "{{\"item\":{},\"ok\":false,\"error\":{},\"attempts\":{attempts}}}",
            json_string(item),
            json_string(error)
        ),
    }
}

/// JSON string literal with the escapes our cell contents can need.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one checkpoint line; `None` on any malformation.
pub(crate) fn parse_checkpoint_line(line: &str) -> Option<(String, ItemOutcome)> {
    let mut p = JsonCursor::new(line);
    p.expect('{')?;
    let mut item = None;
    let mut ok = None;
    let mut rows = None;
    let mut error = None;
    let mut attempts = 0u32;
    loop {
        let key = p.string()?;
        p.expect(':')?;
        match key.as_str() {
            "item" => item = Some(p.string()?),
            "ok" => ok = Some(p.boolean()?),
            "rows" => rows = Some(p.string_matrix()?),
            "error" => error = Some(p.string()?),
            "attempts" => attempts = p.number()?,
            _ => return None,
        }
        match p.next_non_ws()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    let item = item?;
    match ok? {
        true => Some((item, ItemOutcome::Ok(rows?))),
        false => Some((
            item,
            ItemOutcome::Failed {
                error: error?,
                attempts,
            },
        )),
    }
}

/// A minimal cursor over the JSON subset the checkpoint (and the fabric
/// wire protocol) uses.
pub(crate) struct JsonCursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonCursor<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        JsonCursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t')) {
            self.chars.next();
        }
    }

    pub(crate) fn next_non_ws(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.next()
    }

    pub(crate) fn expect(&mut self, want: char) -> Option<()> {
        (self.next_non_ws()? == want).then_some(())
    }

    pub(crate) fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = (0..4).filter_map(|_| self.chars.next()).collect();
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    fn boolean(&mut self) -> Option<bool> {
        self.skip_ws();
        let mut word = String::new();
        while let Some(&c) = self.chars.peek() {
            if !c.is_ascii_alphabetic() {
                break;
            }
            word.push(c);
            self.chars.next();
        }
        match word.as_str() {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    pub(crate) fn number(&mut self) -> Option<u32> {
        self.skip_ws();
        let mut digits = String::new();
        while let Some(&c) = self.chars.peek() {
            if !c.is_ascii_digit() {
                break;
            }
            digits.push(c);
            self.chars.next();
        }
        digits.parse().ok()
    }

    /// Parses `[["a","b"],["c"]]`.
    fn string_matrix(&mut self) -> Option<Vec<Vec<String>>> {
        self.expect('[')?;
        let mut rows = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.chars.next();
            return Some(rows);
        }
        loop {
            self.expect('[')?;
            let mut row = Vec::new();
            self.skip_ws();
            if self.chars.peek() == Some(&']') {
                self.chars.next();
            } else {
                loop {
                    row.push(self.string()?);
                    match self.next_non_ws()? {
                        ',' => continue,
                        ']' => break,
                        _ => return None,
                    }
                }
            }
            rows.push(row);
            match self.next_non_ws()? {
                ',' => continue,
                ']' => return Some(rows),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_opts(label: &str) -> RunnerOptions {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("test_runner_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunnerOptions {
            label: label.to_string(),
            max_attempts: 3,
            checkpoint_dir: dir,
            threads: Some(1),
            backend: Some(Backend::Sequential),
            keep_failed: Some(false),
        }
    }

    #[test]
    fn checkpoint_line_roundtrips() {
        let outcome = ItemOutcome::Ok(vec![
            vec!["keyb".to_string(), "1.23\" \\ \n".to_string()],
            vec![],
        ]);
        let line = checkpoint_line("key\"b", &outcome);
        let (item, parsed) = parse_checkpoint_line(&line).unwrap();
        assert_eq!(item, "key\"b");
        assert_eq!(parsed, outcome);
        let fail = ItemOutcome::Failed {
            error: "boom: {x}".to_string(),
            attempts: 3,
        };
        let line = checkpoint_line("b", &fail);
        let (item, parsed) = parse_checkpoint_line(&line).unwrap();
        assert_eq!(item, "b");
        assert_eq!(parsed, fail);
        assert!(parse_checkpoint_line("{garbage").is_none());
        assert!(parse_checkpoint_line("").is_none());
    }

    #[test]
    fn isolates_panics_and_emits_placeholder() {
        let opts = temp_opts("panics");
        let items = vec![
            "good".to_string(),
            "bad".to_string(),
            "also-good".to_string(),
        ];
        let out = run(&opts, &items, 3, |item, _| {
            if item == "bad" {
                panic!("injected panic for {item}");
            }
            Ok(vec![vec![
                item.to_string(),
                "1".to_string(),
                "2".to_string(),
            ]])
        });
        assert_eq!(out.rows.len(), 3);
        assert_eq!(out.rows[0][0], "good");
        assert!(out.rows[1][1].contains("FAILED: panic: injected panic"));
        assert_eq!(out.rows[2][0], "also-good");
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].0, "bad");
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn retry_reseeds_then_succeeds() {
        let opts = temp_opts("retry");
        let items = vec!["flaky".to_string()];
        let calls = AtomicUsize::new(0);
        let out = run(&opts, &items, 2, |item, attempt| {
            calls.fetch_add(1, Ordering::SeqCst);
            if attempt < 2 {
                Err(format!("{item} failed attempt {attempt}"))
            } else {
                Ok(vec![vec![item.to_string(), format!("seed+{attempt}")]])
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(
            out.rows,
            vec![vec!["flaky".to_string(), "seed+2".to_string()]]
        );
        assert!(out.failures.is_empty());
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn killed_run_resumes_from_checkpoint_byte_identically() {
        let opts = temp_opts("resume");
        let items: Vec<String> = ["a", "b", "c"].iter().map(ToString::to_string).collect();
        let work = |item: &str, _attempt: u32| -> Result<Vec<Vec<String>>, String> {
            Ok(vec![
                vec![item.to_string(), format!("{item}-row1")],
                vec![item.to_string(), format!("{item}-row2")],
            ])
        };
        // Uninterrupted reference run.
        let reference = run(&opts, &items, 2, work);

        // Simulate a run killed after two items: re-create their
        // checkpoint lines, then rerun. The closure must not be invoked
        // for the checkpointed items.
        for item in &items[..2] {
            let rows = work(item, 0).unwrap();
            append_checkpoint(&opts.checkpoint_path(), item, &ItemOutcome::Ok(rows)).unwrap();
        }
        let recomputed = AtomicUsize::new(0);
        let resumed = run(&opts, &items, 2, |item, attempt| {
            recomputed.fetch_add(1, Ordering::SeqCst);
            assert_eq!(item, "c", "checkpointed items must not rerun");
            work(item, attempt)
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
        assert_eq!(resumed.resumed, 2);
        assert_eq!(
            resumed.rows, reference.rows,
            "resume must be byte-identical"
        );
        // The checkpoint is cleaned up after a complete run.
        assert!(!opts.checkpoint_path().exists());
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn failed_checkpoint_entries_rerun_on_resume_by_default() {
        // A transient failure recorded right before a kill must be
        // re-attempted on resume, not re-emitted as a placeholder forever.
        let opts = temp_opts("refail");
        let items: Vec<String> = ["a", "b"].iter().map(ToString::to_string).collect();
        append_checkpoint(
            &opts.checkpoint_path(),
            "a",
            &ItemOutcome::Ok(vec![vec!["a".to_string(), "row".to_string()]]),
        )
        .unwrap();
        append_checkpoint(
            &opts.checkpoint_path(),
            "b",
            &ItemOutcome::Failed {
                error: "transient: budget exhausted".to_string(),
                attempts: 3,
            },
        )
        .unwrap();
        let recomputed = AtomicUsize::new(0);
        let out = run(&opts, &items, 2, |item, _| {
            recomputed.fetch_add(1, Ordering::SeqCst);
            assert_eq!(item, "b", "only the failed entry may rerun");
            Ok(vec![vec![item.to_string(), "recovered".to_string()]])
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
        assert_eq!(out.resumed, 1, "only the ok entry resumes");
        assert!(out.failures.is_empty(), "the retry succeeded");
        assert_eq!(out.rows[1], vec!["b".to_string(), "recovered".to_string()]);
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn keep_failed_preserves_placeholder_rows_for_determinism() {
        // RUNNER_KEEP_FAILED=1 semantics: the recorded failure replays as
        // a placeholder without re-attempting (determinism tests rely on
        // a resumed run making zero new attempts).
        let mut opts = temp_opts("keepfail");
        opts.keep_failed = Some(true);
        let items: Vec<String> = ["a"].iter().map(ToString::to_string).collect();
        append_checkpoint(
            &opts.checkpoint_path(),
            "a",
            &ItemOutcome::Failed {
                error: "recorded".to_string(),
                attempts: 3,
            },
        )
        .unwrap();
        let out = run(&opts, &items, 2, |_, _| -> Result<Vec<Vec<String>>, String> {
            panic!("keep_failed must not recompute");
        });
        assert_eq!(out.resumed, 1);
        assert_eq!(out.failures.len(), 1);
        assert!(out.rows[0][1].contains("FAILED: recorded"));
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn torn_final_checkpoint_line_recomputes_exactly_that_item() {
        // Simulated kill -9 mid-append: the last line is truncated. Resume
        // must replay the intact lines byte-identically and recompute
        // exactly the torn item.
        let opts = temp_opts("torn");
        let items: Vec<String> = ["a", "b", "c"].iter().map(ToString::to_string).collect();
        let work = |item: &str, _attempt: u32| -> Result<Vec<Vec<String>>, String> {
            Ok(vec![vec![item.to_string(), format!("{item}-row")]])
        };
        let reference = run(&opts, &items, 2, work);
        // Rebuild the checkpoint: a, b complete; c torn mid-append.
        for item in &items[..2] {
            append_checkpoint(
                &opts.checkpoint_path(),
                item,
                &ItemOutcome::Ok(work(item, 0).unwrap()),
            )
            .unwrap();
        }
        let full = checkpoint_line("c", &ItemOutcome::Ok(work("c", 0).unwrap()));
        let torn = &full[..full.len() / 2];
        {
            use std::io::Write as _;
            let mut fh = std::fs::OpenOptions::new()
                .append(true)
                .open(opts.checkpoint_path())
                .unwrap();
            write!(fh, "{torn}").unwrap(); // no newline: append died here
        }
        let recomputed = AtomicUsize::new(0);
        let resumed = run(&opts, &items, 2, |item, attempt| {
            recomputed.fetch_add(1, Ordering::SeqCst);
            assert_eq!(item, "c", "only the torn item may recompute");
            work(item, attempt)
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
        assert_eq!(resumed.resumed, 2);
        assert_eq!(resumed.rows, reference.rows, "torn resume not identical");
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }

    #[test]
    fn unwritable_checkpoint_degrades_to_memory_with_typed_note() {
        // Pre-fix behavior was panic!("cannot record checkpoint ...") —
        // fatal to a scoped-thread run and to a daemon. Now the run
        // completes and reports which items were never persisted.
        let base = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target")
            .join(format!("test_runner_unwritable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        // A *file* where the checkpoint dir should be: create_dir_all and
        // every append fail with NotADirectory, even when running as root
        // (unlike permission bits, which root ignores).
        std::fs::write(base.join("blocker"), b"not a directory").unwrap();
        let opts = RunnerOptions {
            label: "unwritable".to_string(),
            max_attempts: 1,
            checkpoint_dir: base.join("blocker").join("sub"),
            threads: Some(1),
            backend: Some(Backend::Sequential),
            keep_failed: Some(false),
        };
        let items: Vec<String> = ["a", "b"].iter().map(ToString::to_string).collect();
        let out = run(&opts, &items, 2, |item, _| {
            Ok(vec![vec![item.to_string(), "v".to_string()]])
        });
        assert_eq!(out.rows.len(), 2, "run must complete without checkpoints");
        assert!(out.failures.is_empty());
        assert_eq!(
            out.unpersisted, items,
            "every completed-but-unwritten item must be reported"
        );
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn backend_selection_parses_the_env_convention() {
        let mut opts = temp_opts("backend");
        opts.backend = None;
        // Explicit option wins regardless of environment.
        opts.backend = Some(Backend::Process);
        assert_eq!(opts.effective_backend(), Backend::Process);
        opts.backend = Some(Backend::Sequential);
        assert_eq!(opts.effective_backend(), Backend::Sequential);
        let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
    }
}
