//! Self-contained micro-benchmark timing harness.
//!
//! Replaces the external `criterion` dev-dependency with the loop the
//! workspace actually needs: calibrate an iteration count so each sample
//! runs long enough to time reliably, warm up, collect N samples, and
//! report the **median** ns/iteration (robust against scheduler noise,
//! unlike the mean). Results are printed as an aligned table and written
//! as JSON under `results/` at the workspace root so sweeps can be
//! diffed across commits.
//!
//! Usage from a `harness = false` bench target:
//!
//! ```no_run
//! use std::hint::black_box;
//! let mut h = paper_bench::timing::Harness::new("mapping");
//! h.bench("map/keyb", || black_box(2 + 2));
//! h.finish();
//! ```
//!
//! Environment overrides:
//!
//! * `BENCH_FILTER=<substring>` — only run benchmarks whose name contains
//!   the substring (others are skipped, and absent from the JSON);
//! * `BENCH_RESULTS_DIR=<dir>` — write the JSON there instead of
//!   `results/` at the workspace root (used by `scripts/verify.sh` to
//!   compare a fresh run against the committed baseline).

use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Samples collected per benchmark after warmup.
const SAMPLES: usize = 15;
/// Warmup samples discarded before measurement.
const WARMUP_SAMPLES: usize = 3;
/// Target wall-clock duration of one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Calibration stops doubling once one batch takes at least this long —
/// long enough that the per-iteration estimate is trustworthy, short
/// enough that calibration stays a fraction of the measured samples.
const CALIBRATION_FLOOR: Duration = Duration::from_millis(1);
/// Upper bound on iterations per sample (very fast bodies).
const MAX_ITERS: u64 = 1 << 22;

/// Summary statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample's ns/iteration.
    pub min_ns: f64,
    /// Slowest sample's ns/iteration.
    pub max_ns: f64,
    /// Number of measured samples.
    pub samples: usize,
    /// Iterations executed per sample.
    pub iters_per_sample: u64,
}

/// Collects benchmark results for one suite and writes them out.
#[derive(Debug)]
pub struct Harness {
    suite: String,
    results: Vec<Stats>,
}

impl Harness {
    /// Creates a harness for the named suite (becomes the JSON filename).
    #[must_use]
    pub fn new(suite: impl Into<String>) -> Self {
        let suite = suite.into();
        eprintln!("== bench suite: {suite} ==");
        Harness {
            suite,
            results: Vec::new(),
        }
    }

    /// Times `f`, recording median-of-[`SAMPLES`] ns/iteration.
    ///
    /// Skipped (with a note) when `BENCH_FILTER` is set and `name` does
    /// not contain it.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, mut f: F) {
        if let Ok(filter) = std::env::var("BENCH_FILTER") {
            if !filter.is_empty() && !name.contains(&filter) {
                eprintln!("{name:<40} skipped (BENCH_FILTER={filter})");
                return;
            }
        }
        // Calibrate: how many iterations fill TARGET_SAMPLE? The first
        // call of a body pays cold caches, allocation, and page faults;
        // timing it alone over-estimated the per-iteration cost so badly
        // that sub-millisecond bodies were "calibrated" to 1 iteration
        // per sample and the reported median rode on scheduler jitter.
        // Instead, double the batch size until one *warmed* batch runs
        // for at least CALIBRATION_FLOOR, then scale that trustworthy
        // per-iteration estimate up to TARGET_SAMPLE.
        let mut calib_iters: u64 = 1;
        let per_iter_ns = loop {
            let t = Instant::now();
            for _ in 0..calib_iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= CALIBRATION_FLOOR || calib_iters >= MAX_ITERS {
                break elapsed.as_nanos().max(1) as f64 / calib_iters as f64;
            }
            calib_iters = calib_iters.saturating_mul(2).min(MAX_ITERS);
        };
        let iters = ((TARGET_SAMPLE.as_nanos() as f64 / per_iter_ns) as u64).clamp(1, MAX_ITERS);

        let sample = |f: &mut F| -> f64 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        };
        for _ in 0..WARMUP_SAMPLES {
            sample(&mut f);
        }
        let mut ns: Vec<f64> = (0..SAMPLES).map(|_| sample(&mut f)).collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        let stats = Stats {
            name: name.to_string(),
            median_ns: ns[ns.len() / 2],
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
            samples: SAMPLES,
            iters_per_sample: iters,
        };
        eprintln!(
            "{:<40} median {:>12}  (min {}, max {}, {} iters/sample)",
            stats.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.max_ns),
            stats.iters_per_sample,
        );
        self.results.push(stats);
    }

    /// Records the ratio of two already-benchmarked medians as a
    /// synthetic entry: `median_ns` holds the dimensionless ratio
    /// `numerator / denominator` (the min/max fields bracket it with the
    /// most pessimistic sample pairings). Lets a suite publish derived
    /// speedup numbers — e.g. the wirelength-only vs timing-enabled
    /// anneal ratio — in the same JSON the regression gates read.
    ///
    /// Skipped with a note when either source entry is absent (filtered
    /// out via `BENCH_FILTER`, or never run).
    pub fn record_ratio(&mut self, name: &str, numerator: &str, denominator: &str) {
        let find = |results: &[Stats], n: &str| results.iter().find(|s| s.name == n).cloned();
        let (Some(num), Some(den)) = (find(&self.results, numerator), find(&self.results, denominator))
        else {
            eprintln!("{name:<40} skipped (missing {numerator} or {denominator})");
            return;
        };
        let stats = Stats {
            name: name.to_string(),
            median_ns: num.median_ns / den.median_ns,
            min_ns: num.min_ns / den.max_ns,
            max_ns: num.max_ns / den.min_ns,
            samples: 0,
            iters_per_sample: 0,
        };
        eprintln!(
            "{:<40} ratio  {:>12.3}  ({numerator} / {denominator})",
            stats.name, stats.median_ns
        );
        self.results.push(stats);
    }

    /// Writes `results/bench_<suite>.json` and prints its path.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be written — a bench run
    /// that cannot record its output is a failed run.
    pub fn finish(self) {
        // Relative BENCH_RESULTS_DIR is resolved against the workspace
        // root, not the CWD: cargo runs bench binaries from the package
        // directory, which is never what the caller means.
        let dir = std::env::var("BENCH_RESULTS_DIR").map_or_else(
            |_| workspace_root().join("results"),
            |d| {
                let d = PathBuf::from(d);
                if d.is_absolute() {
                    d
                } else {
                    workspace_root().join(d)
                }
            },
        );
        std::fs::create_dir_all(&dir).expect("create results/");
        let path = dir.join(format!("bench_{}.json", self.suite));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": \"{}\",\n", self.suite));
        out.push_str("  \"benchmarks\": [\n");
        for (i, s) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
                s.name,
                s.median_ns,
                s.min_ns,
                s.max_ns,
                s.samples,
                s.iters_per_sample,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write bench JSON");
        eprintln!("wrote {}", path.display());
    }
}

/// Human-readable nanosecond count.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_plausible_stats() {
        let mut h = Harness::new("selftest");
        h.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let s = &h.results[0];
        assert!(s.median_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(s.samples, SAMPLES);
        // Do not call finish(): unit tests must not write results/.
    }

    #[test]
    fn record_ratio_divides_medians() {
        let mut h = Harness::new("ratio-selftest");
        for (name, median) in [("fast", 100.0), ("slow", 250.0)] {
            h.results.push(Stats {
                name: name.to_string(),
                median_ns: median,
                min_ns: median * 0.9,
                max_ns: median * 1.1,
                samples: SAMPLES,
                iters_per_sample: 1,
            });
        }
        h.record_ratio("slow_over_fast", "slow", "fast");
        let r = h.results.last().unwrap();
        assert!((r.median_ns - 2.5).abs() < 1e-12);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        // Missing sources record nothing.
        h.record_ratio("absent", "nope", "fast");
        assert_eq!(h.results.len(), 3);
        // Do not call finish(): unit tests must not write results/.
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.0e9), "3.00 s");
    }
}
