//! Multi-process flow-cache stress: N concurrent `cache_stress`
//! processes — each a writer, an mtime-refreshing reader, and an evictor
//! — share one store under a tiny `FLOW_CACHE_MAX_BYTES`. The pre-fix
//! eviction (one-shot scan, stale totals, ENOENT-unsafe refresh) panics
//! or over/under-evicts under exactly this load; the hardened version
//! must end with every process exiting cleanly and the store within
//! budget.

use std::path::PathBuf;
use std::process::Command;

const BUDGET: u64 = 6000;

#[test]
fn concurrent_writers_and_evictors_leave_a_within_budget_store() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("itest_cache_stress_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create store dir");

    let spawn = |seed: u64, iterations: u64| {
        Command::new(env!("CARGO_BIN_EXE_cache_stress"))
            .arg(seed.to_string())
            .arg(iterations.to_string())
            .env("FLOW_CACHE_DIR", &dir)
            .env("FLOW_CACHE_MAX_BYTES", BUDGET.to_string())
            .env_remove("FLOW_CACHE")
            .spawn()
            .expect("spawn cache_stress")
    };

    let children: Vec<_> = (1..=4).map(|seed| spawn(seed, 40)).collect();
    for mut child in children {
        let status = child.wait().expect("wait cache_stress");
        assert!(
            status.success(),
            "a cache_stress process died under concurrent eviction: {status}"
        );
    }

    // Quiesce: one final single-process store re-enforces the budget so
    // the assertion below races nobody (the concurrent phase may leave a
    // momentary overshoot between a publish and its eviction pass).
    let status = spawn(99, 1).wait().expect("wait final cache_stress");
    assert!(status.success(), "final cache_stress run failed: {status}");

    let total: u64 = std::fs::read_dir(&dir)
        .expect("read store dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "txt"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    assert!(
        total <= BUDGET,
        "store holds {total} bytes, budget is {BUDGET} (eviction not enforced under contention)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
