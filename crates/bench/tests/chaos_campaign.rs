//! Wire-level chaos campaign: 240 seeded fault cases (48 items × 5
//! seeds) through the supervised process backend, asserting zero
//! coordinator panics and byte-identical output versus the sequential
//! backend under every injected fault — hangs, mid-line kills, torn
//! writes, garbage lines, slow drips, early EOF.
//!
//! The fault drawn for an item is deterministic in `(seed, item)`
//! (`fabric::chaos::FaultPlan`), so a lethal fault follows its item
//! across worker respawns until the coordinator exhausts process
//! attempts and computes it inline — the worst case for the supervision
//! machinery, and exactly where byte identity is hardest to keep.

use paper_bench::fabric::chaos::{FaultPlan, WireFault};
use std::path::PathBuf;
use std::process::Command;

/// The campaign corpus: 44 generic items, one typed failure, and three
/// seeded `fsm_model::generate` machines (so chaos coverage isn't
/// limited to synthetic no-op rows — see ROADMAP's corpus item).
fn campaign_items() -> Vec<String> {
    let mut items: Vec<String> = (0..44).map(|i| format!("case-{i:02}")).collect();
    items.push("fail-x".to_string());
    for seed in [7, 8, 9] {
        items.push(format!("gen-{seed}"));
    }
    items
}

const CAMPAIGN_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("itest_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_selftest(dir: &PathBuf, items: &str, envs: &[(&str, &str)]) -> (String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fabric_selftest"));
    cmd.env("SELFTEST_ITEMS", items)
        .env("SELFTEST_DIR", dir)
        .env("SELFTEST_MARKER_DIR", dir)
        .env_remove("RUNNER_BACKEND")
        .env_remove("RUNNER_THREADS")
        .env_remove("RUNNER_KEEP_FAILED")
        .env_remove("RUNNER_ITEM_TIMEOUT_MS")
        .env_remove("RUNNER_MAX_STRIKES")
        .env_remove("SELFTEST_PRINT_HEALTH")
        .env_remove("FABRIC_CHAOS_SEED");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn fabric_selftest");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

/// One chaos round: the full corpus under one seed, compared
/// byte-for-byte against an unfaulted sequential reference.
fn chaos_round(seed: u64) {
    let items = campaign_items().join(",");

    let dir = scratch(&format!("ref_{seed}"));
    let (reference, ok) = run_selftest(&dir, &items, &[("RUNNER_BACKEND", "sequential")]);
    assert!(ok, "sequential reference failed (seed {seed})");
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch(&format!("chaos_{seed}"));
    let seed_str = seed.to_string();
    let (out, ok) = run_selftest(
        &dir,
        &items,
        &[
            ("RUNNER_BACKEND", "process"),
            ("RUNNER_THREADS", "4"),
            // Tight enough that an injected hang costs ~300 ms, not the
            // default 5 minutes; generous enough that slow drips and
            // torn writes (tens of ms) never time out spuriously.
            ("RUNNER_ITEM_TIMEOUT_MS", "300"),
            ("RUNNER_HANDSHAKE_TIMEOUT_MS", "5000"),
            ("RUNNER_MAX_STRIKES", "4"),
            ("RUNNER_BACKOFF_BASE_MS", "5"),
            ("FABRIC_CHAOS_SEED", &seed_str),
            ("FABRIC_CHAOS_HANG_MS", "60000"),
        ],
    );
    assert!(ok, "coordinator did not survive chaos seed {seed}");
    assert_eq!(
        out, reference,
        "output must be byte-identical under chaos seed {seed}"
    );
}

#[test]
fn chaos_campaign_seeds_1_and_2() {
    chaos_round(1);
    chaos_round(2);
}

#[test]
fn chaos_campaign_seeds_3_and_4() {
    chaos_round(3);
    chaos_round(4);
}

#[test]
fn chaos_campaign_seed_5() {
    chaos_round(5);
}

#[test]
fn campaign_grid_is_big_enough_and_exercises_every_fault() {
    // 200+ cases, and every wire-fault variant (including the lethal
    // ones the deliver unit test can't drive in-process) occurs
    // somewhere in the grid the rounds above actually run.
    let items = campaign_items();
    let cases = items.len() * CAMPAIGN_SEEDS.len();
    assert!(cases >= 200, "campaign shrank to {cases} cases");
    let mut seen = std::collections::BTreeSet::new();
    for seed in CAMPAIGN_SEEDS {
        let plan = FaultPlan::new(seed);
        for item in &items {
            seen.insert(plan.fault_for(item).to_string());
        }
    }
    for fault in [
        WireFault::None,
        WireFault::Hang,
        WireFault::MidLineKill,
        WireFault::TornWrite,
        WireFault::GarbageLine,
        WireFault::SlowDrip,
        WireFault::EarlyEof,
    ] {
        assert!(
            seen.contains(&fault.to_string()),
            "campaign grid never draws {fault}"
        );
    }
}
