//! Committed-corpus ladder coverage: the seeded tier grids, pushed
//! through their flow profiles, must collectively exercise every mapping
//! rung (direct / compacted / series / overlay / the FF fallback) and
//! every [`emb_fsm::flow::Downgrade`] variant at least once — so no rung
//! of the degradation ladder can silently lose its corpus coverage when
//! a grid or profile changes. The overlay rung and the
//! `overlay-capacity` downgrade come from a second pass over the same
//! prefix with the mapping backend forced to `auto`, mirroring the
//! `overlay_auto` pass of `corpus_stress`.
//!
//! The indices probed here are a prefix of every `corpus_stress` run
//! with the default `CORPUS_SEED`, so a failure in this test means the
//! committed `results/bench_corpus.json` run would miss coverage too.

use emb_fsm::MapBackend;
use paper_bench::corpus::{run_item, run_item_with_backend};
use std::collections::BTreeSet;

/// The default corpus seed (`CORPUS_SEED`), pinned: changing it moves
/// every committed histogram.
const SEED: u64 = 2004;

/// Indices probed per tier. The eco-squeeze budget race only trips on
/// some machines, so that tier gets a deeper prefix (machines 5 and 10
/// are the pinned EcoFallback witnesses under seed 2004).
fn prefix_len(tier: &str) -> usize {
    if tier == "eco-squeeze" {
        12
    } else {
        3
    }
}

#[test]
fn committed_corpus_covers_every_rung_and_downgrade() {
    let scratch = std::env::temp_dir().join(format!("corpus_coverage_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    std::env::set_var("FLOW_CACHE_DIR", &scratch);

    let mut rungs: BTreeSet<String> = BTreeSet::new();
    let mut downgrades: BTreeSet<String> = BTreeSet::new();
    for tier in fsm_model::corpus::tier_names() {
        for i in 0..prefix_len(tier) {
            let spec = fsm_model::corpus::spec(tier, i, SEED).expect("known tier");
            let o = run_item(&spec.name);
            assert_eq!(
                o.status, "ok",
                "corpus item {} must complete (possibly degraded), got {o:?}",
                spec.name
            );
            rungs.insert(o.rung.clone());
            for d in o.downgrades.split('+').filter(|d| *d != "none") {
                downgrades.insert(d.to_string());
            }
        }
    }

    // Overlay pass over the same prefix: `auto` lands overlay-fit items
    // on the overlay rung and records `overlay-capacity` for the rest.
    for tier in fsm_model::corpus::tier_names() {
        for i in 0..prefix_len(tier).min(3) {
            let spec = fsm_model::corpus::spec(tier, i, SEED).expect("known tier");
            let o = run_item_with_backend(&spec.name, Some(MapBackend::Auto));
            assert_eq!(
                o.status, "ok",
                "overlay-pass corpus item {} must complete (possibly degraded), got {o:?}",
                spec.name
            );
            rungs.insert(o.rung.clone());
            for d in o.downgrades.split('+').filter(|d| *d != "none") {
                downgrades.insert(d.to_string());
            }
        }
    }

    for rung in ["direct", "compacted", "series", "overlay", "ff"] {
        assert!(
            rungs.contains(rung),
            "no committed corpus item lands on the '{rung}' rung (saw {rungs:?})"
        );
    }
    for kind in emb_fsm::flow::Downgrade::all_kinds() {
        assert!(
            downgrades.contains(*kind),
            "no committed corpus item records the '{kind}' downgrade (saw {downgrades:?})"
        );
    }

    let _ = std::fs::remove_dir_all(&scratch);
}
