//! Daemon-mode integration tests: protocol round-trips, warm-cache
//! repeat requests, admission-control rejects, and clean shutdown — all
//! against an in-process [`paper_bench::fabric::serve`] listener.

use paper_bench::fabric::{request, serve, DaemonOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A short socket path (Unix sockets cap at ~108 bytes).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fabric_{tag}_{}.sock", std::process::id()))
}

/// Blocks until the daemon answers ping (it binds on another thread).
fn await_ready(socket: &PathBuf) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(r) = request(socket, "{\"cmd\":\"ping\"}") {
            assert!(r.contains("\"pong\":true"), "bad ping response: {r}");
            return;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn daemon_serves_warm_repeat_requests_and_shuts_down_cleanly() {
    let socket = socket_path("warm");
    let opts = DaemonOptions::new(&socket);
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    // Unknown benchmark: a typed error, not a hang or a crash.
    let r = request(&socket, "{\"bench\":\"no-such-fsm\"}").expect("request");
    assert!(r.contains("\"ok\":false"), "unexpected: {r}");
    assert!(r.contains("\"kind\":\"unknown-bench\""), "unexpected: {r}");

    // Garbage: typed bad-request.
    let r = request(&socket, "definitely not json").expect("request");
    assert!(r.contains("\"kind\":\"bad-request\""), "unexpected: {r}");

    // A real mapping, twice: the second must be served entirely from the
    // warm flow cache (zero misses, some hits → "warm":true).
    let r1 = request(&socket, "{\"bench\":\"dk16\"}").expect("first map");
    assert!(r1.contains("\"ok\":true"), "first map failed: {r1}");
    assert!(r1.contains("\"saving_pct\":"), "no saving in: {r1}");
    let r2 = request(&socket, "{\"bench\":\"dk16\"}").expect("second map");
    assert!(r2.contains("\"ok\":true"), "second map failed: {r2}");
    assert!(
        r2.contains("\"warm\":true"),
        "repeat request was not served from warm cache: {r2}"
    );

    // Stats saw the traffic.
    let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
    assert!(r.contains("\"ok\":true"), "stats failed: {r}");
    assert!(r.contains("\"served\":3"), "unexpected served count: {r}");

    // Shutdown: acknowledged, serve() returns, socket file removed.
    let r = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.contains("\"shutdown\":true"), "unexpected: {r}");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
    assert!(!socket.exists(), "socket file left behind");
}

#[test]
fn daemon_rejects_mapping_requests_over_the_admission_bound() {
    let socket = socket_path("reject");
    let opts = DaemonOptions {
        socket: socket.clone(),
        // A zero bound makes every mapping request "one too many", so
        // the reject path is tested without timing-sensitive contention.
        max_inflight: 0,
    };
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    let r = request(&socket, "{\"bench\":\"dk16\"}").expect("request");
    assert!(r.contains("\"ok\":false"), "unexpected: {r}");
    assert!(
        r.contains("\"kind\":\"overloaded\""),
        "expected a typed overload reject: {r}"
    );

    // Control commands bypass admission: the daemon stays steerable.
    let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
    assert!(r.contains("\"rejected\":1"), "reject not counted: {r}");

    let r = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.contains("\"shutdown\":true"), "unexpected: {r}");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
}
