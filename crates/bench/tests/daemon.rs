//! Daemon-mode integration tests: protocol round-trips, warm-cache
//! repeat requests, admission-control rejects, request deadlines, the
//! idle-connection sweep, graceful drain under in-flight load,
//! stale-socket probing, client retry, and clean shutdown — all against
//! an in-process [`paper_bench::fabric::serve`] listener.

use paper_bench::fabric::{request, request_with_retry, serve, DaemonOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A short socket path (Unix sockets cap at ~108 bytes).
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fabric_{tag}_{}.sock", std::process::id()))
}

/// Blocks until the daemon answers ping (it binds on another thread).
fn await_ready(socket: &PathBuf) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(r) = request(socket, "{\"cmd\":\"ping\"}") {
            assert!(r.contains("\"pong\":true"), "bad ping response: {r}");
            return;
        }
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn daemon_serves_warm_repeat_requests_and_shuts_down_cleanly() {
    let socket = socket_path("warm");
    let opts = DaemonOptions::new(&socket);
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    // Unknown benchmark: a typed error, not a hang or a crash.
    let r = request(&socket, "{\"bench\":\"no-such-fsm\"}").expect("request");
    assert!(r.contains("\"ok\":false"), "unexpected: {r}");
    assert!(r.contains("\"kind\":\"unknown-bench\""), "unexpected: {r}");

    // Garbage: typed bad-request.
    let r = request(&socket, "definitely not json").expect("request");
    assert!(r.contains("\"kind\":\"bad-request\""), "unexpected: {r}");

    // A real mapping, twice: the second must be served entirely from the
    // warm flow cache (zero misses, some hits → "warm":true).
    let r1 = request(&socket, "{\"bench\":\"dk16\"}").expect("first map");
    assert!(r1.contains("\"ok\":true"), "first map failed: {r1}");
    assert!(r1.contains("\"saving_pct\":"), "no saving in: {r1}");
    let r2 = request(&socket, "{\"bench\":\"dk16\"}").expect("second map");
    assert!(r2.contains("\"ok\":true"), "second map failed: {r2}");
    assert!(
        r2.contains("\"warm\":true"),
        "repeat request was not served from warm cache: {r2}"
    );

    // Stats saw the traffic.
    let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
    assert!(r.contains("\"ok\":true"), "stats failed: {r}");
    assert!(r.contains("\"served\":3"), "unexpected served count: {r}");

    // Shutdown: acknowledged, serve() returns, socket file removed.
    let r = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.contains("\"shutdown\":true"), "unexpected: {r}");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
    assert!(!socket.exists(), "socket file left behind");
}

#[test]
fn daemon_rejects_mapping_requests_over_the_admission_bound() {
    let socket = socket_path("reject");
    let opts = DaemonOptions {
        // A zero bound makes every mapping request "one too many", so
        // the reject path is tested without timing-sensitive contention.
        max_inflight: 0,
        ..DaemonOptions::new(&socket)
    };
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    let r = request(&socket, "{\"bench\":\"dk16\"}").expect("request");
    assert!(r.contains("\"ok\":false"), "unexpected: {r}");
    assert!(
        r.contains("\"kind\":\"overloaded\""),
        "expected a typed overload reject: {r}"
    );

    // Control commands bypass admission: the daemon stays steerable.
    let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
    assert!(r.contains("\"rejected\":1"), "reject not counted: {r}");

    let r = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.contains("\"shutdown\":true"), "unexpected: {r}");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
}

#[test]
fn second_daemon_on_a_live_socket_fails_typed_without_clobbering_the_first() {
    let socket = socket_path("live");
    let opts = DaemonOptions::new(&socket);
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    // A second daemon on the same socket must probe-connect, see the
    // live daemon, and refuse — typed AddrInUse, socket untouched.
    let err = serve(&opts).expect_err("second daemon must not bind a live socket");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "wrong kind: {err}");
    assert!(
        err.to_string().contains("already-running"),
        "error must be typed: {err}"
    );

    // The first daemon is unharmed: still answering on the same socket.
    let r = request(&socket, "{\"cmd\":\"ping\"}").expect("first daemon died");
    assert!(r.contains("\"pong\":true"), "unexpected: {r}");

    let _ = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");

    // A *stale* socket file (nothing listening) is removed and reused.
    std::os::unix::net::UnixListener::bind(&socket).expect("plant stale socket");
    // Dropping the listener leaves the file with no one accepting on it.
    let opts2 = DaemonOptions::new(&socket);
    let handle = std::thread::spawn(move || serve(&opts2));
    await_ready(&socket);
    let _ = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("stale socket must be reclaimed");
}

#[test]
fn requests_past_the_deadline_get_a_typed_reject_and_are_counted() {
    let socket = socket_path("deadline");
    let opts = DaemonOptions {
        request_timeout: Duration::from_millis(100),
        ..DaemonOptions::new(&socket)
    };
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    let r = request(&socket, "{\"cmd\":\"sleep\",\"ms\":10000}").expect("sleep request");
    assert!(r.contains("\"ok\":false"), "unexpected: {r}");
    assert!(
        r.contains("\"kind\":\"deadline\""),
        "expected a typed deadline reject: {r}"
    );

    // The timeout is counted, the request is NOT counted as served, and
    // the admission slot is still held by the background job.
    let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
    assert!(r.contains("\"timeouts\":1"), "timeout not counted: {r}");
    assert!(r.contains("\"served\":0"), "timed-out request counted as served: {r}");
    assert!(r.contains("\"inflight\":1"), "background job must hold its slot: {r}");

    // A fast request still completes within the same deadline budget.
    let r = request(&socket, "{\"cmd\":\"sleep\",\"ms\":1}").expect("fast sleep");
    assert!(r.contains("\"slept_ms\":1"), "unexpected: {r}");

    let _ = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
}

#[test]
fn shutdown_drains_in_flight_work_and_rejects_new_requests() {
    let socket = socket_path("drain");
    let opts = DaemonOptions::new(&socket);
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    // Park one slow-but-within-deadline request in flight.
    let slow_socket = socket.clone();
    let slow = std::thread::spawn(move || request(&slow_socket, "{\"cmd\":\"sleep\",\"ms\":700}"));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
        if r.contains("\"inflight\":1") {
            break;
        }
        assert!(Instant::now() < deadline, "sleep request never went in flight");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Shutdown while it runs: ack now, drain after.
    let r = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    assert!(r.contains("\"shutdown\":true"), "unexpected: {r}");

    // New work during the drain is rejected with the typed kind...
    let r = request(&socket, "{\"bench\":\"dk16\"}").expect("map during drain");
    assert!(
        r.contains("\"kind\":\"draining\""),
        "expected a typed draining reject: {r}"
    );

    // ...while the in-flight request still finishes successfully.
    let r = slow
        .join()
        .expect("slow client panicked")
        .expect("in-flight request was cut off by shutdown");
    assert!(
        r.contains("\"slept_ms\":700"),
        "in-flight work must complete during drain: {r}"
    );

    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
    assert!(!socket.exists(), "socket file left behind after drain");
}

#[test]
fn idle_connections_are_swept_with_a_typed_response() {
    use std::io::{BufRead as _, BufReader};
    let socket = socket_path("idle");
    let opts = DaemonOptions {
        idle_timeout: Duration::from_millis(100),
        ..DaemonOptions::new(&socket)
    };
    let handle = {
        let opts = opts.clone();
        std::thread::spawn(move || serve(&opts))
    };
    await_ready(&socket);

    // Connect and send nothing: the sweep must close us with a typed
    // `idle` line instead of holding the connection forever.
    let stream = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read sweep response");
    assert!(line.contains("\"kind\":\"idle\""), "unexpected sweep response: {line}");

    let r = request(&socket, "{\"cmd\":\"stats\"}").expect("stats");
    assert!(r.contains("\"idle_closed\":1"), "sweep not counted: {r}");

    let _ = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    handle
        .join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
}

#[test]
fn client_retry_rides_out_a_daemon_that_binds_late() {
    let socket = socket_path("retry");
    // No daemon yet: a plain request fails immediately...
    let err = request(&socket, "{\"cmd\":\"ping\"}").expect_err("no daemon yet");
    assert!(matches!(
        err.kind(),
        std::io::ErrorKind::NotFound | std::io::ErrorKind::ConnectionRefused
    ));

    // ...but a retrying client spins until the daemon appears (bound
    // late on another thread), within its backoff budget.
    let late_socket = socket.clone();
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        serve(&DaemonOptions::new(&late_socket))
    });
    let r = request_with_retry(&socket, "{\"cmd\":\"ping\"}", 20)
        .expect("retrying client must reach the late-bound daemon");
    assert!(r.contains("\"pong\":true"), "unexpected: {r}");

    let _ = request(&socket, "{\"cmd\":\"shutdown\"}").expect("shutdown");
    late.join()
        .expect("daemon thread panicked")
        .expect("serve returned an error");
}
