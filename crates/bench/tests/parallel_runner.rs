//! Integration tests for the work-stealing runner backend: a parallel
//! run must emit exactly the rows a serial run emits (including FAILED
//! placeholders), and a checkpoint written by a killed parallel run must
//! resume without recomputing finished items.

use paper_bench::runner::{run, Backend, RunnerOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_opts(label: &str, threads: usize) -> RunnerOptions {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("itest_runner_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    RunnerOptions {
        label: label.to_string(),
        max_attempts: 2,
        checkpoint_dir: dir,
        threads: Some(threads),
        backend: Some(Backend::Threads),
        keep_failed: Some(false),
    }
}

/// The shared workload: deterministic rows per item, with one item that
/// fails every attempt and one that panics every attempt.
fn work(item: &str, attempt: u32) -> Result<Vec<Vec<String>>, String> {
    match item {
        "fails" => Err(format!("injected failure (attempt {attempt})")),
        "panics" => panic!("injected panic"),
        _ => Ok(vec![
            vec![item.to_string(), format!("{item}-a")],
            vec![item.to_string(), format!("{item}-b")],
        ]),
    }
}

#[test]
fn parallel_rows_match_serial_rows_including_failures() {
    let items: Vec<String> = ["alpha", "fails", "beta", "panics", "gamma", "delta"]
        .iter()
        .map(ToString::to_string)
        .collect();

    let serial_opts = temp_opts("eq_serial", 1);
    let serial = run(&serial_opts, &items, 3, work);
    let _ = std::fs::remove_dir_all(&serial_opts.checkpoint_dir);

    let parallel_opts = temp_opts("eq_parallel", 4);
    let parallel = run(&parallel_opts, &items, 3, work);
    let _ = std::fs::remove_dir_all(&parallel_opts.checkpoint_dir);

    assert_eq!(
        serial.rows, parallel.rows,
        "rows must not depend on thread count"
    );
    assert_eq!(serial.failures, parallel.failures);
    assert_eq!(serial.resumed, 0);
    assert_eq!(parallel.resumed, 0);
    // Both failure modes surfaced as placeholder rows in input order.
    assert_eq!(parallel.failures.len(), 2);
    assert!(parallel.rows[2][1].starts_with("FAILED: injected failure"));
    assert!(parallel.rows[5][1].starts_with("FAILED: panic: injected panic"));
}

#[test]
fn parallel_run_resumes_from_checkpoint_without_recomputing() {
    let items: Vec<String> = ["a", "b", "c", "d", "e"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let opts = temp_opts("resume_par", 4);

    // Reference: an uninterrupted serial run.
    let reference = run(
        &RunnerOptions {
            threads: Some(1),
            ..opts.clone()
        },
        &items,
        2,
        work,
    );

    // Simulate a run killed after "a" and "c" finished: write their rows
    // in the documented checkpoint JSONL format (completion order — a
    // parallel run may checkpoint out of input order).
    std::fs::create_dir_all(&opts.checkpoint_dir).unwrap();
    let path = opts
        .checkpoint_dir
        .join(format!("checkpoint_{}.jsonl", opts.label));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        r#"{{"item":"c","ok":true,"rows":[["c","c-a"],["c","c-b"]]}}"#
    )
    .unwrap();
    writeln!(
        f,
        r#"{{"item":"a","ok":true,"rows":[["a","a-a"],["a","a-b"]]}}"#
    )
    .unwrap();
    drop(f);

    let recomputed = AtomicUsize::new(0);
    let resumed = run(&opts, &items, 2, |item, attempt| {
        recomputed.fetch_add(1, Ordering::SeqCst);
        assert!(
            item != "a" && item != "c",
            "checkpointed item {item} must not be recomputed"
        );
        work(item, attempt)
    });
    assert_eq!(recomputed.load(Ordering::SeqCst), 3);
    assert_eq!(resumed.resumed, 2);
    assert_eq!(
        resumed.rows, reference.rows,
        "resumed rows must be identical"
    );
    assert!(!path.exists(), "checkpoint removed after a complete run");
    let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
}

#[test]
fn effective_threads_honors_explicit_option() {
    let opts = temp_opts("threads_opt", 7);
    assert_eq!(opts.effective_threads(), 7);
    let _ = std::fs::remove_dir_all(&opts.checkpoint_dir);
}
