//! Placement-quality regression gate for the adaptive annealing
//! schedule: on the bench configuration (`keyb`, seed 1, effort 2.0 —
//! the same input `benches/substrates.rs` times as `place_sa/keyb`) the
//! placer must be equal-or-better than the fixed-schedule baseline on
//! both wirelength objectives while spending measurably fewer moves.
//!
//! Baseline (fixed 0.85 cooling, crude T0), recorded before the switch:
//! Σhpwl = 1772, Σhpwl² = 13248, at 31722 moves.
//!
//! The timing cost term is disabled here (`timing_weight: 0.0`): these
//! baselines gate the pure-wirelength objective, which the timing-driven
//! anneal deliberately trades against criticality. The timing-enabled
//! quality gate lives in `tests/timing_quality.rs`.

use emb_fsm::baseline::ff_netlist;
use fpga_fabric::device::Device;
use fpga_fabric::pack::pack;
use fpga_fabric::place::{place, PlaceOptions};
use logic_synth::synth::{synthesize, SynthOptions};

#[test]
fn adaptive_schedule_is_equal_or_better_at_fewer_moves() {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    let netlist = ff_netlist(&synth, false).0;
    let packed = pack(&netlist);
    let placement = place(
        &netlist,
        &packed,
        Device::xc2v250(),
        PlaceOptions {
            seed: 1,
            effort: 2.0,
            timing_weight: 0.0,
            ..PlaceOptions::default()
        },
    )
    .expect("places");

    assert!(
        placement.hpwl <= 1772.0,
        "Σhpwl regressed past the fixed-schedule baseline: {}",
        placement.hpwl
    );
    assert!(
        placement.hpwl_sq <= 13248.0,
        "Σhpwl² regressed past the fixed-schedule baseline: {}",
        placement.hpwl_sq
    );
    assert!(
        placement.moves < 31722,
        "adaptive schedule must spend fewer moves than the baseline's 31722, spent {}",
        placement.moves
    );
}
