//! Integration tests for the multi-process runner backend, driven
//! through the `fabric_selftest` bin (a real harness binary whose flow
//! is synthetic): byte identity against the sequential backend, survival
//! of an abort-class worker death, and checkpoint-resume skipping.

use std::path::PathBuf;
use std::process::Command;

/// A fresh scratch directory under `target/` for one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("itest_fabric_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `fabric_selftest` with the given backend env and returns
/// (stdout, success).
fn run_selftest(dir: &PathBuf, items: &str, envs: &[(&str, &str)]) -> (String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fabric_selftest"));
    cmd.env("SELFTEST_ITEMS", items)
        .env("SELFTEST_DIR", dir)
        .env("SELFTEST_MARKER_DIR", dir)
        .env_remove("RUNNER_BACKEND")
        .env_remove("RUNNER_THREADS")
        .env_remove("RUNNER_KEEP_FAILED");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn fabric_selftest");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn process_backend_output_is_byte_identical_to_sequential() {
    let items = "alpha,beta,fail-x,gamma,delta,epsilon";

    let dir = scratch("ident_seq");
    let (serial, ok) = run_selftest(&dir, items, &[("RUNNER_BACKEND", "sequential")]);
    assert!(ok, "sequential selftest run failed");
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch("ident_proc");
    let (parallel, ok) = run_selftest(
        &dir,
        items,
        &[("RUNNER_BACKEND", "process"), ("RUNNER_THREADS", "4")],
    );
    assert!(ok, "process-backend selftest run failed");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        serial.contains("row-alpha-0"),
        "sequential run produced no rows:\n{serial}"
    );
    assert!(
        serial.contains("FAILED: typed failure for fail-x"),
        "failure placeholder missing:\n{serial}"
    );
    assert_eq!(
        serial, parallel,
        "table bytes must not depend on the backend"
    );
}

#[test]
fn process_backend_survives_an_aborting_worker() {
    let dir = scratch("poison");
    // poison-boom aborts the first worker process that computes it; the
    // coordinator must respawn a worker, resubmit, and finish the run.
    let (out, ok) = run_selftest(
        &dir,
        "alpha,poison-boom,beta",
        &[("RUNNER_BACKEND", "process"), ("RUNNER_THREADS", "2")],
    );
    assert!(ok, "run did not survive the worker abort");
    assert!(
        out.contains("row-poison-boom-0"),
        "poisoned item missing its post-respawn row:\n{out}"
    );
    assert!(
        dir.join("poison-boom").exists(),
        "marker file missing — the abort path never ran"
    );
    // All three items present, input order.
    let rows: Vec<&str> = out.lines().collect();
    assert_eq!(rows.len(), 3, "expected 3 rows:\n{out}");
    assert!(rows[0].starts_with("alpha|"));
    assert!(rows[1].starts_with("poison-boom|"));
    assert!(rows[2].starts_with("beta|"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn process_backend_resume_skips_checkpointed_items() {
    let dir = scratch("resume");
    // A checkpoint recording poison-skip as done: the resumed run must
    // replay it without executing the closure (which would abort a
    // worker and leave a marker file).
    std::fs::write(
        dir.join("checkpoint_fabric_selftest.jsonl"),
        "{\"item\":\"poison-skip\",\"ok\":true,\"rows\":[[\"poison-skip\",\"row-poison-skip-0\",\"z\"]]}\n",
    )
    .expect("seed checkpoint");
    let (out, ok) = run_selftest(
        &dir,
        "alpha,poison-skip,beta",
        &[("RUNNER_BACKEND", "process"), ("RUNNER_THREADS", "2")],
    );
    assert!(ok, "resumed run failed");
    assert!(
        out.contains("row-poison-skip-0"),
        "checkpointed row missing:\n{out}"
    );
    assert!(
        !dir.join("poison-skip").exists(),
        "closure ran for a checkpointed item (marker file exists)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
