//! Integration tests for the multi-process runner backend, driven
//! through the `fabric_selftest` bin (a real harness binary whose flow
//! is synthetic): byte identity against the sequential backend, survival
//! of an abort-class worker death, and checkpoint-resume skipping.

use std::path::PathBuf;
use std::process::Command;

/// A fresh scratch directory under `target/` for one test.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("itest_fabric_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `fabric_selftest` with the given backend env and returns
/// (stdout, success).
fn run_selftest(dir: &PathBuf, items: &str, envs: &[(&str, &str)]) -> (String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fabric_selftest"));
    cmd.env("SELFTEST_ITEMS", items)
        .env("SELFTEST_DIR", dir)
        .env("SELFTEST_MARKER_DIR", dir)
        .env_remove("RUNNER_BACKEND")
        .env_remove("RUNNER_THREADS")
        .env_remove("RUNNER_KEEP_FAILED")
        .env_remove("RUNNER_ITEM_TIMEOUT_MS")
        .env_remove("RUNNER_HANDSHAKE_TIMEOUT_MS")
        .env_remove("RUNNER_MAX_STRIKES")
        .env_remove("RUNNER_BACKOFF_BASE_MS")
        .env_remove("SELFTEST_PRINT_HEALTH")
        .env_remove("FABRIC_CHAOS_SEED");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn fabric_selftest");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

#[test]
fn process_backend_output_is_byte_identical_to_sequential() {
    let items = "alpha,beta,fail-x,gamma,delta,epsilon";

    let dir = scratch("ident_seq");
    let (serial, ok) = run_selftest(&dir, items, &[("RUNNER_BACKEND", "sequential")]);
    assert!(ok, "sequential selftest run failed");
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch("ident_proc");
    let (parallel, ok) = run_selftest(
        &dir,
        items,
        &[("RUNNER_BACKEND", "process"), ("RUNNER_THREADS", "4")],
    );
    assert!(ok, "process-backend selftest run failed");
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        serial.contains("row-alpha-0"),
        "sequential run produced no rows:\n{serial}"
    );
    assert!(
        serial.contains("FAILED: typed failure for fail-x"),
        "failure placeholder missing:\n{serial}"
    );
    assert_eq!(
        serial, parallel,
        "table bytes must not depend on the backend"
    );
}

#[test]
fn process_backend_survives_an_aborting_worker() {
    let dir = scratch("poison");
    // poison-boom aborts the first worker process that computes it; the
    // coordinator must respawn a worker, resubmit, and finish the run.
    let (out, ok) = run_selftest(
        &dir,
        "alpha,poison-boom,beta",
        &[("RUNNER_BACKEND", "process"), ("RUNNER_THREADS", "2")],
    );
    assert!(ok, "run did not survive the worker abort");
    assert!(
        out.contains("row-poison-boom-0"),
        "poisoned item missing its post-respawn row:\n{out}"
    );
    assert!(
        dir.join("poison-boom").exists(),
        "marker file missing — the abort path never ran"
    );
    // All three items present, input order.
    let rows: Vec<&str> = out.lines().collect();
    assert_eq!(rows.len(), 3, "expected 3 rows:\n{out}");
    assert!(rows[0].starts_with("alpha|"));
    assert!(rows[1].starts_with("poison-boom|"));
    assert!(rows[2].starts_with("beta|"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn process_backend_resume_skips_checkpointed_items() {
    let dir = scratch("resume");
    // A checkpoint recording poison-skip as done: the resumed run must
    // replay it without executing the closure (which would abort a
    // worker and leave a marker file).
    std::fs::write(
        dir.join("checkpoint_fabric_selftest.jsonl"),
        "{\"item\":\"poison-skip\",\"ok\":true,\"rows\":[[\"poison-skip\",\"row-poison-skip-0\",\"z\"]]}\n",
    )
    .expect("seed checkpoint");
    let (out, ok) = run_selftest(
        &dir,
        "alpha,poison-skip,beta",
        &[("RUNNER_BACKEND", "process"), ("RUNNER_THREADS", "2")],
    );
    assert!(ok, "resumed run failed");
    assert!(
        out.contains("row-poison-skip-0"),
        "checkpointed row missing:\n{out}"
    );
    assert!(
        !dir.join("poison-skip").exists(),
        "closure ran for a checkpointed item (marker file exists)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_times_out_is_killed_and_output_stays_identical() {
    let items = "alpha,hang-once-stall,beta";

    // Sequential reference: hang items only sleep inside worker
    // processes, so this computes instantly.
    let dir = scratch("hang_seq");
    let (reference, ok) = run_selftest(&dir, items, &[("RUNNER_BACKEND", "sequential")]);
    assert!(ok, "sequential reference run failed");
    let _ = std::fs::remove_dir_all(&dir);

    // Process backend with a tight per-item deadline: the first worker
    // that computes hang-once-stall sleeps forever; the supervisor must
    // kill it at the deadline, respawn, and resubmit (the marker makes
    // the second worker attempt succeed).
    let dir = scratch("hang_proc");
    let (out, ok) = run_selftest(
        &dir,
        items,
        &[
            ("RUNNER_BACKEND", "process"),
            ("RUNNER_THREADS", "2"),
            ("RUNNER_ITEM_TIMEOUT_MS", "250"),
            ("RUNNER_BACKOFF_BASE_MS", "10"),
            ("SELFTEST_PRINT_HEALTH", "1"),
        ],
    );
    assert!(ok, "run did not survive the hung worker");
    assert!(
        dir.join("hang-once-stall").exists(),
        "marker missing — the hang path never ran in a worker"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let (rows, health): (Vec<&str>, Vec<&str>) = out
        .lines()
        .partition(|l| !l.starts_with("health:"));
    assert_eq!(
        rows.join("\n"),
        reference.trim_end(),
        "rows must be byte-identical to the sequential backend"
    );
    let health = health.first().copied().unwrap_or_default().to_string();
    let counter = |key: &str| -> u64 {
        health
            .split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    };
    assert!(
        counter("timeouts") >= 1,
        "supervisor recorded no timeout: {health}"
    );
    assert!(
        counter("respawns") >= 1,
        "supervisor recorded no respawn: {health}"
    );
}

#[test]
fn always_hanging_item_quarantines_the_slot_deterministically() {
    // One slot (RUNNER_THREADS=1), an item that hangs in *every* worker,
    // and max_strikes=2: the supervision sequence is fully determined —
    // timeout → respawn (strike 1) → timeout → quarantine (strike 2) →
    // inline fallback computes the item — so the health line is exact,
    // with no wall-clock flakiness.
    let items = "hang-always-stuck,tail";

    let dir = scratch("quarantine_seq");
    let (reference, ok) = run_selftest(&dir, items, &[("RUNNER_BACKEND", "sequential")]);
    assert!(ok, "sequential reference run failed");
    let _ = std::fs::remove_dir_all(&dir);

    let dir = scratch("quarantine_proc");
    let (out, ok) = run_selftest(
        &dir,
        items,
        &[
            ("RUNNER_BACKEND", "process"),
            ("RUNNER_THREADS", "1"),
            ("RUNNER_ITEM_TIMEOUT_MS", "150"),
            ("RUNNER_MAX_STRIKES", "2"),
            ("RUNNER_BACKOFF_BASE_MS", "10"),
            ("SELFTEST_PRINT_HEALTH", "1"),
        ],
    );
    assert!(ok, "run did not survive quarantine");
    let _ = std::fs::remove_dir_all(&dir);

    let (rows, health): (Vec<&str>, Vec<&str>) = out
        .lines()
        .partition(|l| !l.starts_with("health:"));
    assert_eq!(
        rows.join("\n"),
        reference.trim_end(),
        "rows must be byte-identical to the sequential backend"
    );
    assert_eq!(
        health.first().copied().unwrap_or_default(),
        "health: timeouts=2 respawns=1 quarantined=1",
        "quarantine sequence must be exact:\n{out}"
    );
}
