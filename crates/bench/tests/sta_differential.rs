//! Incremental-vs-full static-timing differential over the nine paper
//! benchmarks: on every EMB-mapped MCNC machine (BRAM + aux LUTs) and on
//! a LUT-heavy FF baseline,
//!
//! 1. the timing kernel fed the *routed* wirelengths must reproduce
//!    `fpga_fabric::timing::analyze` bit for bit, and
//! 2. a seeded incremental edit campaign must stay bit-identical to a
//!    from-scratch recompute (`full_retime` reports zero drift).

use emb_fsm::baseline::ff_netlist;
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use fpga_fabric::netlist::{NetId, Netlist};
use fpga_fabric::pack::pack;
use fpga_fabric::place::{place, PlaceOptions, Placement};
use fpga_fabric::route::{route, RouteOptions};
use fpga_fabric::sta::TimingKernel;
use fpga_fabric::timing::{analyze, DelayModel};
use logic_synth::synth::{synthesize, SynthOptions};

/// Places on the smallest family member that fits (the big FF baselines
/// overflow the paper's XC2V250, exactly as in the flow).
fn place_on_family(netlist: &Netlist, packed: &fpga_fabric::pack::PackedDesign) -> Placement {
    let opts = PlaceOptions {
        seed: 1,
        effort: 1.0,
        ..PlaceOptions::default()
    };
    for device in fpga_fabric::device::FAMILY.iter().copied() {
        if let Ok(p) = place(netlist, packed, device, opts) {
            return p;
        }
    }
    panic!("{} fits no family member", netlist.name);
}

/// One netlist through both differential checks.
fn check(netlist: &Netlist) {
    let packed = pack(netlist);
    let placement = place_on_family(netlist, &packed);
    let routed = route(netlist, &packed, &placement, RouteOptions::default())
        .unwrap_or_else(|e| panic!("{} routes: {e}", netlist.name));
    let model = DelayModel::default();
    let report = analyze(netlist, &routed, &model);

    // 1. Routed wirelengths in, analyze's critical path out — exactly.
    let mut kernel = TimingKernel::new(netlist, &model)
        .unwrap_or_else(|e| panic!("{} kernel: {e}", netlist.name));
    let nets = kernel.num_nets();
    for i in 0..nets {
        let net = NetId(i as u32);
        let w = model.net_base + model.net_per_hop * routed.wirelength(net) as f64;
        kernel.set_wire_delay(net, w);
    }
    kernel.flush();
    assert_eq!(
        kernel.critical_ns().to_bits(),
        report.critical_path_ns.to_bits(),
        "kernel vs analyze on {}",
        netlist.name
    );

    // 2. Seeded incremental campaign vs from-scratch recompute.
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ nets as u64;
    for step in 0..120 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let net = NetId((state >> 33) as u32 % nets as u32);
        let hops = (state >> 17) % 40;
        kernel.set_wire_delay(net, model.net_base + model.net_per_hop * hops as f64);
        if step % 7 == 0 {
            kernel.flush();
            assert!(
                kernel.clone().full_retime(),
                "{}: incremental drifted from full recompute at step {step}",
                netlist.name
            );
        }
    }
    kernel.flush();
    let mut fresh = TimingKernel::new(netlist, &model).expect("fresh kernel");
    for i in 0..nets {
        let net = NetId(i as u32);
        fresh.set_wire_delay(net, kernel.wire_delay(net));
    }
    fresh.flush();
    assert_eq!(
        fresh.critical_ns().to_bits(),
        kernel.critical_ns().to_bits(),
        "{}: campaign end state diverged from scratch",
        netlist.name
    );
    for i in 0..nets {
        let net = NetId(i as u32);
        assert_eq!(
            fresh.arrival(net).to_bits(),
            kernel.arrival(net).to_bits(),
            "{}: arrival of net {i}",
            netlist.name
        );
        assert_eq!(
            fresh.downstream(net).to_bits(),
            kernel.downstream(net).to_bits(),
            "{}: downstream of net {i}",
            netlist.name
        );
    }
}

#[test]
fn incremental_timing_matches_full_on_all_nine_emb_benchmarks() {
    for name in paper_bench::suite_names() {
        let stg = fsm_model::benchmarks::by_name(name).expect("suite benchmark");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{name} maps: {e}"));
        check(&emb.to_netlist());
    }
}

#[test]
fn incremental_timing_matches_full_on_a_lut_heavy_ff_baseline() {
    let stg = fsm_model::benchmarks::by_name("keyb").expect("keyb");
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    check(&ff_netlist(&synth, false).0);
}
