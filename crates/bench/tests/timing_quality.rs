//! Timing-quality regression gates for the criticality-aware placer.
//!
//! The guarded two-arm selection in `place` / `place_incremental` (blind
//! wirelength-only arm vs criticality-weighted arm, winner by STA
//! estimate) makes "timing-driven is never worse than wirelength-only"
//! an exact property, not a statistical one — so the asserts here carry
//! no tolerance.
//!
//! 1. ECO: with the *same pinned base*, the gated design's estimated
//!    critical path under the default `timing_weight` must be `<=` the
//!    blind delta anneal's (`timing_weight: 0.0`) on all nine paper
//!    benchmarks.
//! 2. Flow: the plain EMB flow's `place_fmax_est_mhz` with the timing
//!    term on must be `>=` the identical flow placed wirelength-only —
//!    the exact quantity `scripts/verify.sh` gates per table3 row.

use emb_fsm::clock_control::attach_emb_clock_control;
use emb_fsm::flow::{emb_flow, FlowConfig, Stimulus};
use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
use fpga_fabric::pack::{pack, pack_partitioned};
use fpga_fabric::place::{place, place_incremental, EcoPlaceError, PinnedEntities, PlaceOptions};
use fpga_fabric::sta::estimate_critical_ns;
use fpga_fabric::timing::DelayModel;

#[test]
fn criticality_aware_eco_fmax_is_never_worse_than_blind_eco() {
    let mut improved = 0usize;
    for name in paper_bench::suite_names() {
        let stg = fsm_model::benchmarks::by_name(name).expect("suite benchmark");
        let emb_opts = EmbOptions::default();
        let emb =
            map_fsm_into_embs(&stg, &emb_opts).unwrap_or_else(|e| panic!("{name} maps: {e}"));
        let base = emb.to_netlist();
        let (gated, _control) = attach_emb_clock_control(&emb, emb_opts.lut_map)
            .unwrap_or_else(|e| panic!("{name} clock control: {e}"));
        let opts = PlaceOptions {
            seed: 1,
            effort: 2.0,
            ..PlaceOptions::default()
        };
        let base_packed = pack(&base);

        // Smallest family member where the base places AND the gated
        // delta fits — the same base placement then pins both arms.
        let mut result = None;
        'family: for device in fpga_fabric::device::FAMILY.iter().copied() {
            let Ok(base_placement) = place(&base, &base_packed, device, opts) else {
                continue;
            };
            let packed = pack_partitioned(&gated, &base_packed, base.cells().len())
                .unwrap_or_else(|e| panic!("{name}: partitioned pack: {e}"));
            let pins = PinnedEntities::pin_base(&base_placement, &packed);
            let run = |timing_weight: f64| -> Result<f64, EcoPlaceError> {
                let eco = place_incremental(
                    &gated,
                    &packed,
                    device,
                    PlaceOptions {
                        timing_weight,
                        ..opts
                    },
                    &pins,
                )?;
                Ok(
                    estimate_critical_ns(&gated, &packed, &eco.placement, &DelayModel::default())
                        .unwrap_or_else(|e| panic!("{name}: estimate: {e}")),
                )
            };
            match (run(PlaceOptions::default().timing_weight), run(0.0)) {
                (Ok(timed_ns), Ok(blind_ns)) => {
                    result = Some((timed_ns, blind_ns));
                    break 'family;
                }
                (Err(EcoPlaceError::DoesNotFit { .. }), _)
                | (_, Err(EcoPlaceError::DoesNotFit { .. })) => continue,
                (Err(e), _) | (_, Err(e)) => panic!("{name}: eco placement: {e}"),
            }
        }
        let (timed_ns, blind_ns) =
            result.unwrap_or_else(|| panic!("{name}: gated design fits no family member"));
        assert!(
            timed_ns.is_finite() && blind_ns.is_finite() && timed_ns > 0.0,
            "{name}: estimates must be finite and positive"
        );
        assert!(
            timed_ns <= blind_ns,
            "{name}: gated critical-path estimate regressed vs the blind ECO: \
             {timed_ns:.4} > {blind_ns:.4} ns"
        );
        if timed_ns < blind_ns {
            improved += 1;
        }
    }
    eprintln!("criticality-aware ECO improved the fmax estimate on {improved}/9 benchmarks");
}

#[test]
fn timing_driven_flow_estimate_is_never_worse_than_wirelength_only() {
    let mut improved = 0usize;
    for name in paper_bench::suite_names() {
        let stg = fsm_model::benchmarks::by_name(name).expect("suite benchmark");
        let cfg = FlowConfig {
            cycles: 400,
            verify_cycles: 200,
            place: PlaceOptions {
                seed: 1,
                effort: 2.0,
                ..PlaceOptions::default()
            },
            ..FlowConfig::default()
        };
        let mut cfg_wl = cfg.clone();
        cfg_wl.place.timing_weight = 0.0;
        let stim = Stimulus::IdleBiased(0.5);
        let timed = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg)
            .unwrap_or_else(|e| panic!("{name}: timed flow failed: {e}"));
        let blind = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg_wl)
            .unwrap_or_else(|e| panic!("{name}: wirelength-only flow failed: {e}"));
        assert!(
            timed.place_fmax_est_mhz.is_finite() && blind.place_fmax_est_mhz.is_finite(),
            "{name}: fmax estimates must be finite"
        );
        assert!(
            timed.place_fmax_est_mhz >= blind.place_fmax_est_mhz,
            "{name}: timing-driven fmax estimate regressed vs wirelength-only: \
             {:.4} < {:.4} MHz",
            timed.place_fmax_est_mhz,
            blind.place_fmax_est_mhz
        );
        if timed.place_fmax_est_mhz > blind.place_fmax_est_mhz {
            improved += 1;
        }
    }
    eprintln!("timing-driven placement improved the flow fmax estimate on {improved}/9 benchmarks");
}
