//! The conventional FF + LUT implementation (the paper's baseline,
//! Fig. 1a).
//!
//! Wraps the `logic-synth` FSM synthesis result into a physical netlist:
//! one flip-flop per state bit, the minimized next-state and output logic
//! as LUT cells, combinational (unregistered) Mealy outputs — the
//! structure SIS + Synplify produce in the paper's flow.

use fpga_fabric::netlist::{Cell, NetId, Netlist};
use logic_synth::synth::SynthesizedFsm;

/// Builds the FF-based netlist.
///
/// Netlist inputs: `in_0..`; outputs: `out_0..` (combinational) plus the
/// state bits `st_0..` for observability. When `clock_gated` is set, a
/// `ce` input net is created on every state FF and returned so caller-
/// supplied gating logic can drive it (the Sec. 6 comparison for the FF
/// implementation).
#[must_use]
pub fn ff_netlist(synth: &SynthesizedFsm, clock_gated: bool) -> (Netlist, Option<NetId>) {
    let s = synth.num_state_bits();
    let mut n = Netlist::new(format!("{}_ff", synth.name));
    let in_nets: Vec<NetId> = (0..synth.num_inputs)
        .map(|j| n.add_net(format!("in_{j}")))
        .collect();
    for (j, net) in in_nets.iter().enumerate() {
        n.add_input(format!("in_{j}"), *net);
    }
    let st_nets: Vec<NetId> = (0..s).map(|k| n.add_net(format!("st_{k}"))).collect();

    let ce_net = if clock_gated {
        Some(n.add_net("state_ce"))
    } else {
        None
    };

    // Combinational cone: LUT-network inputs are in_0.. then st_0..
    let lut_inputs: Vec<NetId> = in_nets.iter().chain(st_nets.iter()).copied().collect();
    let outs = crate::netlist_build::instantiate_luts(&mut n, &synth.luts, &lut_inputs, "fsm");
    // First `num_outputs` nets are the FSM outputs; the rest drive FF Ds.
    for (j, net) in outs.iter().take(synth.num_outputs).enumerate() {
        n.add_output(format!("out_{j}"), *net);
    }
    for (k, q) in st_nets.iter().enumerate() {
        let d = outs[synth.num_outputs + k];
        n.add_cell(Cell::Ff {
            d,
            q: *q,
            ce: ce_net,
            init: false, // reset code is always 0
        });
    }
    (n, ce_net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::sequence_detector_0101;
    use logic_synth::synth::{synthesize, SynthOptions};

    #[test]
    fn ff_netlist_validates_and_counts() {
        let stg = sequence_detector_0101();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        let (n, ce) = ff_netlist(&synth, false);
        assert!(ce.is_none());
        n.validate().unwrap();
        let counts = n.cell_counts();
        assert_eq!(counts.ffs, 2);
        assert!(counts.luts >= 1);
        assert_eq!(counts.brams, 0);
    }

    #[test]
    fn gated_variant_exposes_ce() {
        let stg = sequence_detector_0101();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        let (n, ce) = ff_netlist(&synth, true);
        assert!(ce.is_some());
        // CE undriven: must fail validation until the gating logic lands.
        assert!(n.validate().is_err());
    }
}
