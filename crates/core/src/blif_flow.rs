//! Implementing externally synthesized BLIF netlists.
//!
//! The paper's flow starts from SIS output; this module accepts that
//! artifact directly: a [`BlifModel`] (combinational network + latches) is
//! technology-mapped, assembled into a physical netlist, and pushed
//! through place & route, simulation and power estimation. Use it to run
//! the evaluation on *real* SIS-synthesized benchmarks instead of this
//! workspace's own synthesis.
//!
//! [`BlifModel`]: logic_synth::blif::BlifModel

use crate::flow::{
    ClockControlStats, FlowConfig, FlowError, FlowErrorKind, FlowReport, FlowStage, ImplKind,
    Stimulus,
};
use fpga_fabric::netlist::{Cell, NetId, Netlist};
use logic_synth::blif::BlifModel;
use logic_synth::decompose::decompose2;
use logic_synth::techmap::{map_luts, MapOptions};

/// Converts a BLIF model into a physical netlist: the combinational
/// network is decomposed and mapped onto LUT4s; each `.latch` becomes a
/// flip-flop.
///
/// Netlist port order matches the model's declared inputs/outputs.
///
/// # Errors
///
/// Propagates technology-mapping failures. In practice: mapping a parsed
/// BLIF only fails on LUTs wider than `k`, which decomposition prevents.
pub fn netlist_from_blif(
    model: &BlifModel,
    map: MapOptions,
) -> Result<Netlist, logic_synth::techmap::MapError> {
    let luts = map_luts(&decompose2(&model.network), map)?;
    // Network PI order: declared inputs, then latch Q signals.
    // Network PO order: declared outputs, then latch D signals.
    let mut n = Netlist::new(model.name.clone());
    let in_nets: Vec<NetId> = model
        .inputs
        .iter()
        .map(|name| n.add_net(name.clone()))
        .collect();
    for (name, net) in model.inputs.iter().zip(&in_nets) {
        n.add_input(name.clone(), *net);
    }
    let q_nets: Vec<NetId> = model
        .latches
        .iter()
        .map(|l| n.add_net(l.output.clone()))
        .collect();
    let pi_nets: Vec<NetId> = in_nets.iter().chain(q_nets.iter()).copied().collect();
    let po_nets = crate::netlist_build::instantiate_luts(&mut n, &luts, &pi_nets, "blif");
    for (name, net) in model.outputs.iter().zip(&po_nets) {
        n.add_output(name.clone(), *net);
    }
    for (k, (latch, q)) in model.latches.iter().zip(&q_nets).enumerate() {
        n.add_cell(Cell::Ff {
            d: po_nets[model.outputs.len() + k],
            q: *q,
            ce: None,
            init: latch.init,
        });
    }
    Ok(n)
}

/// Implements a BLIF model end to end (pack/place/route/simulate/power)
/// without an STG oracle — behavioural verification is the caller's
/// responsibility when no STG exists.
///
/// # Errors
///
/// See [`FlowError`].
pub fn implement_blif(
    model: &BlifModel,
    stimulus_vectors: &[Vec<bool>],
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let netlist = netlist_from_blif(model, MapOptions::default()).map_err(|e| {
        FlowError::new(
            model.name.clone(),
            FlowStage::ClockControl,
            FlowErrorKind::ClockControl(e),
        )
    })?;
    crate::flow::implement_external(
        netlist,
        ImplKind::Ff,
        None::<ClockControlStats>,
        &Stimulus::Replay(stimulus_vectors.to_vec()),
        model.inputs.len(),
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_against_stg, OutputTiming};
    use fsm_model::benchmarks::sequence_detector_0101;
    use logic_synth::synth::{synthesize, SynthOptions};
    use netsim::stimulus;

    #[test]
    fn blif_roundtrip_produces_equivalent_netlist() {
        // Synthesize, export to BLIF text, reparse, rebuild a netlist —
        // the result must still match the oracle.
        let stg = sequence_detector_0101();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        let text = logic_synth::blif::write(&synth.to_blif());
        let model = logic_synth::blif::parse(&text).unwrap();
        let netlist = netlist_from_blif(&model, MapOptions::default()).unwrap();
        netlist.validate().unwrap();
        verify_against_stg(&netlist, &stg, OutputTiming::Combinational, 500, 3).unwrap();
    }

    #[test]
    fn external_blif_implements_end_to_end() {
        let stg = fsm_model::benchmarks::by_name("donfile").unwrap();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        let text = logic_synth::blif::write(&synth.to_blif());
        let model = logic_synth::blif::parse(&text).unwrap();
        let cfg = FlowConfig {
            cycles: 300,
            verify_cycles: 100,
            ..FlowConfig::default()
        };
        let vectors = stimulus::random(model.inputs.len(), 300, 5);
        let report = implement_blif(&model, &vectors, &cfg).unwrap();
        assert!(report.area.luts > 0);
        assert!(report.power[0].total_mw() > 0.0);
        assert!(report.timing.fmax_mhz > 10.0);
    }
}
