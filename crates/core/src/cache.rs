//! Content-addressed flow-artifact cache (DESIGN.md §9.2).
//!
//! Every experiment binary walks the same nine benchmarks through the
//! same deterministic front-end (synthesize / map / verify) and the same
//! placer, so table2, table3 and the sweeps used to redo work table1 had
//! already finished. This module memoizes the two expensive artifact
//! classes behind stable content hashes:
//!
//! * **front-end netlists** — the implementation netlist a flow derives
//!   from an STG (the FF realization of the synthesized cover, the EMB
//!   mapped netlist, and their clock-controlled variants), together with
//!   the clock-control stats and synthesis-budget downgrades needed to
//!   rebuild the report. A hit skips synthesis/mapping *and* oracle
//!   verification: the artifact is addressed by every input that
//!   determines it, and it was verified by the run that produced it.
//! * **placements** — keyed by the encoded netlist bytes, the device,
//!   and the placement options, so the dominant pipeline stage runs once
//!   per distinct (netlist, device, options) triple across all binaries.
//!
//! The cache is two-level: a per-process map (so e.g. the idle sweep's
//! five stimulus levels share one placement within a run) over an
//! on-disk store under `results/cache/` (so separate binaries share
//! artifacts across processes). Artifacts are stored as self-describing
//! text records; a record that fails to decode — truncation, a version
//! bump, a hand edit — is treated as a miss and rewritten.
//!
//! **Invalidation** is by key construction, not by deletion: keys mix in
//! a format version, a per-stage algorithm version
//! ([`fpga_fabric::place::ALGORITHM_VERSION`] for placements,
//! [`FRONTEND_VERSION`] for netlists), and every option field. Changing
//! an algorithm or an option changes the key, and stale entries are
//! simply never addressed again. `results/cache/` can always be deleted
//! wholesale; nothing references it by name.
//!
//! Environment knobs:
//!
//! * `FLOW_CACHE=0` (or `off`) — bypass the cache entirely: every lookup
//!   misses without counting, nothing is stored. Flows recompute exactly
//!   as if this module did not exist.
//! * `FLOW_CACHE_DIR=<dir>` — on-disk store location (default
//!   `results/cache/` at the workspace root; relative paths resolve
//!   against the workspace root).
//! * `FLOW_CACHE_MAX_BYTES=<n>` — byte budget for the on-disk store.
//!   After every store the record files are summed; while they exceed
//!   the budget the least-recently-used record is deleted (a disk hit
//!   refreshes its record's mtime, so mtime order *is* LRU order).
//!   Deletion is one `remove_file` per record — an atomic unlink, so a
//!   concurrent reader that already opened the record keeps its bytes
//!   and a racing lookup degrades to an ordinary miss. Unset means
//!   unlimited (and hits skip the mtime refresh entirely). Eviction
//!   changes only what stays cached, never what a flow computes.
//!
//! Hit/miss counters are kept per thread (each experiment item runs
//! wholly on one runner worker) and surfaced as
//! [`CacheStats`](crate::flow::FlowReport::cache) deltas in every
//! `FlowReport`.

use crate::flow::ClockControlStats;
use fpga_fabric::device::{BramShape, Device};
use fpga_fabric::netlist::{BramWrite, Cell, NetId, Netlist};
use fpga_fabric::place::{BudgetOutcome, EcoPlacement, PlaceOptions, Placement};
use fpga_fabric::route::{NetRoute, RouteOptions, RoutedDesign};
use fsm_model::stg::Stg;
use logic_synth::synth::SynthOptions;
use std::cell::Cell as StdCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// Bump when the *meaning* of a front-end artifact changes (netlist
/// construction, verification semantics, or the record layout).
/// Version 2: rewrite verification is exhaustive (product-walk proof)
/// up to the configured input cap, with a recorded sampled fallback —
/// records from the sampling-only era must not satisfy the new check.
pub const FRONTEND_VERSION: u32 = 2;

/// Bump when [`fpga_fabric::place::place_incremental`] can produce a
/// different result for the same inputs (mixed into ECO placement keys
/// alongside [`fpga_fabric::place::ALGORITHM_VERSION`]).
pub const ECO_PLACE_VERSION: u32 = 1;

/// Bump when an overlay-base artifact's meaning changes: the base
/// netlist construction ([`crate::overlay`]), what the record carries
/// (placement + routing), or how the physical stages consume it.
pub const OVERLAY_BASE_VERSION: u32 = 1;

/// Bump when the record layout of any artifact changes.
const FORMAT_VERSION: u32 = 1;

// --- statistics -------------------------------------------------------

/// Cache hit/miss counters (a snapshot or a delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Artifact lookups answered from memory or disk.
    pub hits: u64,
    /// Artifact lookups that fell through to recomputation.
    pub misses: u64,
}

impl CacheStats {
    /// The counter movement since `earlier` (both from the same thread).
    #[must_use]
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hit(s) / {} miss(es)", self.hits, self.misses)
    }
}

thread_local! {
    static TL_HITS: StdCell<u64> = const { StdCell::new(0) };
    static TL_MISSES: StdCell<u64> = const { StdCell::new(0) };
}

/// This thread's cumulative counters. Take one at flow entry and one at
/// exit; the [`CacheStats::since`] delta is the flow's own traffic.
#[must_use]
pub fn stats_snapshot() -> CacheStats {
    CacheStats {
        hits: TL_HITS.with(StdCell::get),
        misses: TL_MISSES.with(StdCell::get),
    }
}

fn note(hit: bool) {
    if hit {
        TL_HITS.with(|c| c.set(c.get() + 1));
    } else {
        TL_MISSES.with(|c| c.set(c.get() + 1));
    }
}

// --- configuration ----------------------------------------------------

struct Config {
    enabled: bool,
    dir: Option<PathBuf>,
    /// On-disk byte budget (`FLOW_CACHE_MAX_BYTES`); `None` = unlimited.
    max_bytes: Option<u64>,
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let enabled = !matches!(
            std::env::var("FLOW_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("OFF") | Ok("false")
        );
        let max_bytes = std::env::var("FLOW_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        let dir = if enabled {
            let d = std::env::var("FLOW_CACHE_DIR").map_or_else(
                |_| workspace_root().join("results").join("cache"),
                |d| {
                    let d = PathBuf::from(d);
                    if d.is_absolute() {
                        d
                    } else {
                        workspace_root().join(d)
                    }
                },
            );
            // A store we cannot create degrades to memory-only caching.
            std::fs::create_dir_all(&d).ok().map(|()| d)
        } else {
            None
        };
        Config {
            enabled,
            dir,
            max_bytes,
        }
    })
}

/// The workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")))
}

fn memory() -> &'static Mutex<HashMap<String, Vec<u8>>> {
    static MEM: OnceLock<Mutex<HashMap<String, Vec<u8>>>> = OnceLock::new();
    MEM.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops the in-process layer (the on-disk store is untouched). Lets
/// tests and the harness benchmark distinguish cold / disk-warm /
/// memory-warm behavior inside one process.
pub fn reset_memory() {
    memory()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

// --- keys -------------------------------------------------------------

/// A finished content address: artifact kind plus 128-bit hex digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    kind: &'static str,
    digest: String,
}

impl Key {
    fn file_name(&self) -> String {
        format!("{}_{}.txt", self.kind, self.digest)
    }
}

/// Incremental content hasher: two independent FNV-1a-64 streams give a
/// 128-bit digest — collision-safe at this workload's scale without
/// pulling in a crypto dependency (the build is hermetic).
struct KeyWriter {
    kind: &'static str,
    h1: u64,
    h2: u64,
}

impl KeyWriter {
    fn new(kind: &'static str) -> Self {
        let mut w = KeyWriter {
            kind,
            h1: 0xcbf2_9ce4_8422_2325,
            h2: 0x6c62_272e_07bb_0142, // FNV-1a-128's offset, truncated
        };
        w.bytes(kind.as_bytes());
        w.u64(u64::from(FORMAT_VERSION));
        w
    }

    fn bytes(&mut self, b: &[u8]) {
        // Length-prefix every field so adjacent fields cannot alias.
        for &byte in (b.len() as u64).to_le_bytes().iter().chain(b) {
            self.h1 = (self.h1 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            self.h2 = (self.h2 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_0193);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.bytes(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> Key {
        Key {
            kind: self.kind,
            digest: format!("{:016x}{:016x}", self.h1, self.h2),
        }
    }
}

/// Stable byte serialization of an STG: everything that determines the
/// downstream artifacts, nothing that does not.
fn stg_bytes(stg: &Stg) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "stg {} {} {} {} {}\n",
        esc(stg.name()),
        stg.num_inputs(),
        stg.num_outputs(),
        stg.num_states(),
        stg.reset_state().0
    );
    for id in stg.states() {
        let _ = writeln!(s, "s {}", esc(stg.state_name(id)));
    }
    for t in stg.transitions() {
        let _ = writeln!(s, "t {} {} {} {}", t.from.0, t.input, t.to.0, t.output);
    }
    s.into_bytes()
}

fn key_synth_opts(w: &mut KeyWriter, o: SynthOptions) {
    w.str(&format!("{}", o.encoding));
    w.u64(o.map.k as u64);
    w.u64(o.map.cuts_per_node as u64);
    w.u64(o.max_minimize_cubes as u64);
}

fn key_emb_opts(w: &mut KeyWriter, o: &crate::map::EmbOptions) {
    w.str(&format!("{}", o.encoding));
    w.str(match o.output_mode {
        crate::map::OutputMode::Auto => "auto",
        crate::map::OutputMode::InMemory => "inmem",
        crate::map::OutputMode::MooreLuts => "moore",
    });
    w.u64(u64::from(o.allow_compaction));
    w.u64(u64::from(o.allow_series));
    w.u64(o.max_series_banks as u64);
    w.u64(o.lut_map.k as u64);
    w.u64(o.lut_map.cuts_per_node as u64);
}

/// Key for an FF-style front-end artifact (`kind` is `"ff"` or `"ffg"`).
#[must_use]
pub fn ff_frontend_key(
    kind_tag: &'static str,
    stg: &Stg,
    opts: SynthOptions,
    minimize_states: bool,
) -> Key {
    let mut w = KeyWriter::new(kind_tag);
    w.u64(u64::from(FRONTEND_VERSION));
    w.bytes(&stg_bytes(stg));
    key_synth_opts(&mut w, opts);
    w.u64(u64::from(minimize_states));
    w.finish()
}

/// Key for an EMB-style front-end artifact (`kind` is `"emb"` or
/// `"embcc"`).
#[must_use]
pub fn emb_frontend_key(
    kind_tag: &'static str,
    stg: &Stg,
    opts: &crate::map::EmbOptions,
    minimize_states: bool,
) -> Key {
    let mut w = KeyWriter::new(kind_tag);
    w.u64(u64::from(FRONTEND_VERSION));
    w.bytes(&stg_bytes(stg));
    key_emb_opts(&mut w, opts);
    w.u64(u64::from(minimize_states));
    w.finish()
}

/// Key for an overlay front-end artifact (`"ovl"`): the compiled FSM
/// netlist on its overlay base, with the rewrite proof recorded. The
/// overlay mapping has no tunable [`crate::map::EmbOptions`] — its
/// geometry is fully determined by the machine's port and state counts —
/// so the key is just the machine plus the planning-ladder version.
#[must_use]
pub fn overlay_frontend_key(stg: &Stg, minimize_states: bool) -> Key {
    let mut w = KeyWriter::new("ovl");
    w.u64(u64::from(FRONTEND_VERSION));
    w.u64(u64::from(OVERLAY_BASE_VERSION));
    w.bytes(&stg_bytes(stg));
    w.u64(u64::from(minimize_states));
    w.finish()
}

/// Hashes every [`PlaceOptions`] field that influences the produced
/// placement, including the timing-cost knobs and the delay model the
/// criticality term is computed against.
fn key_place_opts(w: &mut KeyWriter, opts: PlaceOptions) {
    w.u64(opts.seed);
    w.f64(opts.effort);
    w.u64(opts.max_moves);
    w.f64(opts.timing_weight);
    w.f64(opts.crit_exp);
    w.u64(u64::from(opts.retime_interval));
    let d = opts.delay;
    for v in [
        d.lut,
        d.ff_clk_to_q,
        d.ff_setup,
        d.bram_clk_to_out,
        d.bram_setup,
        d.net_base,
        d.net_per_hop,
        d.pad,
    ] {
        w.f64(v);
    }
}

/// Key for a placement of the given (already encoded) netlist.
#[must_use]
pub fn place_key(netlist_bytes: &[u8], device: &Device, opts: PlaceOptions) -> Key {
    let mut w = KeyWriter::new("place");
    w.u64(u64::from(fpga_fabric::place::ALGORITHM_VERSION));
    w.bytes(netlist_bytes);
    w.str(device.name);
    key_place_opts(&mut w, opts);
    w.finish()
}

/// Key for an incremental (ECO) placement: the gated netlist, the device,
/// the placement options, **and** the base placement's coordinate digest —
/// the ECO result depends on exactly where the pins are, so reusing a
/// cached ECO placement against a different base would silently violate
/// the pinning contract.
#[must_use]
pub fn eco_place_key(
    netlist_bytes: &[u8],
    device: &Device,
    opts: PlaceOptions,
    base_coord_digest: &str,
) -> Key {
    let mut w = KeyWriter::new("ecoplace");
    w.u64(u64::from(ECO_PLACE_VERSION));
    w.u64(u64::from(fpga_fabric::place::ALGORITHM_VERSION));
    w.bytes(netlist_bytes);
    w.str(device.name);
    key_place_opts(&mut w, opts);
    w.str(base_coord_digest);
    w.finish()
}

/// Key for an overlay base artifact: the zeroed base netlist bytes (the
/// class's content address — every member of an overlay class encodes to
/// the same bytes), the device, and every placement and routing option
/// that shapes the stored physical result. Placement and routing travel
/// together in one record: the routing is only valid for exactly that
/// placement.
#[must_use]
pub fn overlay_base_key(
    base_netlist_bytes: &[u8],
    device: &Device,
    place_opts: PlaceOptions,
    route_opts: RouteOptions,
) -> Key {
    let mut w = KeyWriter::new("ovlbase");
    w.u64(u64::from(OVERLAY_BASE_VERSION));
    w.u64(u64::from(fpga_fabric::place::ALGORITHM_VERSION));
    w.bytes(base_netlist_bytes);
    w.str(device.name);
    key_place_opts(&mut w, place_opts);
    w.u64(route_opts.tile_capacity as u64);
    w.u64(route_opts.max_rounds as u64);
    w.u64(route_opts.max_expansions);
    w.finish()
}

/// Content digest of a set of placement coordinates (CLB, BRAM and IOB
/// site lists, in entity order). Two placements agree on every entity's
/// coordinates iff their digests are equal — this is what the ECO report
/// and the `verify.sh` base-coordinate gate compare.
#[must_use]
pub fn coords_digest(
    clb: &[(usize, usize)],
    bram: &[(usize, usize)],
    iob: &[(usize, usize)],
) -> String {
    let mut w = KeyWriter::new("coords");
    for locs in [clb, bram, iob] {
        w.u64(locs.len() as u64);
        for &(x, y) in locs {
            w.u64(x as u64);
            w.u64(y as u64);
        }
    }
    w.finish().digest
}

// --- raw store --------------------------------------------------------

fn lookup_raw(key: &Key) -> Option<Vec<u8>> {
    let cfg = config();
    if !cfg.enabled {
        return None;
    }
    let name = key.file_name();
    {
        let mem = memory()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(bytes) = mem.get(&name) {
            return Some(bytes.clone());
        }
    }
    let dir = cfg.dir.as_ref()?;
    let path = dir.join(&name);
    let bytes = std::fs::read(&path).ok()?;
    // LRU touch: under a byte budget a disk hit refreshes the record's
    // mtime so eviction deletes cold records first. Without a budget the
    // refresh is skipped — the read path stays write-free.
    if cfg.max_bytes.is_some() {
        touch_record(&path);
    }
    memory()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(name, bytes.clone());
    Some(bytes)
}

/// Sets a record's mtime to now (best effort; a failure just makes the
/// record look colder to the evictor than it is).
///
/// ENOENT-safe by construction: the open is `O_APPEND` without `O_CREAT`,
/// so a record that a concurrent evictor unlinked between our read and
/// this refresh stays deleted — recreating an empty record file here
/// would poison the store for every other process sharing it.
fn touch_record(path: &std::path::Path) {
    if let Ok(f) = std::fs::File::options().append(true).open(path) {
        let _ = f.set_times(std::fs::FileTimes::new().set_modified(std::time::SystemTime::now()));
    }
}

/// One record file as seen by an eviction scan.
struct ScannedRecord {
    mtime: std::time::SystemTime,
    len: u64,
    path: PathBuf,
}

/// Snapshot of the store's record files (`*.txt` only) and their byte
/// total. Non-record files (temp files mid-publish, stray notes) are
/// never listed and therefore never deleted.
fn scan_records(dir: &std::path::Path) -> Option<(Vec<ScannedRecord>, u64)> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut records: Vec<ScannedRecord> = Vec::new();
    let mut total = 0u64;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "txt") {
            continue;
        }
        let Ok(meta) = entry.metadata() else {
            continue;
        };
        if !meta.is_file() {
            continue;
        }
        let mtime = meta
            .modified()
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        total += meta.len();
        records.push(ScannedRecord { mtime, len: meta.len(), path });
    }
    Some((records, total))
}

/// Deletes scanned records least-recently-modified first until `total`
/// fits `max_bytes`. With hits refreshing mtimes (see [`touch_record`])
/// modification order is access order, so this is LRU eviction.
///
/// The scan is only a hint: other *processes* share the store and may
/// publish, refresh, or evict between the scan and each unlink. So every
/// candidate is re-stat'ed immediately before deletion:
///
/// * gone already (a concurrent evictor won the race) — its bytes left
///   the store whoever removed them, so they count toward the budget
///   without deleting anything else in their place;
/// * refreshed since the scan (a concurrent hit) — it is now one of the
///   *hottest* records, not the coldest: skip it rather than over-evict
///   a record another process just paid to touch;
/// * unchanged — delete it (each delete is a single atomic unlink: a
///   reader that already opened the record keeps its bytes, a racing
///   lookup misses and recomputes), tolerating a lost stat→unlink race
///   the same way as "gone already".
fn evict_scanned(mut records: Vec<ScannedRecord>, mut total: u64, max_bytes: u64) {
    // Oldest first; the path tie-breaks equal mtimes deterministically.
    records.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
    for rec in records {
        if total <= max_bytes {
            break;
        }
        match std::fs::metadata(&rec.path) {
            Err(_) => {
                // Concurrently deleted: already out of the store.
                total = total.saturating_sub(rec.len);
            }
            Ok(meta) => {
                let now_mtime = meta
                    .modified()
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                if now_mtime > rec.mtime {
                    continue; // concurrently refreshed: no longer LRU
                }
                match std::fs::remove_file(&rec.path) {
                    Ok(()) => total = total.saturating_sub(meta.len()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        total = total.saturating_sub(rec.len);
                    }
                    Err(_) => {} // undeletable: keep counting it
                }
            }
        }
    }
}

/// Shrinks the on-disk store to `max_bytes` (see [`evict_scanned`]).
fn enforce_budget(dir: &std::path::Path, max_bytes: u64) {
    let Some((records, total)) = scan_records(dir) else {
        return;
    };
    if total <= max_bytes {
        return;
    }
    evict_scanned(records, total, max_bytes);
}

fn store_raw(key: &Key, bytes: Vec<u8>) {
    let cfg = config();
    if !cfg.enabled {
        return;
    }
    let name = key.file_name();
    if let Some(dir) = &cfg.dir {
        // Atomic publish: concurrent binaries may race on the same key;
        // rename makes the winner's record appear whole or not at all.
        let tmp = dir.join(format!(
            ".{name}.tmp.{}.{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        if std::fs::write(&tmp, &bytes).is_ok() && std::fs::rename(&tmp, dir.join(&name)).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        // Evict after publishing: the store may momentarily overshoot the
        // budget, but every store leaves it within budget again. The
        // fresh record has the newest mtime, so it is evicted last — and
        // even if a sub-record-sized budget deletes it, this process
        // still holds the artifact in the memory layer below.
        if let Some(max_bytes) = cfg.max_bytes {
            enforce_budget(dir, max_bytes);
        }
    }
    memory()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(name, bytes);
}

// --- escaping ---------------------------------------------------------

/// Space/control-safe token escaping for names inside records.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\_"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '_' => out.push(' '),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

// --- netlist codec ----------------------------------------------------

/// Stable, self-describing text encoding of a netlist. Also the byte
/// stream [`place_key`] hashes, so "same netlist" and "same placement
/// key" coincide by construction.
#[must_use]
pub fn encode_netlist(n: &Netlist) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "netlist {}", esc(&n.name));
    let _ = writeln!(s, "nets {}", n.num_nets());
    for i in 0..n.num_nets() {
        let _ = writeln!(s, "t {}", esc(n.net_name(NetId(i as u32))));
    }
    for (name, id) in n.inputs() {
        let _ = writeln!(s, "i {} {}", esc(name), id.0);
    }
    for (name, id) in n.outputs() {
        let _ = writeln!(s, "o {} {}", esc(name), id.0);
    }
    for cell in n.cells() {
        match cell {
            Cell::Lut {
                inputs,
                output,
                truth,
            } => {
                let _ = write!(s, "L {} {truth:x}", output.0);
                for i in inputs {
                    let _ = write!(s, " {}", i.0);
                }
                s.push('\n');
            }
            Cell::Ff { d, q, ce, init } => {
                let ce = ce.map_or_else(|| "-".to_string(), |c| c.0.to_string());
                let _ = writeln!(s, "F {} {} {ce} {}", d.0, q.0, u8::from(*init));
            }
            Cell::Const { output, value } => {
                let _ = writeln!(s, "C {} {}", output.0, u8::from(*value));
            }
            Cell::Bram {
                shape,
                addr,
                dout,
                en,
                init,
                output_init,
                write,
            } => {
                let en = en.map_or_else(|| "-".to_string(), |c| c.0.to_string());
                let _ = write!(
                    s,
                    "B {} {} {en} {output_init:x} a{}",
                    shape.addr_bits,
                    shape.data_bits,
                    addr.len()
                );
                for a in addr {
                    let _ = write!(s, " {}", a.0);
                }
                let _ = write!(s, " d{}", dout.len());
                for d in dout {
                    let _ = write!(s, " {}", d.0);
                }
                let _ = write!(s, " m{}", init.len());
                for word in init {
                    let _ = write!(s, " {word:x}");
                }
                if let Some(w) = write {
                    let _ = write!(s, " W{}", w.addr.len());
                    for a in &w.addr {
                        let _ = write!(s, " {}", a.0);
                    }
                    let _ = write!(s, " D{}", w.data.len());
                    for d in &w.data {
                        let _ = write!(s, " {}", d.0);
                    }
                    let _ = write!(s, " {}", w.we.0);
                }
                s.push('\n');
            }
        }
    }
    s.into_bytes()
}

/// Rebuilds a netlist from [`encode_netlist`] bytes; `None` on any
/// malformation (the caller treats that as a cache miss).
#[must_use]
pub fn decode_netlist(bytes: &[u8]) -> Option<Netlist> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    let name = unesc(lines.next()?.strip_prefix("netlist ")?)?;
    let num_nets: usize = lines.next()?.strip_prefix("nets ")?.parse().ok()?;
    let mut n = Netlist::new(name);
    let mut expect_net = 0usize;
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "t" => {
                n.add_net(unesc(rest)?);
                expect_net += 1;
            }
            "i" => {
                let (name, id) = rest.split_once(' ')?;
                n.add_input(unesc(name)?, NetId(id.parse().ok()?));
            }
            "o" => {
                let (name, id) = rest.split_once(' ')?;
                n.add_output(unesc(name)?, NetId(id.parse().ok()?));
            }
            "L" => {
                let mut it = rest.split(' ');
                let output = NetId(it.next()?.parse().ok()?);
                let truth = u64::from_str_radix(it.next()?, 16).ok()?;
                let inputs = it
                    .map(|t| t.parse().ok().map(NetId))
                    .collect::<Option<Vec<_>>>()?;
                n.add_cell(Cell::Lut {
                    inputs,
                    output,
                    truth,
                });
            }
            "F" => {
                let mut it = rest.split(' ');
                let d = NetId(it.next()?.parse().ok()?);
                let q = NetId(it.next()?.parse().ok()?);
                let ce = match it.next()? {
                    "-" => None,
                    v => Some(NetId(v.parse().ok()?)),
                };
                let init = it.next()? == "1";
                n.add_cell(Cell::Ff { d, q, ce, init });
            }
            "C" => {
                let (output, value) = rest.split_once(' ')?;
                n.add_cell(Cell::Const {
                    output: NetId(output.parse().ok()?),
                    value: value == "1",
                });
            }
            "B" => {
                let mut it = rest.split(' ');
                let addr_bits: usize = it.next()?.parse().ok()?;
                let data_bits: usize = it.next()?.parse().ok()?;
                let shape = BramShape::ALL
                    .into_iter()
                    .find(|s| s.addr_bits == addr_bits && s.data_bits == data_bits)?;
                let en = match it.next()? {
                    "-" => None,
                    v => Some(NetId(v.parse().ok()?)),
                };
                let output_init = u64::from_str_radix(it.next()?, 16).ok()?;
                let na: usize = it.next()?.strip_prefix('a')?.parse().ok()?;
                let addr = (0..na)
                    .map(|_| it.next().and_then(|t| t.parse().ok()).map(NetId))
                    .collect::<Option<Vec<_>>>()?;
                let nd: usize = it.next()?.strip_prefix('d')?.parse().ok()?;
                let dout = (0..nd)
                    .map(|_| it.next().and_then(|t| t.parse().ok()).map(NetId))
                    .collect::<Option<Vec<_>>>()?;
                let nm: usize = it.next()?.strip_prefix('m')?.parse().ok()?;
                let init = (0..nm)
                    .map(|_| it.next().and_then(|t| u64::from_str_radix(t, 16).ok()))
                    .collect::<Option<Vec<_>>>()?;
                let write = match it.next() {
                    None => None,
                    Some(wa) => {
                        let nwa: usize = wa.strip_prefix('W')?.parse().ok()?;
                        let waddr = (0..nwa)
                            .map(|_| it.next().and_then(|t| t.parse().ok()).map(NetId))
                            .collect::<Option<Vec<_>>>()?;
                        let nwd: usize = it.next()?.strip_prefix('D')?.parse().ok()?;
                        let wdata = (0..nwd)
                            .map(|_| it.next().and_then(|t| t.parse().ok()).map(NetId))
                            .collect::<Option<Vec<_>>>()?;
                        let we = NetId(it.next()?.parse().ok()?);
                        Some(BramWrite {
                            addr: waddr,
                            data: wdata,
                            we,
                        })
                    }
                };
                n.add_cell(Cell::Bram {
                    shape,
                    addr,
                    dout,
                    en,
                    init,
                    output_init,
                    write,
                });
            }
            _ => return None,
        }
    }
    (expect_net == num_nets).then_some(n)
}

// --- front-end artifacts ----------------------------------------------

/// A cached flow front-end: the implementation netlist plus the metadata
/// [`crate::flow`] needs to rebuild an identical report.
#[derive(Debug)]
pub struct Frontend {
    /// The verified implementation netlist.
    pub netlist: Netlist,
    /// Clock-control overhead, for the gated/controlled variants.
    pub clock_control: Option<ClockControlStats>,
    /// `Downgrade::SynthBudgetExhausted` payload, when synthesis overran.
    pub synth_skipped_functions: Option<usize>,
    /// When the producing run could only *sample* rewrite verification
    /// (inputs too wide for the exhaustive proof), the machine's input
    /// count — replayed as a `Downgrade::VerifySampled` on every hit.
    /// `None` means the artifact was proven exhaustively (or predates
    /// the rewrite path, e.g. FF front-ends).
    pub verify_sampled_inputs: Option<usize>,
}

/// Encodes a front-end record (also usable as placement key material via
/// its embedded netlist — but callers hash [`encode_netlist`] directly).
#[must_use]
pub fn encode_frontend(
    netlist: &Netlist,
    clock_control: Option<ClockControlStats>,
    synth_skipped_functions: Option<usize>,
    verify_sampled_inputs: Option<usize>,
) -> Vec<u8> {
    let mut s = String::from("frontend 1\n");
    if let Some(cc) = clock_control {
        s.push_str(&format!("cc {} {} {}\n", cc.luts, cc.slices, cc.idle_cubes));
    }
    if let Some(k) = synth_skipped_functions {
        s.push_str(&format!("skipped {k}\n"));
    }
    if let Some(n) = verify_sampled_inputs {
        s.push_str(&format!("sampled {n}\n"));
    }
    let mut bytes = s.into_bytes();
    bytes.extend_from_slice(&encode_netlist(netlist));
    bytes
}

fn decode_frontend(bytes: &[u8]) -> Option<Frontend> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut clock_control = None;
    let mut skipped = None;
    let mut sampled = None;
    let mut offset = 0usize;
    for line in text.lines() {
        if line.starts_with("netlist ") {
            break;
        }
        offset += line.len() + 1;
        if line == "frontend 1" {
            continue;
        } else if let Some(rest) = line.strip_prefix("cc ") {
            let mut it = rest.split(' ');
            clock_control = Some(ClockControlStats {
                luts: it.next()?.parse().ok()?,
                slices: it.next()?.parse().ok()?,
                idle_cubes: it.next()?.parse().ok()?,
            });
        } else if let Some(rest) = line.strip_prefix("skipped ") {
            skipped = Some(rest.parse().ok()?);
        } else if let Some(rest) = line.strip_prefix("sampled ") {
            sampled = Some(rest.parse().ok()?);
        } else {
            return None;
        }
    }
    let netlist = decode_netlist(&bytes[offset..])?;
    Some(Frontend {
        netlist,
        clock_control,
        synth_skipped_functions: skipped,
        verify_sampled_inputs: sampled,
    })
}

/// Looks up a front-end artifact, counting a hit or miss.
#[must_use]
pub fn load_frontend(key: &Key) -> Option<Frontend> {
    if !config().enabled {
        return None;
    }
    let found = lookup_raw(key).and_then(|b| decode_frontend(&b));
    note(found.is_some());
    found
}

/// Publishes a front-end artifact (no-op under `FLOW_CACHE=0`).
pub fn store_frontend(
    key: &Key,
    netlist: &Netlist,
    clock_control: Option<ClockControlStats>,
    synth_skipped_functions: Option<usize>,
    verify_sampled_inputs: Option<usize>,
) {
    store_raw(
        key,
        encode_frontend(
            netlist,
            clock_control,
            synth_skipped_functions,
            verify_sampled_inputs,
        ),
    );
}

// --- placement artifacts ----------------------------------------------

fn encode_placement(p: &Placement) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "placement 1 {}", p.device.name);
    let _ = writeln!(s, "hpwl {:x} {:x}", p.hpwl.to_bits(), p.hpwl_sq.to_bits());
    let _ = writeln!(s, "moves {}", p.moves);
    match p.budget {
        BudgetOutcome::Completed => {
            let _ = writeln!(s, "budget completed");
        }
        BudgetOutcome::Exhausted { spent } => {
            let _ = writeln!(s, "budget exhausted {spent}");
        }
    }
    for (tag, locs) in [
        ("clb", &p.clb_loc),
        ("bram", &p.bram_loc),
        ("iob", &p.iob_loc),
    ] {
        let _ = write!(s, "{tag} {}", locs.len());
        for (x, y) in locs {
            let _ = write!(s, " {x} {y}");
        }
        s.push('\n');
    }
    s.into_bytes()
}

fn decode_placement(bytes: &[u8]) -> Option<Placement> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    let device = Device::by_name(lines.next()?.strip_prefix("placement 1 ")?)?;
    let (h, hs) = lines.next()?.strip_prefix("hpwl ")?.split_once(' ')?;
    let hpwl = f64::from_bits(u64::from_str_radix(h, 16).ok()?);
    let hpwl_sq = f64::from_bits(u64::from_str_radix(hs, 16).ok()?);
    let moves: u64 = lines.next()?.strip_prefix("moves ")?.parse().ok()?;
    let budget = match lines.next()?.strip_prefix("budget ")? {
        "completed" => BudgetOutcome::Completed,
        other => BudgetOutcome::Exhausted {
            spent: other.strip_prefix("exhausted ")?.parse().ok()?,
        },
    };
    let mut read_locs = |tag: &str| -> Option<Vec<(usize, usize)>> {
        let line = lines.next()?;
        let rest = line.strip_prefix(tag)?.strip_prefix(' ')?;
        let mut it = rest.split(' ');
        let count: usize = it.next()?.parse().ok()?;
        (0..count)
            .map(|_| {
                let x = it.next()?.parse().ok()?;
                let y = it.next()?.parse().ok()?;
                Some((x, y))
            })
            .collect()
    };
    Some(Placement {
        device,
        clb_loc: read_locs("clb")?,
        bram_loc: read_locs("bram")?,
        iob_loc: read_locs("iob")?,
        hpwl,
        hpwl_sq,
        moves,
        budget,
    })
}

/// Looks up a placement artifact, counting a hit or miss.
#[must_use]
pub fn load_placement(key: &Key) -> Option<Placement> {
    if !config().enabled {
        return None;
    }
    let found = lookup_raw(key).and_then(|b| decode_placement(&b));
    note(found.is_some());
    found
}

/// Publishes a placement artifact (no-op under `FLOW_CACHE=0`).
pub fn store_placement(key: &Key, placement: &Placement) {
    store_raw(key, encode_placement(placement));
}

// --- ECO placement artifacts ------------------------------------------

fn encode_eco_placement(p: &EcoPlacement) -> Vec<u8> {
    let mut bytes = format!(
        "ecoplace 1 {} {} {:x}\n",
        p.pinned_entities,
        p.delta_entities,
        p.delta_hpwl.to_bits()
    )
    .into_bytes();
    bytes.extend_from_slice(&encode_placement(&p.placement));
    bytes
}

fn decode_eco_placement(bytes: &[u8]) -> Option<EcoPlacement> {
    let text = std::str::from_utf8(bytes).ok()?;
    let header = text.lines().next()?;
    let rest = header.strip_prefix("ecoplace 1 ")?;
    let mut it = rest.split(' ');
    let pinned_entities: usize = it.next()?.parse().ok()?;
    let delta_entities: usize = it.next()?.parse().ok()?;
    let delta_hpwl = f64::from_bits(u64::from_str_radix(it.next()?, 16).ok()?);
    let placement = decode_placement(&bytes[header.len() + 1..])?;
    Some(EcoPlacement {
        placement,
        pinned_entities,
        delta_entities,
        delta_hpwl,
    })
}

/// Looks up an ECO placement artifact, counting a hit or miss.
#[must_use]
pub fn load_eco_placement(key: &Key) -> Option<EcoPlacement> {
    if !config().enabled {
        return None;
    }
    let found = lookup_raw(key).and_then(|b| decode_eco_placement(&b));
    note(found.is_some());
    found
}

/// Publishes an ECO placement artifact (no-op under `FLOW_CACHE=0`).
pub fn store_eco_placement(key: &Key, placement: &EcoPlacement) {
    store_raw(key, encode_eco_placement(placement));
}

// --- overlay base artifacts -------------------------------------------

/// A cached overlay base: the one-time physical design of an overlay
/// class's zeroed netlist. The placement and routing stay valid for
/// every member of the class — content rewrites change no structure —
/// so a hit skips place *and* route for the per-FSM compile.
#[derive(Debug, Clone)]
pub struct OverlayBase {
    /// The base placement (carries the device and the budget outcome,
    /// replayed as downgrades on every hit).
    pub placement: Placement,
    /// The base routing for exactly that placement.
    pub routed: RoutedDesign,
}

fn encode_overlay_base(b: &OverlayBase) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "ovlbase 1 {} {} {}",
        b.routed.total_wirelength,
        b.routed.peak_usage,
        b.routed.routes.len()
    );
    for route in &b.routed.routes {
        match route {
            None => s.push_str("r -\n"),
            Some(r) => {
                let _ = write!(s, "r {} {} {}", r.wirelength, r.switches, r.tiles.len());
                for (x, y) in &r.tiles {
                    let _ = write!(s, " {x} {y}");
                }
                s.push('\n');
            }
        }
    }
    let mut bytes = s.into_bytes();
    bytes.extend_from_slice(&encode_placement(&b.placement));
    bytes
}

fn decode_overlay_base(bytes: &[u8]) -> Option<OverlayBase> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut it = header.strip_prefix("ovlbase 1 ")?.split(' ');
    let total_wirelength: usize = it.next()?.parse().ok()?;
    let peak_usage: usize = it.next()?.parse().ok()?;
    let num_routes: usize = it.next()?.parse().ok()?;
    let mut offset = header.len() + 1;
    let mut routes = Vec::with_capacity(num_routes);
    for _ in 0..num_routes {
        let line = lines.next()?;
        offset += line.len() + 1;
        let rest = line.strip_prefix("r ")?;
        if rest == "-" {
            routes.push(None);
            continue;
        }
        let mut it = rest.split(' ');
        let wirelength: usize = it.next()?.parse().ok()?;
        let switches: usize = it.next()?.parse().ok()?;
        let ntiles: usize = it.next()?.parse().ok()?;
        let tiles = (0..ntiles)
            .map(|_| {
                let x = it.next()?.parse().ok()?;
                let y = it.next()?.parse().ok()?;
                Some((x, y))
            })
            .collect::<Option<Vec<_>>>()?;
        routes.push(Some(NetRoute {
            tiles,
            wirelength,
            switches,
        }));
    }
    let placement = decode_placement(&bytes[offset..])?;
    Some(OverlayBase {
        placement,
        routed: RoutedDesign {
            routes,
            total_wirelength,
            peak_usage,
        },
    })
}

/// Looks up an overlay base artifact, counting a hit or miss.
#[must_use]
pub fn load_overlay_base(key: &Key) -> Option<OverlayBase> {
    if !config().enabled {
        return None;
    }
    let found = lookup_raw(key).and_then(|b| decode_overlay_base(&b));
    note(found.is_some());
    found
}

/// Publishes an overlay base artifact (no-op under `FLOW_CACHE=0`).
pub fn store_overlay_base(key: &Key, base: &OverlayBase) {
    store_raw(key, encode_overlay_base(base));
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::sequence_detector_0101;

    #[test]
    fn netlist_roundtrips_through_codec() {
        let stg = sequence_detector_0101();
        let emb = crate::map::map_fsm_into_embs(&stg, &crate::map::EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        let bytes = encode_netlist(&n);
        let back = decode_netlist(&bytes).unwrap();
        assert_eq!(n.name, back.name);
        assert_eq!(n.num_nets(), back.num_nets());
        assert_eq!(n.cells(), back.cells());
        assert_eq!(n.inputs(), back.inputs());
        assert_eq!(n.outputs(), back.outputs());
        // Encoding is stable: same netlist, same bytes, same key.
        assert_eq!(bytes, encode_netlist(&back));
    }

    #[test]
    fn frontend_record_roundtrips() {
        let stg = sequence_detector_0101();
        let emb = crate::map::map_fsm_into_embs(&stg, &crate::map::EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        let cc = ClockControlStats {
            luts: 3,
            slices: 2,
            idle_cubes: 5,
        };
        let rec = encode_frontend(&n, Some(cc), Some(7), None);
        let back = decode_frontend(&rec).unwrap();
        assert_eq!(back.clock_control, Some(cc));
        assert_eq!(back.synth_skipped_functions, Some(7));
        assert_eq!(back.netlist.cells(), n.cells());
        let plain = decode_frontend(&encode_frontend(&n, None, None, None)).unwrap();
        assert_eq!(plain.clock_control, None);
        assert_eq!(plain.synth_skipped_functions, None);
        assert!(decode_frontend(b"garbage").is_none());
    }

    #[test]
    fn keys_separate_kinds_options_and_machines() {
        let a = sequence_detector_0101();
        let b = fsm_model::benchmarks::traffic_light();
        let k1 = ff_frontend_key("ff", &a, SynthOptions::default(), false);
        let k2 = ff_frontend_key("ffg", &a, SynthOptions::default(), false);
        let k3 = ff_frontend_key("ff", &b, SynthOptions::default(), false);
        let k4 = ff_frontend_key("ff", &a, SynthOptions::default(), true);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
        assert_eq!(
            k1,
            ff_frontend_key("ff", &a, SynthOptions::default(), false)
        );
        let e1 = emb_frontend_key("emb", &a, &crate::map::EmbOptions::default(), false);
        let e2 = emb_frontend_key(
            "emb",
            &a,
            &crate::map::EmbOptions {
                allow_compaction: false,
                ..crate::map::EmbOptions::default()
            },
            false,
        );
        assert_ne!(e1, e2);
    }

    #[test]
    fn frontend_sampled_flag_roundtrips() {
        let stg = sequence_detector_0101();
        let emb = crate::map::map_fsm_into_embs(&stg, &crate::map::EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        let rec = encode_frontend(&n, None, None, Some(21));
        let back = decode_frontend(&rec).unwrap();
        assert_eq!(back.verify_sampled_inputs, Some(21));
        let proven = decode_frontend(&encode_frontend(&n, None, None, None)).unwrap();
        assert_eq!(proven.verify_sampled_inputs, None);
    }

    #[test]
    fn eco_placement_record_roundtrips() {
        let device = Device::xc2v250();
        let placement = Placement {
            device,
            clb_loc: vec![(1, 2), (3, 4)],
            bram_loc: vec![(0, 5)],
            iob_loc: vec![(0, 0), (0, 1), (0, 2)],
            hpwl: 12.5,
            hpwl_sq: 80.25,
            moves: 321,
            budget: BudgetOutcome::Completed,
        };
        let eco = EcoPlacement {
            placement,
            pinned_entities: 4,
            delta_entities: 2,
            delta_hpwl: 3.5,
        };
        let back = decode_eco_placement(&encode_eco_placement(&eco)).unwrap();
        assert_eq!(back.pinned_entities, 4);
        assert_eq!(back.delta_entities, 2);
        assert_eq!(back.delta_hpwl, 3.5);
        assert_eq!(back.placement.clb_loc, eco.placement.clb_loc);
        assert_eq!(back.placement.iob_loc, eco.placement.iob_loc);
        assert!(decode_eco_placement(b"nonsense").is_none());
    }

    #[test]
    fn eco_keys_depend_on_the_base_digest() {
        let device = Device::xc2v250();
        let bytes = b"netlist-bytes";
        let d1 = coords_digest(&[(1, 2)], &[], &[(0, 0)]);
        let d2 = coords_digest(&[(1, 3)], &[], &[(0, 0)]);
        assert_ne!(d1, d2, "different coordinates, different digest");
        assert_eq!(d1, coords_digest(&[(1, 2)], &[], &[(0, 0)]));
        // Kind boundaries cannot alias: a CLB at (1,2) is not a BRAM there.
        assert_ne!(
            coords_digest(&[(1, 2)], &[], &[]),
            coords_digest(&[], &[(1, 2)], &[])
        );
        let k1 = eco_place_key(bytes, &device, PlaceOptions::default(), &d1);
        let k2 = eco_place_key(bytes, &device, PlaceOptions::default(), &d2);
        assert_ne!(k1, k2, "a different base placement must miss");
        assert_eq!(
            k1,
            eco_place_key(bytes, &device, PlaceOptions::default(), &d1)
        );
        assert_ne!(k1, place_key(bytes, &device, PlaceOptions::default()));
    }

    #[test]
    fn overlay_base_record_roundtrips() {
        let device = Device::xc2v250();
        let placement = Placement {
            device,
            clb_loc: vec![(2, 3)],
            bram_loc: vec![(0, 1), (0, 2)],
            iob_loc: vec![(4, 0)],
            hpwl: 9.5,
            hpwl_sq: 40.25,
            moves: 77,
            budget: BudgetOutcome::Exhausted { spent: 50 },
        };
        let base = OverlayBase {
            placement,
            routed: RoutedDesign {
                routes: vec![
                    None,
                    Some(NetRoute {
                        tiles: vec![(1, 1), (1, 2), (2, 2)],
                        wirelength: 2,
                        switches: 3,
                    }),
                    None,
                ],
                total_wirelength: 2,
                peak_usage: 4,
            },
        };
        let back = decode_overlay_base(&encode_overlay_base(&base)).unwrap();
        assert_eq!(back.routed.total_wirelength, 2);
        assert_eq!(back.routed.peak_usage, 4);
        assert_eq!(back.routed.routes.len(), 3);
        assert!(back.routed.routes[0].is_none());
        let r = back.routed.routes[1].as_ref().unwrap();
        assert_eq!(r.tiles, vec![(1, 1), (1, 2), (2, 2)]);
        assert_eq!(r.wirelength, 2);
        assert_eq!(r.switches, 3);
        assert_eq!(back.placement.bram_loc, base.placement.bram_loc);
        assert!(matches!(
            back.placement.budget,
            BudgetOutcome::Exhausted { spent: 50 }
        ));
        assert!(decode_overlay_base(b"nonsense").is_none());
    }

    #[test]
    fn overlay_base_keys_depend_on_route_options() {
        let device = Device::xc2v250();
        let bytes = b"base-netlist-bytes";
        let k1 = overlay_base_key(bytes, &device, PlaceOptions::default(), RouteOptions::default());
        let k2 = overlay_base_key(
            bytes,
            &device,
            PlaceOptions::default(),
            RouteOptions {
                max_expansions: 1234,
                ..RouteOptions::default()
            },
        );
        assert_ne!(k1, k2, "route budget must be keyed");
        let k3 = overlay_base_key(
            b"other-base",
            &device,
            PlaceOptions::default(),
            RouteOptions::default(),
        );
        assert_ne!(k1, k3, "base netlist bytes must be keyed");
        assert_eq!(
            k1,
            overlay_base_key(bytes, &device, PlaceOptions::default(), RouteOptions::default())
        );
        assert_ne!(k1, place_key(bytes, &device, PlaceOptions::default()));
    }

    #[test]
    fn place_keys_depend_on_the_timing_knobs() {
        let device = Device::xc2v250();
        let bytes = b"netlist-bytes";
        let base = place_key(bytes, &device, PlaceOptions::default());
        let weightless = place_key(
            bytes,
            &device,
            PlaceOptions {
                timing_weight: 0.0,
                ..PlaceOptions::default()
            },
        );
        assert_ne!(base, weightless, "timing weight must be keyed");
        let sharper = place_key(
            bytes,
            &device,
            PlaceOptions {
                crit_exp: 1.0,
                ..PlaceOptions::default()
            },
        );
        assert_ne!(base, sharper, "criticality exponent must be keyed");
        let slow_luts = place_key(
            bytes,
            &device,
            PlaceOptions {
                delay: fpga_fabric::timing::DelayModel {
                    lut: 9.9,
                    ..fpga_fabric::timing::DelayModel::default()
                },
                ..PlaceOptions::default()
            },
        );
        assert_ne!(base, slow_luts, "the delay model must be keyed");
        assert_eq!(base, place_key(bytes, &device, PlaceOptions::default()));
    }

    /// Writes a 100-byte record with a deterministic mtime `secs` past a
    /// fixed epoch offset, so LRU order is under the test's control.
    fn record_with_age(dir: &std::path::Path, name: &str, secs: u64) {
        let path = dir.join(format!("place_{name}.txt"));
        std::fs::write(&path, vec![b'x'; 100]).unwrap();
        let t = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000 + secs);
        let f = std::fs::File::options().append(true).open(&path).unwrap();
        f.set_times(std::fs::FileTimes::new().set_modified(t))
            .unwrap();
    }

    #[test]
    fn eviction_deletes_least_recently_used_first() {
        let dir = std::env::temp_dir().join(format!("romfsm-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        record_with_age(&dir, "old", 0);
        record_with_age(&dir, "mid", 100);
        record_with_age(&dir, "new", 200);
        std::fs::write(dir.join("notes.md"), b"keep").unwrap();

        // 300 bytes of records fit a 300-byte budget: nothing deleted.
        enforce_budget(&dir, 300);
        assert!(dir.join("place_old.txt").exists());
        assert!(dir.join("place_mid.txt").exists());
        assert!(dir.join("place_new.txt").exists());

        // A 250-byte budget deletes exactly the least-recently-used one.
        enforce_budget(&dir, 250);
        assert!(!dir.join("place_old.txt").exists(), "LRU record survived");
        assert!(dir.join("place_mid.txt").exists());
        assert!(dir.join("place_new.txt").exists());
        assert!(dir.join("notes.md").exists(), "non-record file deleted");

        // A refreshed mtime protects an otherwise-cold record: after
        // touching `mid`, a one-record budget keeps it and evicts `new`.
        touch_record(&dir.join("place_mid.txt"));
        enforce_budget(&dir, 100);
        assert!(dir.join("place_mid.txt").exists(), "touched record evicted");
        assert!(!dir.join("place_new.txt").exists());

        // Zero budget clears every record, and only records.
        enforce_budget(&dir, 0);
        assert!(!dir.join("place_mid.txt").exists());
        assert!(dir.join("notes.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_tolerates_concurrent_deletion_without_over_evicting() {
        // A concurrent process unlinking a record between the scan and the
        // delete loop must count toward the budget: the pre-fix code kept
        // the stale total and deleted the *next* record too (over-evict).
        let dir = std::env::temp_dir().join(format!(
            "romfsm-cache-race-del-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        record_with_age(&dir, "old", 0);
        record_with_age(&dir, "mid", 100);
        record_with_age(&dir, "new", 200);
        let (records, total) = scan_records(&dir).unwrap();
        assert_eq!(total, 300);
        // "Another process" evicts `old` after our scan.
        std::fs::remove_file(dir.join("place_old.txt")).unwrap();
        // Budget 250: deleting old alone suffices — and old is already
        // gone, so nothing else may be deleted in its place.
        evict_scanned(records, total, 250);
        assert!(
            dir.join("place_mid.txt").exists(),
            "over-evicted mid after a concurrent delete of old"
        );
        assert!(dir.join("place_new.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_skips_records_refreshed_after_the_scan() {
        // A concurrent hit refreshing a record's mtime between scan and
        // unlink promotes it out of LRU position: the evictor must re-stat
        // and skip it instead of deleting a record another process just
        // touched.
        let dir = std::env::temp_dir().join(format!(
            "romfsm-cache-race-touch-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        record_with_age(&dir, "old", 0);
        record_with_age(&dir, "mid", 100);
        record_with_age(&dir, "new", 200);
        let (records, total) = scan_records(&dir).unwrap();
        // "Another process" hits `old` after our scan.
        touch_record(&dir.join("place_old.txt"));
        evict_scanned(records, total, 250);
        assert!(
            dir.join("place_old.txt").exists(),
            "evicted a record a concurrent hit had refreshed"
        );
        // The budget is still enforced against the next-coldest record.
        assert!(!dir.join("place_mid.txt").exists());
        assert!(dir.join("place_new.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn touch_is_enoent_safe_and_never_recreates_a_record() {
        let dir = std::env::temp_dir().join(format!(
            "romfsm-cache-touch-enoent-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let gone = dir.join("place_evicted.txt");
        touch_record(&gone); // no panic...
        assert!(!gone.exists(), "touch recreated an evicted record");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_survives_a_missing_store() {
        // A store directory that vanished (or never existed) is a no-op,
        // not a panic.
        enforce_budget(std::path::Path::new("/nonexistent/romfsm-cache"), 10);
    }

    #[test]
    fn escaping_roundtrips() {
        for s in [
            "plain",
            "with space",
            "tab\tand\nnewline",
            "back\\slash",
            "",
        ] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
    }
}
