//! Clock control: stopping the BRAM during idle states (Sec. 6).
//!
//! From the STG, the idle `(state, input)` pairs — self-loops whose output
//! equals the output already latched — are extracted and an **enable
//! function** is synthesized into LUTs. The function drives the BRAM's
//! `EN` port, so the memory "is not clocked" during idle cycles; "unlike
//! the gated clock techniques, this method does not require any external
//! clock gating and thus is glitch free".
//!
//! Cone selection follows the paper: a Moore machine's enable logic reads
//! the state bits and inputs; a Mealy machine's must also read the FSM
//! outputs, "because in a Mealy machine there can be conditions when the
//! state does not change but outputs may change". Concretely we include
//! the output literals whenever the outputs are *latched in the memory*;
//! when they are regenerated from the state by LUTs (Fig. 3) they are a
//! pure function of state and the state/input cone is exact.
//!
//! The same enable function can gate the FF implementation's CE pins
//! ([`attach_ff_clock_gating`]) — but there the combinational cone keeps
//! toggling, which is exactly the asymmetry the paper points out.

use crate::map::{EmbFsm, OutputRealization};
use fpga_fabric::netlist::{Cell, NetId, Netlist};
use fsm_model::encoding::StateEncoding;
use fsm_model::stg::Stg;
use logic_synth::cover::Cover;
use logic_synth::cube::Cube;
use logic_synth::decompose::decompose2;
use logic_synth::espresso;
use logic_synth::network::Network;
use logic_synth::techmap::{map_luts, LutNetwork, MapError, MapOptions};

/// The synthesized enable (clock-control) logic.
#[derive(Debug, Clone)]
pub struct ClockControl {
    /// LUT realization of the *idle* function (the enable is its
    /// complement, realized by one inverting LUT at attachment time).
    /// Inputs: `in_0..`, `st_0..` and, when
    /// [`uses_outputs`](Self::uses_outputs), `out_0..`. One output: idle.
    pub luts: LutNetwork,
    /// Whether the cone includes the latched FSM outputs (Mealy case).
    pub uses_outputs: bool,
    /// Number of idle cubes found in the STG.
    pub idle_cubes: usize,
}

impl ClockControl {
    /// LUT count including the final inverter — the paper's Table 4
    /// "area overhead" metric.
    #[must_use]
    pub fn num_luts(&self) -> usize {
        self.luts.num_luts() + 1
    }

    /// Slice estimate (two LUTs per slice).
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.num_luts().div_ceil(2)
    }
}

/// Synthesizes the enable function for `stg`.
///
/// `include_outputs` adds the latched-output literals to idle conditions
/// (required when outputs are stored in memory; see module docs).
///
/// # Errors
///
/// Propagates technology-mapping failures.
pub fn synthesize_enable(
    stg: &Stg,
    encoding: &StateEncoding,
    include_outputs: bool,
    map: MapOptions,
) -> Result<ClockControl, MapError> {
    let num_inputs = stg.num_inputs();
    let s = encoding.num_bits();
    let num_outputs = if include_outputs {
        stg.num_outputs()
    } else {
        0
    };
    let num_vars = num_inputs + s + num_outputs;

    // For Moore machines the latched outputs are a function of the state
    // except for one transient: right after configuration the reset state
    // holds all-zero outputs instead of its Moore output. A single
    // "witness" literal (any 1-bit of the reset state's Moore output) on
    // the reset state's idle cubes distinguishes the two, so the full
    // output literal set — which the paper reserves for Mealy machines —
    // is not needed.
    let moore = if include_outputs {
        fsm_model::machine::moore_outputs(stg)
    } else {
        None
    };
    let reset = stg.reset_state();
    let reset_witness: Option<usize> = moore
        .as_ref()
        .and_then(|mo| mo[reset.index()].iter().position(|&b| b));

    // Idle onset: self-loops (optionally) qualified by held outputs.
    let mut idle = Cover::empty(num_vars);
    for t in stg.transitions() {
        if t.from != t.to {
            continue;
        }
        let mut cube = Cube::full(num_vars);
        for (col, trit) in t.input.trits().iter().enumerate() {
            if let Some(v) = trit.value() {
                cube = cube.with_literal(col, v);
            }
        }
        let code = encoding.code(t.from);
        for b in 0..s {
            cube = cube.with_literal(num_inputs + b, code >> b & 1 == 1);
        }
        if include_outputs {
            if moore.is_some() {
                // Moore: outputs are implied by the state, except the
                // reset transient handled by the witness literal.
                if t.from == reset {
                    if let Some(j) = reset_witness {
                        cube = cube.with_literal(num_inputs + s + j, true);
                    }
                }
            } else {
                for (j, bit) in t.output.resolve_zero().into_iter().enumerate() {
                    cube = cube.with_literal(num_inputs + s + j, bit);
                }
            }
        }
        idle.push(cube);
    }
    let idle_cubes = idle.len();

    // Minimize the idle function itself (the enable is its complement,
    // realized by a final inverting LUT — complementing the cover
    // directly can blow up for wide Mealy cones).
    let mut dcset = Cover::empty(num_vars);
    let used: std::collections::HashSet<u64> = stg.states().map(|st| encoding.code(st)).collect();
    for code in 0..1u64 << s {
        if !used.contains(&code) {
            let mut cube = Cube::full(num_vars);
            for b in 0..s {
                cube = cube.with_literal(num_inputs + b, code >> b & 1 == 1);
            }
            dcset.push(cube);
        }
    }
    let minimized = espresso::minimize(&idle, &dcset).cover;

    // Build the LUT network.
    let mut network = Network::new();
    let mut ids = Vec::with_capacity(num_vars);
    for j in 0..num_inputs {
        ids.push(network.add_input(format!("in_{j}")));
    }
    for k in 0..s {
        ids.push(network.add_input(format!("st_{k}")));
    }
    for j in 0..num_outputs {
        ids.push(network.add_input(format!("out_{j}")));
    }
    let node = if minimized.is_empty() {
        network.add_constant(false)
    } else if minimized.cubes().iter().any(|c| c.num_literals() == 0) {
        network.add_constant(true)
    } else {
        // Restrict to support.
        let mut mask = 0u64;
        for c in minimized.cubes() {
            mask |= c.mask();
        }
        let support: Vec<usize> = (0..num_vars).filter(|v| mask >> v & 1 == 1).collect();
        let mut local = Cover::empty(support.len());
        for c in minimized.cubes() {
            let mut cube = Cube::full(support.len());
            for (nv, &ov) in support.iter().enumerate() {
                if let Some(pol) = c.literal(ov) {
                    cube = cube.with_literal(nv, pol);
                }
            }
            local.push(cube);
        }
        let fanins: Vec<_> = support.iter().map(|&v| ids[v]).collect();
        network
            .add_logic(fanins, local)
            .expect("support-restricted cover is consistent")
    };
    network.add_output("idle", node).expect("node exists");

    Ok(ClockControl {
        luts: map_luts(&decompose2(&network), map)?,
        uses_outputs: include_outputs,
        idle_cubes,
    })
}

/// Builds the clock-controlled EMB netlist: the mapping of `emb` with its
/// BRAM `EN` pins driven by the synthesized enable logic.
///
/// Returns the netlist and the control logic (for area reporting).
///
/// # Errors
///
/// Propagates technology-mapping failures.
pub fn attach_emb_clock_control(
    emb: &EmbFsm,
    map: MapOptions,
) -> Result<(Netlist, ClockControl), MapError> {
    let include_outputs = matches!(emb.outputs, OutputRealization::InMemory);
    let control = synthesize_enable(&emb.stg, &emb.encoding, include_outputs, map)?;
    let (mut netlist, en_net) = emb.to_netlist_with_enable(true);
    let en_net = en_net.expect("enable requested");

    // Gather the cone's input nets by port name.
    let cone_nets = control_cone_nets(&netlist, &emb.stg, emb.num_state_bits(), include_outputs);
    let outs =
        crate::netlist_build::instantiate_luts(&mut netlist, &control.luts, &cone_nets, "cc");
    // EN = NOT idle, realized by the final inverting LUT.
    netlist.add_cell(Cell::Lut {
        inputs: vec![outs[0]],
        output: en_net,
        truth: 0b01,
    });
    Ok((netlist, control))
}

/// Builds the clock-gated FF netlist: the baseline with its state-FF CE
/// pins driven by the same style of enable logic. As the paper notes, the
/// combinational cone still toggles — only the FF clock loads are saved —
/// so this variant saves far less than the EMB version.
///
/// # Errors
///
/// Propagates technology-mapping failures.
pub fn attach_ff_clock_gating(
    synth: &logic_synth::synth::SynthesizedFsm,
    stg: &Stg,
    map: MapOptions,
) -> Result<(Netlist, ClockControl), MapError> {
    // FF outputs are combinational, so holding the state alone is exact:
    // the state/input cone suffices (outputs recompute from inputs).
    let control = synthesize_enable(stg, &synth.encoding, false, map)?;
    let (mut netlist, ce_net) = crate::baseline::ff_netlist(synth, true);
    let ce_net = ce_net.expect("gating requested");
    let cone_nets = control_cone_nets(&netlist, stg, synth.num_state_bits(), false);
    let outs =
        crate::netlist_build::instantiate_luts(&mut netlist, &control.luts, &cone_nets, "cc");
    // CE = NOT idle.
    netlist.add_cell(Cell::Lut {
        inputs: vec![outs[0]],
        output: ce_net,
        truth: 0b01,
    });
    Ok((netlist, control))
}

/// Looks up the nets feeding the control cone: `in_*`, `st_*` and
/// optionally `out_*` ports of the FSM netlist.
fn control_cone_nets(
    netlist: &Netlist,
    stg: &Stg,
    state_bits: usize,
    include_outputs: bool,
) -> Vec<NetId> {
    let find_in = |name: &str| -> NetId {
        netlist
            .inputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, net)| *net)
            .unwrap_or_else(|| panic!("missing input port {name}"))
    };
    let find_net = |name: &str| -> NetId {
        netlist
            .find_net(name)
            .unwrap_or_else(|| panic!("missing net {name}"))
    };
    let find_out = |name: &str| -> NetId {
        netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, net)| *net)
            .unwrap_or_else(|| panic!("missing output port {name}"))
    };
    let mut nets = Vec::new();
    for j in 0..stg.num_inputs() {
        nets.push(find_in(&format!("in_{j}")));
    }
    for k in 0..state_bits {
        nets.push(find_net(&format!("st_{k}")));
    }
    if include_outputs {
        for j in 0..stg.num_outputs() {
            nets.push(find_out(&format!("out_{j}")));
        }
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_fsm_into_embs, EmbOptions, OutputMode};
    use crate::verify::{verify_against_stg, OutputTiming};
    use fsm_model::benchmarks::{rotary_sequencer, sequence_detector_0101, traffic_light};
    use logic_synth::synth::{synthesize, SynthOptions};
    use netsim::engine::Simulator;

    #[test]
    fn clock_controlled_emb_is_cycle_exact() {
        for stg in [
            traffic_light(),
            rotary_sequencer(),
            sequence_detector_0101(),
        ] {
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let (n, cc) = attach_emb_clock_control(&emb, MapOptions::default()).unwrap();
            assert!(cc.num_luts() >= 1, "{}", stg.name());
            verify_against_stg(&n, &stg, OutputTiming::Registered, 1000, 50)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn clock_controlled_moore_lut_variant_is_cycle_exact() {
        let stg = traffic_light();
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        let (n, cc) = attach_emb_clock_control(&emb, MapOptions::default()).unwrap();
        assert!(!cc.uses_outputs, "LUT outputs need no output literals");
        verify_against_stg(&n, &stg, OutputTiming::Registered, 1000, 51).unwrap();
    }

    #[test]
    fn gating_actually_disables_the_bram_when_idle() {
        // Rotary sequencer halts on input 1: long idle stretch.
        let stg = rotary_sequencer();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let (n, _) = attach_emb_clock_control(&emb, MapOptions::default()).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        // Step twice, then halt for 20 cycles.
        sim.clock(&[false]);
        sim.clock(&[false]);
        for _ in 0..20 {
            sim.clock(&[true]);
        }
        let act = sim.activity();
        // The BRAM must have been disabled for ~the halt duration. The
        // first halt cycle still clocks (the output updates to the hold
        // value on entry), afterwards it idles.
        assert!(
            act.bram_active_cycles[0] <= 4,
            "bram active {} of {} cycles",
            act.bram_active_cycles[0],
            act.cycles
        );
    }

    #[test]
    fn ff_gating_is_cycle_exact_and_freezes_state_ffs() {
        let stg = rotary_sequencer();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        let (n, cc) = attach_ff_clock_gating(&synth, &stg, MapOptions::default()).unwrap();
        assert!(!cc.uses_outputs);
        verify_against_stg(&n, &stg, OutputTiming::Combinational, 800, 52).unwrap();

        let mut sim = Simulator::new(&n).unwrap();
        sim.clock(&[false]);
        for _ in 0..10 {
            sim.clock(&[true]);
        }
        let act = sim.activity();
        // State FFs enabled only while not halted.
        for k in 0..act.ff_active_cycles.len() {
            assert!(
                act.ff_active_cycles[k] <= 2,
                "ff {k} active {} cycles",
                act.ff_active_cycles[k]
            );
        }
    }

    #[test]
    fn enable_cone_matches_machine_kind() {
        let mealy = sequence_detector_0101();
        let emb = map_fsm_into_embs(&mealy, &EmbOptions::default()).unwrap();
        let (_, cc) = attach_emb_clock_control(&emb, MapOptions::default()).unwrap();
        assert!(cc.uses_outputs, "Mealy in-memory outputs join the cone");
        assert!(cc.idle_cubes > 0);
    }

    #[test]
    fn machine_without_self_loops_is_always_enabled() {
        let mut b = fsm_model::stg::StgBuilder::new("noloop", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "-", c, "1");
        b.transition(c, "-", a, "0");
        let stg = b.build().unwrap();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let (n, cc) = attach_emb_clock_control(&emb, MapOptions::default()).unwrap();
        assert_eq!(cc.idle_cubes, 0);
        verify_against_stg(&n, &stg, OutputTiming::Registered, 200, 53).unwrap();
        let mut sim = Simulator::new(&n).unwrap();
        for _ in 0..10 {
            sim.clock(&[true]);
        }
        assert_eq!(sim.activity().bram_active_cycles[0], 10);
    }
}
