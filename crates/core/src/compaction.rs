//! Column compaction and the state-controlled input multiplexer (Fig. 4).
//!
//! When `I + s` exceeds the address lines of every BRAM aspect ratio, the
//! paper removes per-state don't-care input columns: each state reads only
//! its *support* columns, so a machine whose largest per-state support is
//! `i < I` can address the memory with `i` compacted input bits selected
//! by a state-controlled multiplexer (Fig. 5 lines 11–14).
//!
//! The multiplexer itself is synthesized as LUT logic over the state bits
//! and raw inputs; its area and power are charged to the EMB
//! implementation, exactly as the paper's Table 1 "LUT" column does.

use fsm_model::analysis::state_input_support;
use fsm_model::encoding::StateEncoding;
use fsm_model::stg::{StateId, Stg};
use logic_synth::cover::Cover;
use logic_synth::cube::Cube;
use logic_synth::decompose::decompose2;
use logic_synth::espresso;
use logic_synth::network::Network;
use logic_synth::techmap::{map_luts, LutNetwork, MapError, MapOptions};

/// The per-state input-column selection of a compacted mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPlan {
    /// Compacted input width `i` (max per-state support).
    pub width: usize,
    /// `sel[state][k]` = the raw input column feeding compacted bit `k`
    /// while in `state`, or `None` when the state reads fewer than `width`
    /// columns (the mux then feeds a constant 0).
    pub sel: Vec<Vec<Option<usize>>>,
}

impl CompactionPlan {
    /// Builds the plan: each state's sorted support columns, padded with
    /// `None`.
    #[must_use]
    pub fn build(stg: &Stg) -> Self {
        let supports: Vec<Vec<usize>> = stg
            .states()
            .map(|s| state_input_support(stg, s).into_iter().collect())
            .collect();
        let width = supports.iter().map(Vec::len).max().unwrap_or(0);
        let sel = supports
            .into_iter()
            .map(|cols| {
                let mut row: Vec<Option<usize>> = cols.into_iter().map(Some).collect();
                row.resize(width, None);
                row
            })
            .collect();
        CompactionPlan { width, sel }
    }

    /// Reconstructs the raw input vector a compacted assignment denotes for
    /// `state` (unselected columns read 0 — the machine ignores them by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `compacted` has fewer than `width` bits.
    #[must_use]
    pub fn expand_inputs(
        &self,
        state: StateId,
        compacted: &[bool],
        num_inputs: usize,
    ) -> Vec<bool> {
        assert!(compacted.len() >= self.width, "compacted vector too short");
        let mut inputs = vec![false; num_inputs];
        for (k, sel) in self.sel[state.index()].iter().enumerate() {
            if let Some(col) = sel {
                inputs[*col] = compacted[k];
            }
        }
        inputs
    }

    /// Projects a raw input vector down to the compacted bits for `state`.
    #[must_use]
    pub fn compact_inputs(&self, state: StateId, inputs: &[bool]) -> Vec<bool> {
        self.sel[state.index()]
            .iter()
            .map(|sel| sel.map(|col| inputs[col]).unwrap_or(false))
            .collect()
    }
}

/// Synthesizes the input multiplexer as a LUT network.
///
/// Network primary inputs: `in_0..in_{I-1}`, then `st_0..st_{s-1}`;
/// outputs: `cmp_0..cmp_{width-1}` (the compacted address bits).
///
/// Two realizations are built and the smaller one (by LUT count) is
/// kept:
///
/// * a flat SOP — each compacted bit is the OR over states of
///   `(state == code) AND input[sel(state, k)]`, espresso-minimized with
///   the unused state codes as don't-cares;
/// * a hash-consed 2:1 **mux tree** over the state bits, which exploits
///   states selecting the same column and collapses constant subtrees —
///   usually far smaller for many-state machines.
///
/// # Errors
///
/// Propagates technology-mapping failures.
pub fn mux_network(
    stg: &Stg,
    encoding: &StateEncoding,
    plan: &CompactionPlan,
    map: MapOptions,
) -> Result<LutNetwork, MapError> {
    let sop = mux_network_sop(stg, encoding, plan, map)?;
    let tree = mux_network_tree(stg, encoding, plan, map)?;
    Ok(if tree.num_luts() <= sop.num_luts() {
        tree
    } else {
        sop
    })
}

/// The flat-SOP realization (see [`mux_network`]).
fn mux_network_sop(
    stg: &Stg,
    encoding: &StateEncoding,
    plan: &CompactionPlan,
    map: MapOptions,
) -> Result<LutNetwork, MapError> {
    let num_inputs = stg.num_inputs();
    let s = encoding.num_bits();
    let num_vars = num_inputs + s;

    // Don't-care set: unused state codes.
    let mut dcset = Cover::empty(num_vars);
    let used: std::collections::HashSet<u64> = stg.states().map(|st| encoding.code(st)).collect();
    for code in 0..1u64 << s {
        if !used.contains(&code) {
            let mut cube = Cube::full(num_vars);
            for b in 0..s {
                cube = cube.with_literal(num_inputs + b, code >> b & 1 == 1);
            }
            dcset.push(cube);
        }
    }

    let mut network = Network::new();
    let in_ids: Vec<_> = (0..num_inputs)
        .map(|j| network.add_input(format!("in_{j}")))
        .collect();
    let st_ids: Vec<_> = (0..s)
        .map(|k| network.add_input(format!("st_{k}")))
        .collect();
    let all_ids: Vec<_> = in_ids.iter().chain(st_ids.iter()).copied().collect();

    for k in 0..plan.width {
        let mut onset = Cover::empty(num_vars);
        for st in stg.states() {
            let Some(col) = plan.sel[st.index()][k] else {
                continue;
            };
            let code = encoding.code(st);
            let mut cube = Cube::full(num_vars).with_literal(col, true);
            for b in 0..s {
                cube = cube.with_literal(num_inputs + b, code >> b & 1 == 1);
            }
            onset.push(cube);
        }
        let minimized = espresso::minimize(&onset, &dcset).cover;
        let node = if minimized.is_empty() {
            network.add_constant(false)
        } else if minimized.cubes().iter().any(|c| c.num_literals() == 0) {
            network.add_constant(true)
        } else {
            // Restrict to support.
            let mut mask = 0u64;
            for c in minimized.cubes() {
                mask |= c.mask();
            }
            let support: Vec<usize> = (0..num_vars).filter(|v| mask >> v & 1 == 1).collect();
            let mut local = Cover::empty(support.len());
            for c in minimized.cubes() {
                let mut cube = Cube::full(support.len());
                for (nv, &ov) in support.iter().enumerate() {
                    if let Some(pol) = c.literal(ov) {
                        cube = cube.with_literal(nv, pol);
                    }
                }
                local.push(cube);
            }
            let fanins: Vec<_> = support.iter().map(|&v| all_ids[v]).collect();
            network
                .add_logic(fanins, local)
                .expect("support-restricted cover is consistent")
        };
        network
            .add_output(format!("cmp_{k}"), node)
            .expect("node exists");
    }

    map_luts(&decompose2(&network), map)
}

/// The hash-consed mux-tree realization (see [`mux_network`]).
///
/// For each compacted bit, a binary decision tree over the state bits
/// selects the state's input column; identical subtrees are shared across
/// levels *and* across compacted bits, and subtrees whose leaves agree
/// collapse to their common source.
fn mux_network_tree(
    stg: &Stg,
    encoding: &StateEncoding,
    plan: &CompactionPlan,
    map: MapOptions,
) -> Result<LutNetwork, MapError> {
    use logic_synth::network::NodeId;

    let num_inputs = stg.num_inputs();
    let s = encoding.num_bits();
    let mut network = Network::new();
    let in_ids: Vec<NodeId> = (0..num_inputs)
        .map(|j| network.add_input(format!("in_{j}")))
        .collect();
    let st_ids: Vec<NodeId> = (0..s)
        .map(|k| network.add_input(format!("st_{k}")))
        .collect();
    let zero = network.add_constant(false);

    // Source node per (code, compacted bit): the selected input column.
    // Invalid codes and padded selections read constant 0.
    let mut source = vec![vec![zero; plan.width]; 1 << s];
    for st in stg.states() {
        let code = encoding.code(st) as usize;
        for (k, sel) in plan.sel[st.index()].iter().enumerate() {
            if let Some(col) = sel {
                source[code][k] = in_ids[*col];
            }
        }
    }

    // mux(a, b, sel) with structural hashing; vars [a, b, sel].
    let mux_cover = Cover::from_cubes(
        3,
        vec![
            Cube::from_pattern(&"1-0".parse().expect("valid")),
            Cube::from_pattern(&"-11".parse().expect("valid")),
        ],
    );
    let mut consed: std::collections::HashMap<(NodeId, NodeId, NodeId), NodeId> =
        std::collections::HashMap::new();

    #[allow(clippy::needless_range_loop)]
    for k in 0..plan.width {
        // Reduce over state bits, LSB (st_0) at the innermost level.
        let mut level: Vec<NodeId> = (0..1usize << s).map(|c| source[c][k]).collect();
        for (bit, sel) in st_ids.iter().copied().enumerate().take(s) {
            let _ = bit;
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                let (a, b) = (pair[0], pair[1]);
                let node = if a == b {
                    a
                } else {
                    *consed.entry((a, b, sel)).or_insert_with(|| {
                        network
                            .add_logic(vec![a, b, sel], mux_cover.clone())
                            .expect("mux over existing nodes")
                    })
                };
                next.push(node);
            }
            level = next;
        }
        network
            .add_output(format!("cmp_{k}"), level[0])
            .expect("node exists");
    }
    map_luts(&decompose2(&network), map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::encoding::EncodingStyle;
    use fsm_model::stg::StgBuilder;

    /// 4-state machine where each state reads a different single input of 4.
    fn per_state_inputs() -> Stg {
        let mut b = StgBuilder::new("psi", 4, 1);
        let s0 = b.state("S0");
        let s1 = b.state("S1");
        let s2 = b.state("S2");
        let s3 = b.state("S3");
        b.transition(s0, "1---", s1, "0");
        b.transition(s0, "0---", s0, "0");
        b.transition(s1, "-1--", s2, "0");
        b.transition(s1, "-0--", s1, "0");
        b.transition(s2, "--1-", s3, "1");
        b.transition(s2, "--0-", s2, "0");
        b.transition(s3, "---1", s0, "0");
        b.transition(s3, "---0", s3, "1");
        b.build().unwrap()
    }

    #[test]
    fn plan_width_is_max_support() {
        let stg = per_state_inputs();
        let plan = CompactionPlan::build(&stg);
        assert_eq!(plan.width, 1);
        assert_eq!(plan.sel[0], vec![Some(0)]);
        assert_eq!(plan.sel[2], vec![Some(2)]);
    }

    #[test]
    fn expand_and_compact_are_consistent() {
        let stg = per_state_inputs();
        let plan = CompactionPlan::build(&stg);
        for st in stg.states() {
            for a in [false, true] {
                let raw = plan.expand_inputs(st, &[a], 4);
                let back = plan.compact_inputs(st, &raw);
                assert_eq!(back, vec![a]);
            }
        }
    }

    #[test]
    fn mux_selects_right_column_per_state() {
        let stg = per_state_inputs();
        let enc = StateEncoding::assign(&stg, EncodingStyle::Binary);
        let plan = CompactionPlan::build(&stg);
        let mux = mux_network(&stg, &enc, &plan, MapOptions::default()).unwrap();
        assert_eq!(mux.inputs.len(), 4 + 2);
        assert_eq!(mux.outputs.len(), 1);
        // For each state and each raw input vector, the mux output must
        // equal the state's selected column.
        for st in stg.states() {
            let code = enc.code(st);
            for raw in 0..16u64 {
                let mut pins: Vec<bool> = (0..4).map(|i| raw >> i & 1 == 1).collect();
                pins.extend((0..2).map(|b| code >> b & 1 == 1));
                let got = mux.eval(&pins);
                let want = plan.compact_inputs(st, &pins[..4]);
                assert_eq!(got, want, "state {st} raw {raw:04b}");
            }
        }
    }

    #[test]
    fn mux_handles_padded_states() {
        // One state reads two inputs, another reads none.
        let mut b = StgBuilder::new("pad", 3, 1);
        let s0 = b.state("A");
        let s1 = b.state("B");
        b.transition(s0, "1-1", s1, "1");
        b.transition(s0, "0-1", s0, "0");
        b.transition(s0, "--0", s0, "0");
        b.transition(s1, "---", s0, "0");
        let stg = b.build().unwrap();
        let plan = CompactionPlan::build(&stg);
        assert_eq!(plan.width, 2);
        assert_eq!(plan.sel[1], vec![None, None]);
        let enc = StateEncoding::assign(&stg, EncodingStyle::Binary);
        let mux = mux_network(&stg, &enc, &plan, MapOptions::default()).unwrap();
        // In state B the mux must output constant 0s.
        let code = enc.code(fsm_model::stg::StateId(1));
        for raw in 0..8u64 {
            let mut pins: Vec<bool> = (0..3).map(|i| raw >> i & 1 == 1).collect();
            pins.push(code & 1 == 1);
            let got = mux.eval(&pins);
            assert_eq!(got, vec![false, false], "raw {raw:03b}");
        }
    }
}
