//! Memory-content generation.
//!
//! "The memory contents are programmed with next state address location
//! which is formed in conjunction with the inputs to the FSM" (Sec. 1).
//! This module computes the logical ROM of a mapping and renders it both
//! as a human-readable memory map (the paper's Fig. 2 table) and as
//! Xilinx-style `INIT_xx` attribute strings — the equivalent of the
//! authors' "C program to automatically generate the VHDL initialization
//! string for these blockrams" (Sec. 5).

use crate::map::AddressPlan;
use fpga_fabric::device::BramShape;
use fsm_model::encoding::StateEncoding;
use fsm_model::pattern::index_to_bits;
use fsm_model::stg::{StateId, Stg};

/// Computes the logical ROM of a mapping.
///
/// Address layout: input bits (raw or compacted) on the low lines, state
/// bits above them. Word layout: next-state code on the low bits, then
/// `outputs_in_word` output bits.
///
/// Addresses whose state field is not a valid code hold 0 (they are
/// unreachable: state bits only ever carry valid codes).
#[must_use]
pub fn logical_rom(
    stg: &Stg,
    encoding: &StateEncoding,
    address: &AddressPlan,
    outputs_in_word: usize,
) -> Vec<u64> {
    let s = encoding.num_bits();
    let input_bits = address.input_bits(stg.num_inputs());
    let mut rom = vec![0u64; 1 << (input_bits + s)];
    for st in stg.states() {
        let code = encoding.code(st);
        for a in 0..1u64 << input_bits {
            let inputs = match address {
                AddressPlan::Direct => index_to_bits(a, stg.num_inputs()),
                AddressPlan::Compacted(plan) => {
                    plan.expand_inputs(st, &index_to_bits(a, input_bits), stg.num_inputs())
                }
            };
            let (next, outs) = stg.step(st, &inputs);
            let mut word = encoding.code(next);
            if outputs_in_word > 0 {
                for (j, bit) in outs.iter().take(outputs_in_word).enumerate() {
                    if *bit {
                        word |= 1 << (s + j);
                    }
                }
            }
            let addr = a | code << input_bits;
            rom[addr as usize] = word;
        }
    }
    rom
}

/// Renders a logical ROM as a memory-map table in the style of the
/// paper's Fig. 2 (one row per address, binary fields).
#[must_use]
pub fn memory_map_table(
    stg: &Stg,
    encoding: &StateEncoding,
    rom: &[u64],
    input_bits: usize,
    outputs_in_word: usize,
) -> String {
    use std::fmt::Write as _;
    let s = encoding.num_bits();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>width$}  {:<8} {:<10} {:<8} {}",
        "address",
        "state",
        "next",
        "ns bits",
        if outputs_in_word > 0 { "outputs" } else { "" },
        width = input_bits + s + 2
    );
    for (addr, word) in rom.iter().enumerate() {
        let code = (addr >> input_bits) as u64;
        let state = encoding.decode(code);
        let next_code = word & ((1 << s) - 1);
        let next = encoding.decode(next_code);
        let addr_str: String = (0..input_bits + s)
            .rev()
            .map(|b| if addr >> b & 1 == 1 { '1' } else { '0' })
            .collect();
        let ns_str: String = (0..s)
            .rev()
            .map(|b| if next_code >> b & 1 == 1 { '1' } else { '0' })
            .collect();
        let outs: String = (0..outputs_in_word)
            .rev()
            .map(|j| if word >> (s + j) & 1 == 1 { '1' } else { '0' })
            .collect();
        let _ = writeln!(
            out,
            "{:>width$}  {:<8} {:<10} {:<8} {}",
            addr_str,
            state.map_or("-", |st| stg.state_name(st)),
            next.map_or("-", |st| stg.state_name(st)),
            ns_str,
            outs,
            width = input_bits + s + 2
        );
    }
    out
}

/// Renders the physical init of one BRAM slice as Xilinx `INIT_xx`
/// attribute strings: 64 lines of 256 bits each for an 18-Kbit BRAM
/// (data bits only, parity handled as ordinary data).
///
/// `words` are `shape.depth()` entries of `shape.data_bits` each, packed
/// LSB-first into the bit stream exactly as ISE's bitgen does.
#[must_use]
pub fn init_strings(shape: BramShape, words: &[u64]) -> Vec<String> {
    // Total data bits (16384 for x1..x4; 18432 for the x9/x18/x36 family).
    let total_bits = shape.depth() * shape.data_bits;
    let mut bits = vec![false; total_bits];
    for (a, w) in words.iter().enumerate() {
        for b in 0..shape.data_bits {
            bits[a * shape.data_bits + b] = w >> b & 1 == 1;
        }
    }
    let lines = total_bits.div_ceil(256);
    (0..lines)
        .map(|line| {
            let mut hex = String::with_capacity(64 + 12);
            use std::fmt::Write as _;
            let _ = write!(hex, "INIT_{line:02X} => X\"");
            // 256 bits = 64 nibbles, most significant first.
            for nib in (0..64).rev() {
                let mut v = 0u8;
                for k in 0..4 {
                    let idx = line * 256 + nib * 4 + k;
                    if idx < total_bits && bits[idx] {
                        v |= 1 << k;
                    }
                }
                let _ = write!(hex, "{v:X}");
            }
            hex.push('"');
            hex
        })
        .collect()
}

/// Convenience: the state a ROM word transitions to, for reporting.
#[must_use]
pub fn word_next_state(encoding: &StateEncoding, word: u64) -> Option<StateId> {
    let s = encoding.num_bits();
    encoding.decode(word & ((1u64 << s) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_fsm_into_embs, EmbOptions};
    use fsm_model::benchmarks::sequence_detector_0101;

    #[test]
    fn rom_matches_step_semantics() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let s = emb.num_state_bits();
        for st in stg.states() {
            let code = emb.encoding.code(st);
            for input in [false, true] {
                let (next, outs) = stg.step(st, &[input]);
                let addr = u64::from(input) | code << 1;
                let word = emb.rom[addr as usize];
                assert_eq!(
                    word & ((1 << s) - 1),
                    emb.encoding.code(next),
                    "state {st} input {input}"
                );
                assert_eq!(word >> s & 1 == 1, outs[0]);
            }
        }
    }

    #[test]
    fn memory_map_is_readable() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let table = memory_map_table(&stg, &emb.encoding, &emb.rom, 1, 1);
        assert!(table.contains('A'));
        assert!(table.lines().count() >= 9, "{table}");
    }

    #[test]
    fn init_strings_shape() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut words = vec![0u64; 512];
        words[0] = 0xF; // low nibble of the stream
        let lines = init_strings(shape, &words);
        // 512*36 = 18432 bits = 72 lines of 256 bits.
        assert_eq!(lines.len(), 72);
        assert!(lines[0].starts_with("INIT_00 => X\""));
        assert!(lines[0].ends_with("F\""), "word 0 occupies the low nibble");
        // Every line is 64 hex digits.
        for l in &lines {
            let hex = l.split('"').nth(1).unwrap();
            assert_eq!(hex.len(), 64);
        }
    }

    #[test]
    fn init_strings_roundtrip_bits() {
        let shape = BramShape {
            addr_bits: 14,
            data_bits: 1,
        };
        let mut words = vec![0u64; 16384];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::from(i % 7 == 0);
        }
        let lines = init_strings(shape, &words);
        assert_eq!(lines.len(), 64);
        // Decode line 0, bit 0 (LSB of last hex digit) = word 0.
        let hex0 = lines[0].split('"').nth(1).unwrap();
        let last = hex0.chars().last().unwrap().to_digit(16).unwrap();
        assert_eq!(last & 1, 1, "word 0 is set");
    }
}
