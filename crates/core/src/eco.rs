//! Engineering-change-order (ECO) support: rewriting memory contents.
//!
//! One of the paper's selling points (Sec. 4.2): "the functionality of an
//! EMB-based FSM can be changed by changing the contents of the EMB …
//! much faster than going through the complete synthesis and placement
//! and routing process". [`rewrite`] recomputes the ROM for a modified
//! STG under the *existing* mapping decisions, and
//! [`apply_to_netlist`](EcoRewrite::apply_to_netlist) patches only the
//! BRAM `init` fields of an already placed-and-routed netlist.

use crate::map::{AddressPlan, EmbFsm, OutputRealization};
use crate::{compaction::CompactionPlan, contents};
use fpga_fabric::netlist::{Cell, Netlist};
use fsm_model::analysis::state_input_support;
use fsm_model::stg::Stg;
use std::fmt;

/// Errors from an ECO attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoError {
    /// The new machine's interface differs (inputs/outputs).
    InterfaceChanged,
    /// The new machine has more states than the encoding can host.
    TooManyStates {
        /// States in the new machine.
        new_states: usize,
        /// Codes available under the existing encoding width.
        capacity: usize,
    },
    /// A state now reads an input column outside its frozen mux selection
    /// (compacted mappings only).
    SupportEscapesMux {
        /// The state index.
        state: usize,
    },
    /// The existing mapping realizes outputs in LUTs; those are part of
    /// the placed logic and cannot be changed by a content rewrite.
    LutOutputsFrozen,
    /// The netlist does not look like it was produced by this mapping.
    NetlistMismatch(String),
    /// ECO requires the reset state to be state 0 in both machines so the
    /// frozen code assignment lines up.
    ResetNotStateZero,
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::InterfaceChanged => write!(f, "input/output widths changed"),
            EcoError::TooManyStates {
                new_states,
                capacity,
            } => {
                write!(
                    f,
                    "{new_states} states exceed the {capacity} available codes"
                )
            }
            EcoError::SupportEscapesMux { state } => write!(
                f,
                "state {state} now reads inputs outside its frozen mux selection"
            ),
            EcoError::LutOutputsFrozen => {
                write!(
                    f,
                    "LUT-realized outputs cannot be changed by rewriting memory"
                )
            }
            EcoError::NetlistMismatch(m) => write!(f, "netlist mismatch: {m}"),
            EcoError::ResetNotStateZero => {
                write!(f, "reset must be state 0 in both machines for an ECO")
            }
        }
    }
}

impl std::error::Error for EcoError {}

/// A computed content rewrite.
#[derive(Debug, Clone)]
pub struct EcoRewrite {
    /// The updated mapping (same physical decisions, new ROM).
    pub emb: EmbFsm,
    /// Number of logical words whose content changed.
    pub words_changed: usize,
}

/// Recomputes the ROM of `emb` for `new_stg`, keeping every physical
/// decision (encoding width, shape, compaction selections, bank/parallel
/// structure) frozen.
///
/// The new machine may rename or rewire states freely as long as it fits
/// the frozen resources; state *i* of the new machine takes code *i*'s
/// slot (the new reset state must therefore be state 0, matching the
/// cleared-latch convention).
///
/// # Errors
///
/// See [`EcoError`].
pub fn rewrite(emb: &EmbFsm, new_stg: &Stg) -> Result<EcoRewrite, EcoError> {
    if new_stg.num_inputs() != emb.stg.num_inputs()
        || new_stg.num_outputs() != emb.stg.num_outputs()
    {
        return Err(EcoError::InterfaceChanged);
    }
    if matches!(emb.outputs, OutputRealization::Luts(_)) {
        return Err(EcoError::LutOutputsFrozen);
    }
    if new_stg.reset_state().index() != 0 || emb.stg.reset_state().index() != 0 {
        return Err(EcoError::ResetNotStateZero);
    }
    let capacity = 1usize << emb.num_state_bits();
    if new_stg.num_states() > capacity {
        return Err(EcoError::TooManyStates {
            new_states: new_stg.num_states(),
            capacity,
        });
    }
    // Compaction: the frozen mux only routes each state's old columns.
    if let AddressPlan::Compacted(plan) = &emb.address {
        for st in new_stg.states() {
            if st.index() >= plan.sel.len() {
                // A brand-new state has no mux row at all: only legal if it
                // reads nothing.
                if !state_input_support(new_stg, st).is_empty() {
                    return Err(EcoError::SupportEscapesMux { state: st.index() });
                }
                continue;
            }
            let frozen: std::collections::BTreeSet<usize> =
                plan.sel[st.index()].iter().flatten().copied().collect();
            let needed = state_input_support(new_stg, st);
            if !needed.is_subset(&frozen) {
                return Err(EcoError::SupportEscapesMux { state: st.index() });
            }
        }
    }

    let encoding = fsm_model::encoding::StateEncoding::assign(new_stg, emb.encoding.style());
    let address = match &emb.address {
        AddressPlan::Direct => AddressPlan::Direct,
        AddressPlan::Compacted(plan) => {
            // Reuse the frozen selections, truncated/extended to the new
            // state count (new states with empty support get all-None).
            let mut sel = plan.sel.clone();
            sel.resize(new_stg.num_states(), vec![None; plan.width]);
            AddressPlan::Compacted(CompactionPlan {
                width: plan.width,
                sel,
            })
        }
    };
    let outputs_in_word = match emb.outputs {
        OutputRealization::InMemory => new_stg.num_outputs(),
        OutputRealization::Luts(_) => 0,
    };
    let rom = contents::logical_rom(new_stg, &encoding, &address, outputs_in_word);
    let words_changed = rom.iter().zip(&emb.rom).filter(|(a, b)| a != b).count()
        + rom.len().abs_diff(emb.rom.len());

    let mut updated = emb.clone();
    updated.stg = new_stg.clone();
    updated.encoding = encoding;
    updated.address = address;
    updated.rom = rom;
    Ok(EcoRewrite {
        emb: updated,
        words_changed,
    })
}

impl EcoRewrite {
    /// Patches the BRAM `init` fields of a netlist produced by the
    /// original mapping's [`EmbFsm::to_netlist`]. Placement, routing and
    /// every non-BRAM cell stay untouched — the "no design recompilation"
    /// property.
    ///
    /// # Errors
    ///
    /// Fails if the netlist's BRAM structure does not match the mapping.
    pub fn apply_to_netlist(&self, netlist: &mut Netlist) -> Result<(), EcoError> {
        // Regenerate the reference netlist to source the new init images.
        let fresh = self.emb.to_netlist();
        let new_inits: Vec<(usize, Vec<u64>)> = fresh
            .cells()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                Cell::Bram { init, .. } => Some((i, init.clone())),
                _ => None,
            })
            .collect();
        let old_bram_ids: Vec<usize> = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(c, Cell::Bram { .. }))
            .map(|(i, _)| i)
            .collect();
        if old_bram_ids.len() != new_inits.len() {
            return Err(EcoError::NetlistMismatch(format!(
                "{} BRAMs in netlist, {} in mapping",
                old_bram_ids.len(),
                new_inits.len()
            )));
        }
        for (old_idx, (_, new_init)) in old_bram_ids.iter().zip(new_inits) {
            netlist
                .replace_bram_init(*old_idx, new_init)
                .map_err(|e| EcoError::NetlistMismatch(e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_fsm_into_embs, EmbOptions, OutputMode};
    use crate::verify::{verify_against_stg, OutputTiming};
    use fsm_model::benchmarks::sequence_detector_0101;
    use fsm_model::stg::StgBuilder;

    /// The 0101 detector changed to detect 0110 instead.
    fn detector_0110() -> fsm_model::stg::Stg {
        let mut b = StgBuilder::new("seq0110", 1, 1);
        let a = b.state("A");
        let s_b = b.state("B");
        let c = b.state("C");
        let d = b.state("D");
        b.transition(a, "0", s_b, "0");
        b.transition(a, "1", a, "0");
        b.transition(s_b, "1", c, "0");
        b.transition(s_b, "0", s_b, "0");
        b.transition(c, "1", d, "0");
        b.transition(c, "0", s_b, "0");
        b.transition(d, "0", s_b, "1"); // 0110 detected
        b.transition(d, "1", a, "0");
        b.build().unwrap()
    }

    #[test]
    fn rewrite_changes_function_without_touching_structure() {
        let old = sequence_detector_0101();
        let new = detector_0110();
        let emb = map_fsm_into_embs(&old, &EmbOptions::default()).unwrap();
        let mut netlist = emb.to_netlist();
        // Sanity: netlist implements the OLD machine.
        verify_against_stg(&netlist, &old, OutputTiming::Registered, 300, 60).unwrap();

        let eco = rewrite(&emb, &new).unwrap();
        assert!(eco.words_changed > 0);
        eco.apply_to_netlist(&mut netlist).unwrap();
        // Same structure, new function.
        verify_against_stg(&netlist, &new, OutputTiming::Registered, 300, 61).unwrap();
        assert!(
            verify_against_stg(&netlist, &old, OutputTiming::Registered, 300, 62).is_err(),
            "the function must actually have changed"
        );
    }

    #[test]
    fn interface_change_rejected() {
        let old = sequence_detector_0101();
        let emb = map_fsm_into_embs(&old, &EmbOptions::default()).unwrap();
        let mut b = StgBuilder::new("wide", 2, 1);
        let a = b.state("A");
        b.transition(a, "--", a, "0");
        let wide = b.build().unwrap();
        assert!(matches!(
            rewrite(&emb, &wide).unwrap_err(),
            EcoError::InterfaceChanged
        ));
    }

    #[test]
    fn too_many_states_rejected() {
        let old = sequence_detector_0101(); // 4 states, 2 bits, capacity 4
        let emb = map_fsm_into_embs(&old, &EmbOptions::default()).unwrap();
        let mut b = StgBuilder::new("five", 1, 1);
        let ids: Vec<_> = (0..5).map(|i| b.state(format!("s{i}"))).collect();
        for i in 0..5 {
            b.transition(ids[i], "-", ids[(i + 1) % 5], "0");
        }
        let five = b.build().unwrap();
        let err = rewrite(&emb, &five).unwrap_err();
        assert!(matches!(err, EcoError::TooManyStates { .. }));
    }

    #[test]
    fn lut_outputs_rejected() {
        let old = sequence_detector_0101();
        let emb = map_fsm_into_embs(
            &old,
            &EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        let err = rewrite(&emb, &detector_0110()).unwrap_err();
        assert_eq!(err, EcoError::LutOutputsFrozen);
    }

    #[test]
    fn mux_escape_rejected() {
        // Compacted mapping; new machine makes state 0 read a column that
        // was never in its selection.
        let spec = fsm_model::generate::StgSpec {
            states: 8,
            inputs: 15,
            outputs: 2,
            transitions: 30,
            max_support: Some(2),
            ..fsm_model::generate::StgSpec::new("cmpeco")
        };
        let old = fsm_model::generate::generate(&spec).expect("generates");
        let emb = map_fsm_into_embs(&old, &EmbOptions::default()).unwrap();
        assert!(matches!(emb.address, AddressPlan::Compacted(_)));

        // Build a new machine: same states, but state 0 reads all inputs.
        let mut b = StgBuilder::new("escape", 15, 2);
        let ids: Vec<_> = (0..8).map(|i| b.state(format!("s{i}"))).collect();
        b.transition(ids[0], "111111111111111", ids[1], "00");
        b.transition(ids[0], "0--------------", ids[0], "00");
        b.transition(ids[0], "1------------0-", ids[0], "00");
        b.transition(ids[0], "1-----------0-1", ids[0], "00");
        // (remaining input space of s0 falls to the completion rule)
        for i in 1..8 {
            b.transition(ids[i], "---------------", ids[(i + 1) % 8], "00");
        }
        let new = b.build().unwrap();
        let err = rewrite(&emb, &new).unwrap_err();
        assert!(matches!(err, EcoError::SupportEscapesMux { state: 0 }));
    }
}
