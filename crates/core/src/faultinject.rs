//! Seeded fault injection for robustness testing.
//!
//! Each injector takes an intact artifact and a seed and produces a
//! *targeted* corruption — a single semantic mutation of the kind real
//! defects introduce (a wrong next-state, a flipped output bit, a
//! corrupted LUT truth table or ROM word) — together with a description
//! of the fault. The same seed always produces the same fault, so a
//! failing injection case is a one-line reproduction.
//!
//! The point of these is the workspace's robustness guarantee: any
//! corrupted-but-well-formed artifact pushed through the flow must come
//! back as a typed [`FlowError`](crate::flow::FlowError) (usually a
//! verification mismatch) or a flagged degraded report — never a panic.

use fpga_fabric::netlist::{Cell, NetId, Netlist};
use fpga_fabric::place::{EcoPlacement, PinnedEntities};
use fsm_model::pattern::Trit;
use fsm_model::stg::{StateId, Stg};
use std::fmt;
use xrand::SmallRng;

/// A single targeted STG corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgFault {
    /// Transition `index` now targets a different state.
    RedirectTransition {
        /// Transition index in [`Stg::transitions`].
        index: usize,
        /// The wrong destination.
        to: StateId,
    },
    /// One output trit of transition `index` was flipped
    /// (`0 -> 1`, `1 -> 0`, `- -> 1`).
    FlipOutputBit {
        /// Transition index.
        index: usize,
        /// Output bit position.
        bit: usize,
    },
    /// Transition `index` was deleted (its input space falls through to
    /// lower-priority rows or the completion rule).
    DropTransition {
        /// Transition index.
        index: usize,
    },
    /// A conflicting copy of transition `index` (same condition, different
    /// destination) was inserted *before* it, shadowing it by priority.
    ShadowTransition {
        /// Transition index that is now shadowed.
        index: usize,
    },
    /// The reset state was moved.
    SwapReset {
        /// The wrong reset state.
        to: StateId,
    },
}

impl fmt::Display for StgFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgFault::RedirectTransition { index, to } => {
                write!(f, "transition {index} redirected to state {to}")
            }
            StgFault::FlipOutputBit { index, bit } => {
                write!(f, "transition {index} output bit {bit} flipped")
            }
            StgFault::DropTransition { index } => write!(f, "transition {index} dropped"),
            StgFault::ShadowTransition { index } => {
                write!(f, "transition {index} shadowed by a conflicting copy")
            }
            StgFault::SwapReset { to } => write!(f, "reset moved to state {to}"),
        }
    }
}

/// A single targeted netlist corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistFault {
    /// One truth-table bit of a LUT cell was flipped.
    FlipLutTruthBit {
        /// Cell index in [`Netlist::cells`].
        cell: usize,
        /// Minterm whose entry was flipped.
        bit: u32,
    },
    /// A flip-flop's power-on value was inverted.
    FlipFfInit {
        /// Cell index.
        cell: usize,
    },
    /// One bit of a BRAM's initial contents (the ROM) was flipped.
    FlipBramInitBit {
        /// Cell index.
        cell: usize,
        /// Word address.
        word: usize,
        /// Bit within the word.
        bit: u32,
    },
}

impl fmt::Display for NetlistFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistFault::FlipLutTruthBit { cell, bit } => {
                write!(f, "LUT cell {cell} truth bit {bit} flipped")
            }
            NetlistFault::FlipFfInit { cell } => write!(f, "FF cell {cell} init inverted"),
            NetlistFault::FlipBramInitBit { cell, word, bit } => {
                write!(f, "BRAM cell {cell} word {word} bit {bit} flipped")
            }
        }
    }
}

/// A single targeted corruption of an ECO placement artifact.
///
/// These model the defects the incremental-placement contract exists to
/// catch: a pinned base entity that silently drifted off its coordinate,
/// and an enable-cone entity that vanished from the placement entirely.
/// Every fault in this class must be rejected by
/// [`fpga_fabric::place::verify_eco_placement`] as a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoFault {
    /// A *pinned* entity's coordinate was moved to a different (legal)
    /// site of its kind, violating the pin.
    MovePinnedCoordinate {
        /// Entity kind ("CLBs", "BRAMs" or "IOBs").
        kind: &'static str,
        /// Entity index within the kind.
        index: usize,
        /// The pinned coordinate the entity was at.
        from: (usize, usize),
        /// Where the fault moved it.
        to: (usize, usize),
    },
    /// A movable (enable-cone) entity's placement entry was deleted, so
    /// the coordinate list no longer covers the packed design.
    DropConeEntity {
        /// Entity kind.
        kind: &'static str,
        /// Entity index within the kind.
        index: usize,
    },
}

impl fmt::Display for EcoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoFault::MovePinnedCoordinate {
                kind,
                index,
                from,
                to,
            } => write!(
                f,
                "pinned {kind} {index} moved from {from:?} to {to:?}"
            ),
            EcoFault::DropConeEntity { kind, index } => {
                write!(f, "cone {kind} {index} dropped from the placement")
            }
        }
    }
}

/// Produces a corrupted copy of `eco` with exactly one seeded ECO fault,
/// or `None` when the artifact admits no corruption (no entities, or every
/// kind has a single legal site so pins cannot move).
///
/// The corruption targets the ECO *contract* rather than bit-level state:
/// either a pinned coordinate stops honouring its pin, or a cone entity's
/// placement disappears. Both must surface as typed
/// [`EcoPlaceError`](fpga_fabric::place::EcoPlaceError)s, never panics.
#[must_use]
pub fn corrupt_eco(
    eco: &EcoPlacement,
    pins: &PinnedEntities,
    seed: u64,
) -> Option<(EcoPlacement, EcoFault)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let device = eco.placement.device;
    // Candidate mutations: (class, kind index, entity index). Class 0
    // moves a pinned coordinate (needs somewhere else to move to); class 1
    // drops a movable entity's placement entry.
    let mut candidates: Vec<(u8, usize, usize)> = Vec::new();
    let kind_pins: [&Vec<Option<(usize, usize)>>; 3] = [&pins.clb, &pins.bram, &pins.iob];
    let site_count = [
        device.clb_sites().len(),
        device.bram_sites().len(),
        device.iob_sites().len(),
    ];
    for (k, pin) in kind_pins.iter().enumerate() {
        for (i, p) in pin.iter().enumerate() {
            match p {
                Some(_) if site_count[k] > 1 => candidates.push((0, k, i)),
                None => candidates.push((1, k, i)),
                _ => {}
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (class, k, index) = candidates[rng.random_range(0..candidates.len())];
    let mut corrupted = eco.clone();
    let (kind, loc, sites) = match k {
        0 => ("CLBs", &mut corrupted.placement.clb_loc, device.clb_sites()),
        1 => (
            "BRAMs",
            &mut corrupted.placement.bram_loc,
            device.bram_sites(),
        ),
        _ => ("IOBs", &mut corrupted.placement.iob_loc, device.iob_sites()),
    };
    let fault = if class == 0 {
        let from = loc[index];
        let pick = rng.random_range(0..sites.len());
        let to = if sites[pick] == from {
            sites[(pick + 1) % sites.len()]
        } else {
            sites[pick]
        };
        loc[index] = to;
        EcoFault::MovePinnedCoordinate {
            kind,
            index,
            from,
            to,
        }
    } else {
        loc.remove(index);
        EcoFault::DropConeEntity { kind, index }
    };
    Some((corrupted, fault))
}

/// Produces a corrupted copy of `stg` with exactly one seeded semantic
/// fault, or `None` when the machine is too degenerate to corrupt (a
/// single state and no transitions admits no observable mutation).
///
/// The corrupted machine is still *well-formed* — widths, state ids and
/// the reset all validate — so it exercises the flow's semantic checks,
/// not its input validation.
#[must_use]
pub fn corrupt_stg(stg: &Stg, seed: u64) -> Option<(Stg, StgFault)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_t = stg.transitions().len();
    let num_s = stg.num_states();

    // Enumerate the fault classes this machine admits.
    let mut classes: Vec<u8> = Vec::new();
    if num_t > 0 && num_s >= 2 {
        classes.push(0); // redirect
    }
    if num_t > 0 && stg.num_outputs() > 0 {
        classes.push(1); // flip output
    }
    if num_t > 0 {
        classes.push(2); // drop
    }
    if num_t > 0 && num_s >= 2 {
        classes.push(3); // shadow
    }
    if num_s >= 2 {
        classes.push(4); // swap reset
    }
    if classes.is_empty() {
        return None;
    }
    let class = classes[rng.random_range(0..classes.len())];

    let mut transitions = stg.transitions().to_vec();
    let mut reset = stg.reset_state();
    let other_state = |rng: &mut SmallRng, not: StateId| -> StateId {
        let mut idx = rng.random_range(0..num_s - 1);
        if idx >= not.index() {
            idx += 1;
        }
        StateId(idx as u32)
    };

    let fault = match class {
        0 => {
            let index = rng.random_range(0..num_t);
            let to = other_state(&mut rng, transitions[index].to);
            transitions[index].to = to;
            StgFault::RedirectTransition { index, to }
        }
        1 => {
            let index = rng.random_range(0..num_t);
            let bit = rng.random_range(0..stg.num_outputs());
            let flipped = match transitions[index].output.trit(bit) {
                Trit::Zero | Trit::DontCare => Trit::One,
                Trit::One => Trit::Zero,
            };
            transitions[index].output.set(bit, flipped);
            StgFault::FlipOutputBit { index, bit }
        }
        2 => {
            let index = rng.random_range(0..num_t);
            transitions.remove(index);
            StgFault::DropTransition { index }
        }
        3 => {
            let index = rng.random_range(0..num_t);
            let mut shadow = transitions[index].clone();
            shadow.to = other_state(&mut rng, shadow.to);
            transitions.insert(index, shadow);
            StgFault::ShadowTransition { index }
        }
        _ => {
            let to = other_state(&mut rng, reset);
            reset = to;
            StgFault::SwapReset { to }
        }
    };

    let names: Vec<String> = stg
        .states()
        .map(|s| stg.state_name(s).to_string())
        .collect();
    let corrupted = Stg::new(
        stg.name().to_string(),
        stg.num_inputs(),
        stg.num_outputs(),
        names,
        transitions,
        reset,
    )
    .expect("single-fault corruption preserves STG well-formedness");
    Some((corrupted, fault))
}

/// Deterministically picks the single bit-level fault that seed `seed`
/// injects into `netlist`, without materializing the corrupted copy, or
/// `None` when the netlist holds no corruptible cell.
///
/// This is the seed→fault map shared by [`corrupt_netlist`] (which
/// rebuilds a corrupted netlist) and the batched
/// [`netlist_fault_campaign`] (which applies the same fault to one lane
/// of a [`BatchSimulator`]): both paths see the identical fault for the
/// identical seed.
#[must_use]
pub fn pick_netlist_fault(netlist: &Netlist, seed: u64) -> Option<NetlistFault> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Candidate cells: index plus what can be flipped there.
    let candidates: Vec<usize> = netlist
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| match c {
            Cell::Lut { .. } | Cell::Ff { .. } => true,
            Cell::Bram { init, .. } => !init.is_empty(),
            Cell::Const { .. } => false,
        })
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let target = candidates[rng.random_range(0..candidates.len())];

    Some(match &netlist.cells()[target] {
        Cell::Lut { inputs, .. } => {
            let bit = rng.random_range(0..1u64 << inputs.len().min(6)) as u32;
            NetlistFault::FlipLutTruthBit { cell: target, bit }
        }
        Cell::Ff { .. } => NetlistFault::FlipFfInit { cell: target },
        Cell::Bram {
            addr, dout, init, ..
        } => {
            // Targeted BRAM corruption: only words a non-tied address can
            // reach and only data bits that are wired out are worth
            // flipping (the rest of the init plane is padding that no
            // simulation can observe).
            let drivers = netlist.driver_map();
            let live_addr = addr
                .iter()
                .filter(|net| {
                    !matches!(
                        drivers.get(net).map(|id| &netlist.cells()[id.index()]),
                        Some(Cell::Const { value: false, .. })
                    )
                })
                .count();
            let bram_words = (1usize << live_addr.min(20)).min(init.len());
            let bram_bits = dout.len().max(1);
            let word = rng.random_range(0..bram_words.max(1));
            let bit = rng.random_range(0..bram_bits) as u32;
            NetlistFault::FlipBramInitBit {
                cell: target,
                word,
                bit,
            }
        }
        Cell::Const { .. } => unreachable!("constants are filtered out"),
    })
}

/// Produces a corrupted copy of `netlist` with exactly one seeded bit-level
/// fault in a LUT truth table, FF init value, or BRAM ROM word, or `None`
/// when the netlist holds no corruptible cell.
#[must_use]
pub fn corrupt_netlist(netlist: &Netlist, seed: u64) -> Option<(Netlist, NetlistFault)> {
    let fault = pick_netlist_fault(netlist, seed)?;
    let target = match fault {
        NetlistFault::FlipLutTruthBit { cell, .. }
        | NetlistFault::FlipFfInit { cell }
        | NetlistFault::FlipBramInitBit { cell, .. } => cell,
    };
    let corrupted = rebuild_with(netlist, target, |cell| match (&fault, cell) {
        (NetlistFault::FlipLutTruthBit { bit, .. }, Cell::Lut { truth, .. }) => {
            *truth ^= 1u64 << bit;
        }
        (NetlistFault::FlipFfInit { .. }, Cell::Ff { init, .. }) => {
            *init = !*init;
        }
        (NetlistFault::FlipBramInitBit { word, bit, .. }, Cell::Bram { init, .. }) => {
            init[*word] ^= 1u64 << bit;
        }
        _ => unreachable!("fault kind matches the targeted cell kind"),
    });
    Some((corrupted, fault))
}

/// Outcome of one case in a batched netlist fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// The seed that produced the fault.
    pub seed: u64,
    /// The injected fault.
    pub fault: NetlistFault,
    /// First cycle (0-based) at which the faulty variant's outputs
    /// diverged from the intact oracle, or `None` when the fault stayed
    /// silent over the whole stimulus (e.g. it hit an unreachable word).
    pub detected_at: Option<usize>,
}

/// Runs a seeded single-fault detection campaign on the bit-parallel
/// kernel: up to 64 faulty variants of `netlist` share one
/// [`BatchSimulator`] batch — per-lane truth-table, FF power-on and BRAM
/// image edits model the faults of [`pick_netlist_fault`] — and all lanes
/// are driven by the same deterministic stimulus while being compared
/// against the same STG oracle trace.
///
/// Each case's result is what a scalar [`corrupt_netlist`] +
/// [`verify_against_stg`](crate::verify::verify_against_stg) run with the
/// same seed would report: the same fault, detected at the same cycle.
///
/// Seeds whose netlist admits no corruption are skipped (the returned
/// vector is then empty).
///
/// # Errors
///
/// Propagates [`NetlistError`] from netlist validation.
pub fn netlist_fault_campaign(
    netlist: &Netlist,
    stg: &Stg,
    timing: crate::verify::OutputTiming,
    seeds: std::ops::Range<u64>,
    cycles: usize,
    stim_seed: u64,
) -> Result<Vec<FaultOutcome>, fpga_fabric::netlist::NetlistError> {
    use crate::verify::OutputTiming;
    use fsm_model::simulate::StgSimulator;
    use netsim::kernel::{BatchSimulator, LANES};

    assert!(
        netlist.outputs().len() >= stg.num_outputs(),
        "netlist must expose at least the machine's outputs"
    );
    let cases: Vec<(u64, NetlistFault)> = seeds
        .filter_map(|s| pick_netlist_fault(netlist, s).map(|f| (s, f)))
        .collect();
    if cases.is_empty() {
        return Ok(Vec::new());
    }

    // One oracle trace serves every lane of every batch: all variants are
    // driven by the same stimulus.
    let stimulus = netsim::stimulus::random(stg.num_inputs(), cycles, stim_seed);
    let mut oracle = StgSimulator::new(stg);
    let expected: Vec<Vec<bool>> = stimulus.iter().map(|v| oracle.clock(v).to_vec()).collect();

    let mut outcomes = Vec::with_capacity(cases.len());
    for chunk in cases.chunks(LANES) {
        let mut sim = BatchSimulator::new(netlist)?;
        for (lane, (_, fault)) in chunk.iter().enumerate() {
            let applied = match *fault {
                NetlistFault::FlipLutTruthBit { cell, bit } => {
                    sim.flip_lane_truth(cell, lane, bit)
                }
                NetlistFault::FlipBramInitBit { cell, word, bit } => {
                    sim.flip_lane_bram_init(cell, lane, word, bit)
                }
                NetlistFault::FlipFfInit { cell } => {
                    match &netlist.cells()[cell] {
                        // The power-on flip: override the lane's q after
                        // reset. The next clock's settle propagates it.
                        Cell::Ff { q, init, .. } => sim.set_lane_value(*q, lane, !init),
                        _ => unreachable!("FlipFfInit targets an FF"),
                    }
                    Ok(())
                }
            };
            assert!(
                applied.is_ok(),
                "picked fault must be applicable to its own netlist"
            );
        }
        let mut detected: Vec<Option<usize>> = vec![None; chunk.len()];
        let mut undetected = chunk.len();
        for (cycle, vector) in stimulus.iter().enumerate() {
            if undetected == 0 {
                break;
            }
            let words: Vec<u64> = vector.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
            sim.clock_words(&words);
            for (lane, slot) in detected.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let got_all = match timing {
                    OutputTiming::Registered => sim.lane_outputs(lane),
                    OutputTiming::Combinational => sim.lane_pre_edge_outputs(lane),
                };
                if got_all[..stg.num_outputs()] != expected[cycle][..] {
                    *slot = Some(cycle);
                    undetected -= 1;
                }
            }
        }
        for ((seed, fault), detected_at) in chunk.iter().zip(detected) {
            outcomes.push(FaultOutcome {
                seed: *seed,
                fault: fault.clone(),
                detected_at,
            });
        }
    }
    Ok(outcomes)
}

/// Clones `netlist` applying `mutate` to the cell at `target`.
fn rebuild_with(netlist: &Netlist, target: usize, mutate: impl FnOnce(&mut Cell)) -> Netlist {
    let mut n = Netlist::new(netlist.name.clone());
    for i in 0..netlist.num_nets() {
        n.add_net(netlist.net_name(NetId(i as u32)).to_string());
    }
    let mut mutate = Some(mutate);
    for (i, cell) in netlist.cells().iter().enumerate() {
        let mut cell = cell.clone();
        if i == target {
            if let Some(m) = mutate.take() {
                m(&mut cell);
            }
        }
        n.add_cell(cell);
    }
    for (name, net) in netlist.inputs() {
        n.add_input(name.clone(), *net);
    }
    for (name, net) in netlist.outputs() {
        n.add_output(name.clone(), *net);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_fsm_into_embs, EmbOptions};
    use crate::verify::{verify_against_stg, OutputTiming, VerifyError};
    use fsm_model::benchmarks::sequence_detector_0101;

    #[test]
    fn stg_corruption_is_deterministic() {
        let stg = sequence_detector_0101();
        let (a, fa) = corrupt_stg(&stg, 42).unwrap();
        let (b, fb) = corrupt_stg(&stg, 42).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        // A different seed eventually picks a different fault.
        let differs = (0..32).any(|s| corrupt_stg(&stg, s).unwrap().1 != fa);
        assert!(differs, "seeds collapse to one fault");
    }

    #[test]
    fn degenerate_machines_yield_none_or_valid() {
        // Single state, no transitions: nothing observable to corrupt.
        let mut b = fsm_model::stg::StgBuilder::new("unit", 0, 0);
        b.state("only");
        let stg = b.build().unwrap();
        assert!(corrupt_stg(&stg, 7).is_none());
        // Empty netlist: nothing to corrupt.
        let n = Netlist::new("empty");
        assert!(corrupt_netlist(&n, 7).is_none());
    }

    #[test]
    fn netlist_corruption_flips_exactly_one_cell() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let netlist = emb.to_netlist();
        let (corrupted, fault) = corrupt_netlist(&netlist, 3).unwrap();
        assert_eq!(corrupted.cells().len(), netlist.cells().len());
        let changed: Vec<usize> = netlist
            .cells()
            .iter()
            .zip(corrupted.cells())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        let cell = match fault {
            NetlistFault::FlipLutTruthBit { cell, .. }
            | NetlistFault::FlipFfInit { cell }
            | NetlistFault::FlipBramInitBit { cell, .. } => cell,
        };
        assert_eq!(changed, vec![cell]);
        corrupted
            .validate()
            .expect("corruption keeps netlist valid");
    }

    #[test]
    fn eco_corruption_is_deterministic_and_always_detected() {
        use crate::clock_control::attach_emb_clock_control;
        use fpga_fabric::device::Device;
        use fpga_fabric::pack::{pack, pack_partitioned};
        use fpga_fabric::place::{
            place, place_incremental, verify_eco_placement, PinnedEntities, PlaceOptions,
        };

        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let plain = emb.to_netlist();
        let (gated, _) = attach_emb_clock_control(&emb, Default::default()).unwrap();
        let device = Device::xc2v250();
        let opts = PlaceOptions {
            seed: 1,
            effort: 1.0,
            ..PlaceOptions::default()
        };
        let plain_packed = pack(&plain);
        let base = place(&plain, &plain_packed, device, opts).unwrap();
        let packed = pack_partitioned(&gated, &plain_packed, plain.cells().len()).unwrap();
        let pins = PinnedEntities::pin_base(&base, &packed);
        let eco = place_incremental(&gated, &packed, device, opts, &pins).unwrap();
        assert!(verify_eco_placement(&eco.placement, &pins).is_ok());

        let (a, fa) = corrupt_eco(&eco, &pins, 42).unwrap();
        let (b, fb) = corrupt_eco(&eco, &pins, 42).unwrap();
        assert_eq!(fa, fb);
        assert_eq!(a.placement.clb_loc, b.placement.clb_loc);

        let mut classes = std::collections::HashSet::new();
        for seed in 0..32 {
            let (bad, fault) = corrupt_eco(&eco, &pins, seed).unwrap();
            classes.insert(std::mem::discriminant(&fault));
            assert!(
                verify_eco_placement(&bad.placement, &pins).is_err(),
                "seed {seed}: fault must be detected: {fault}"
            );
        }
        assert_eq!(classes.len(), 2, "both ECO fault classes must appear");
    }

    #[test]
    fn batched_campaign_matches_scalar_fault_by_fault() {
        // Every batched case must report exactly what the scalar path —
        // corrupt_netlist + verify_against_stg with the same seed and
        // stimulus — reports: same fault, same detection cycle (or same
        // silence).
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let netlist = emb.to_netlist();
        let outcomes =
            netlist_fault_campaign(&netlist, &stg, OutputTiming::Registered, 0..80, 300, 9)
                .unwrap();
        assert_eq!(outcomes.len(), 80);
        for out in &outcomes {
            let (bad, fault) = corrupt_netlist(&netlist, out.seed).unwrap();
            assert_eq!(fault, out.fault, "seed {}", out.seed);
            let scalar = match verify_against_stg(&bad, &stg, OutputTiming::Registered, 300, 9) {
                Err(VerifyError::Mismatch { cycle, .. }) => Some(cycle),
                Ok(()) => None,
                Err(e) => panic!("seed {}: unexpected error {e}", out.seed),
            };
            assert_eq!(scalar, out.detected_at, "seed {}: {}", out.seed, out.fault);
        }
        // The campaign must exercise detection both ways to be a real test.
        assert!(outcomes.iter().any(|o| o.detected_at.is_some()));
    }

    #[test]
    fn pick_and_corrupt_agree_on_the_fault() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let netlist = emb.to_netlist();
        for seed in 0..64 {
            let picked = pick_netlist_fault(&netlist, seed).unwrap();
            let (_, applied) = corrupt_netlist(&netlist, seed).unwrap();
            assert_eq!(picked, applied, "seed {seed}");
        }
    }

    #[test]
    fn rom_corruption_is_caught_by_verification() {
        // A flipped ROM bit is a semantic fault: verification against the
        // intact oracle must detect it for at least some seeds.
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let netlist = emb.to_netlist();
        let caught = (0..20).filter(|&s| {
            let (bad, _) = corrupt_netlist(&netlist, s).unwrap();
            matches!(
                verify_against_stg(&bad, &stg, OutputTiming::Registered, 400, 9),
                Err(VerifyError::Mismatch { .. })
            )
        });
        assert!(caught.count() >= 10, "most ROM corruptions must be visible");
    }
}
