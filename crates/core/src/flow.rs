//! End-to-end implementation flows (the paper's Fig. 6).
//!
//! Each flow takes an STG all the way to a power number: build the
//! netlist (FF baseline or EMB mapping, with or without clock control),
//! verify it against the STG oracle, pack/place/route on the target
//! device, simulate the stimulus while recording switching activity, and
//! estimate power at each requested clock frequency plus the critical
//! path. The [`FlowReport`] rows are what the experiment harness prints
//! as the paper's tables.

use crate::baseline::ff_netlist;
use crate::cache::{self, Frontend};
use crate::clock_control::{attach_emb_clock_control, attach_ff_clock_gating};
use crate::map::{map_fsm_into_embs, EmbFsm, EmbOptions};
use crate::overlay::{overlay_fsm, OverlayClass, OverlayError};
use crate::verify::{verify_against_stg, verify_rewrite, OutputTiming, VerificationMethod, VerifyError};
use fpga_fabric::device::Device;
use fpga_fabric::netlist::Netlist;
use fpga_fabric::pack::{pack, pack_partitioned, AreaReport, PackedDesign};
use fpga_fabric::place::{
    place, place_incremental, verify_eco_placement, PinnedEntities, PlaceError, PlaceOptions,
};
use fpga_fabric::route::{route, RouteError, RouteOptions};
use fpga_fabric::timing::{analyze, DelayModel, TimingReport};
use fsm_model::simulate::{idle_fraction, trace};
use fsm_model::stg::Stg;
use logic_synth::synth::{synthesize, SynthError, SynthOptions};
use netsim::kernel::BatchSimulator;
use netsim::stimulus as netstim;
use powermodel::{estimate, PowerParams, PowerReport};
use std::fmt;
use std::time::Instant;

/// Which EMB mapping backend [`emb_flow`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MapBackend {
    /// Per-FSM mapping and full place & route (the paper's Fig. 6 flow).
    #[default]
    Direct,
    /// The overlay backend: a pre-placed, pre-routed base per overlay
    /// class, per-FSM compile reduced to a memory-content update (see
    /// [`crate::overlay`]). Machines past the capacity ladder fail with
    /// a typed error.
    Overlay,
    /// Try the overlay backend; on a capacity failure fall back to the
    /// direct backend and record [`Downgrade::OverlayCapacity`].
    Auto,
}

impl MapBackend {
    /// Parses the `MAP_BACKEND` knob value (`direct` / `overlay` /
    /// `auto`). Unknown strings return `None` so callers can reject
    /// typos loudly instead of silently running the default.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "direct" => Some(MapBackend::Direct),
            "overlay" => Some(MapBackend::Overlay),
            "auto" => Some(MapBackend::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for MapBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MapBackend::Direct => "direct",
            MapBackend::Overlay => "overlay",
            MapBackend::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// Shared flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Target device.
    pub device: Device,
    /// Placement options.
    pub place: PlaceOptions,
    /// Routing options.
    pub route: RouteOptions,
    /// Timing model.
    pub delay: DelayModel,
    /// Power model parameters.
    pub power: PowerParams,
    /// Clock frequencies to report power at (MHz) — the paper uses
    /// 50 / 85 / 100.
    pub freqs_mhz: Vec<f64>,
    /// Simulation length in cycles.
    pub cycles: usize,
    /// Verification length in cycles.
    pub verify_cycles: usize,
    /// Stimulus / verification seed.
    pub seed: u64,
    /// When the design does not fit `device`, retry on the next larger
    /// family member. Our FF baselines are larger than SIS-optimized ones
    /// (synthetic STGs compress less), so a few big benchmarks overflow
    /// the paper's XC2V250.
    pub allow_device_upsize: bool,
    /// Run state minimization before implementation. Verification still
    /// compares against the *original* machine, so this also checks the
    /// minimizer end to end.
    pub minimize_states: bool,
    /// Incremental (ECO) placement for the clock-controlled flow: reuse
    /// the plain design's placement, pin every base entity at those exact
    /// coordinates, and place only the enable-cone delta. Makes the
    /// gated-vs-plain timing comparison structural instead of statistical
    /// (Sec. 6); any ECO failure falls back to a full placement with a
    /// recorded [`Downgrade::EcoFallback`].
    pub eco_place: bool,
    /// Input-count cap for the exhaustive rewrite-verification proof:
    /// machines with at most this many inputs (and never more than 20)
    /// are verified by the product-walk oracle; wider machines fall back
    /// to sampling with a recorded [`Downgrade::VerifySampled`].
    pub exhaustive_verify_max_inputs: usize,
    /// Which mapping backend [`emb_flow`] runs: the per-FSM direct flow,
    /// the pre-placed overlay, or overlay-with-direct-fallback. Only the
    /// plain EMB flow honours this; the clock-controlled flow always
    /// runs direct (the enable cone is netlist-specific, so it cannot
    /// share a class base).
    pub backend: MapBackend,
}

impl FlowConfig {
    /// The placement options every flow placement (and its cache key)
    /// actually uses: [`FlowConfig::place`] with [`FlowConfig::delay`]
    /// substituted in, so the placer's criticality term and the post-route
    /// [`analyze`] agree on the delay model.
    #[must_use]
    pub fn place_opts(&self) -> PlaceOptions {
        PlaceOptions {
            delay: self.delay,
            ..self.place
        }
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            device: Device::xc2v250(),
            place: PlaceOptions::default(),
            route: RouteOptions::default(),
            delay: DelayModel::default(),
            power: PowerParams::default(),
            freqs_mhz: vec![50.0, 85.0, 100.0],
            cycles: 2000,
            verify_cycles: 500,
            seed: 2004,
            allow_device_upsize: true,
            minimize_states: false,
            eco_place: true,
            exhaustive_verify_max_inputs: 20,
            backend: MapBackend::Direct,
        }
    }
}

/// The stimulus driving the power simulation.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// Uniform random vectors (paper Sec. 5 "large number of random
    /// inputs").
    Random,
    /// Idle-biased vectors targeting the given idle occupancy (paper
    /// Table 3's "average case with 50% idle").
    IdleBiased(f64),
    /// Caller-provided vectors.
    Replay(Vec<Vec<bool>>),
}

/// Which implementation a report describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImplKind {
    /// Conventional FF + LUT (Fig. 1a).
    Ff,
    /// FF + LUT with clock-enable gating on the state register.
    FfClockGated,
    /// EMB (BRAM) mapping (Fig. 1b).
    Emb,
    /// EMB mapping with the Sec. 6 enable-driven clock control.
    EmbClockControlled,
    /// EMB mapping compiled onto a pre-placed overlay base
    /// (see [`crate::overlay`]).
    EmbOverlay,
}

impl fmt::Display for ImplKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImplKind::Ff => write!(f, "FF/LUT"),
            ImplKind::FfClockGated => write!(f, "FF/LUT+gate"),
            ImplKind::Emb => write!(f, "EMB"),
            ImplKind::EmbClockControlled => write!(f, "EMB+cc"),
            ImplKind::EmbOverlay => write!(f, "EMB/ovl"),
        }
    }
}

/// The result of one flow run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Benchmark name.
    pub name: String,
    /// Implementation style.
    pub kind: ImplKind,
    /// Area after packing (LUT/FF/slice/BRAM — Table 1).
    pub area: AreaReport,
    /// Power at each configured frequency (Table 2 / Table 3).
    pub power: Vec<PowerReport>,
    /// Timing analysis.
    pub timing: TimingReport,
    /// Idle fraction the stimulus actually achieved on the oracle.
    pub idle_fraction: f64,
    /// Clock-control overhead, when applicable (Table 4).
    pub clock_control: Option<ClockControlStats>,
    /// Routed wirelength (routing-resource pressure).
    pub total_wirelength: usize,
    /// The device the design was finally implemented on.
    pub device: Device,
    /// Graceful degradations taken to complete the flow (empty when the
    /// requested implementation succeeded as asked).
    pub downgrades: Vec<Downgrade>,
    /// Flow-artifact cache traffic attributable to this run (zero under
    /// `FLOW_CACHE=0`).
    pub cache: cache::CacheStats,
    /// Digest over the final placement's coordinates (CLB, BRAM, IOB site
    /// lists in entity order). Two reports with equal digests were placed
    /// identically — the hook the ECO gate compares against.
    pub coord_digest: String,
    /// Pre-route fmax estimate (MHz) from the placer's timing kernel over
    /// the final placement's bounding boxes — the quantity the
    /// timing-driven anneal optimizes, re-derived deterministically from
    /// the placement. `NaN` if the estimate could not be computed.
    pub place_fmax_est_mhz: f64,
    /// ECO placement evidence, present when the clock-controlled flow
    /// reused the plain design's placement (see [`FlowConfig::eco_place`]).
    pub eco: Option<EcoReport>,
    /// Wall-clock spent in each pipeline stage of this run. Cached
    /// stages report (near) zero — the point of the caches — so this is
    /// measurement evidence, not part of the deterministic result: the
    /// corpus harness excludes it from cross-backend identity checks.
    pub stage_ms: StageTimings,
    /// Overlay-backend evidence, present when this report came from the
    /// overlay path ([`ImplKind::EmbOverlay`]).
    pub overlay: Option<OverlayReport>,
}

/// Per-stage wall-clock breakdown of one flow run, in milliseconds.
///
/// `synth` covers the front-end netlist construction (synthesis or EMB /
/// overlay mapping); `verify` the oracle equivalence proof; `place` and
/// `route` the physical stages (for the overlay backend: resolving the
/// base artifact, which is the load time on a cache hit). Values are
/// unrounded here; renderers round at the last moment (the corpus row
/// uses one decimal).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Front-end netlist construction (synthesis / mapping) time.
    pub synth_ms: f64,
    /// Equivalence-proof time.
    pub verify_ms: f64,
    /// Placement time (overlay: base-artifact resolution).
    pub place_ms: f64,
    /// Routing time (overlay: zero on a base cache hit — the stored
    /// routing is reused).
    pub route_ms: f64,
}

impl StageTimings {
    /// The compile-turnaround metric the overlay backend optimizes:
    /// synthesis + place + route. Verification is excluded on both
    /// backends — the proof obligation is identical either way, so
    /// including it would only dilute the backend comparison.
    #[must_use]
    pub fn compile_ms(&self) -> f64 {
        self.synth_ms + self.place_ms + self.route_ms
    }
}

/// Evidence that a report came from the overlay backend: which class the
/// machine landed on and whether the class base came out of the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayReport {
    /// True when the base's placement + routing were loaded from the
    /// flow cache; false when this run built (and stored) them.
    pub base_cache_hit: bool,
    /// The canonical class label (e.g. `ovl_i4_s6_o2_b1`).
    pub class: String,
    /// Logical address bits the class consumes (`inputs + state_bits`).
    pub addr_bits: usize,
    /// Padded state width (a [`crate::overlay::STATE_BIT_RUNGS`] rung).
    pub state_bits: usize,
    /// Data bits per ROM word (`state_bits + outputs`).
    pub data_bits: usize,
    /// Series banks in the base (1, 2 or 4).
    pub banks: usize,
}

/// Evidence that a clock-controlled implementation was placed as an ECO on
/// top of the plain design: every base entity pinned at the plain
/// coordinates, only the enable-cone delta placed.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoReport {
    /// Base entities pinned at the plain design's coordinates.
    pub pinned_entities: usize,
    /// Enable-cone entities placed by the range-limited local anneal.
    pub delta_entities: usize,
    /// Total HPWL of the nets touching at least one delta entity.
    pub delta_hpwl: f64,
    /// True when the base placement came out of the flow-artifact cache
    /// (the plain flow already ran); false when this run computed it.
    pub base_reuse_cache_hit: bool,
    /// Digest over the base (pinned) coordinates — byte-identical to the
    /// plain flow's [`FlowReport::coord_digest`] on the same device.
    pub base_coord_digest: String,
}

/// A graceful degradation recorded in a [`FlowReport`]: the flow completed,
/// but not exactly as requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Downgrade {
    /// EMB mapping failed at every rung (direct → compaction → series →
    /// upsize); the FF+LUT baseline was implemented instead.
    EmbToFf {
        /// Display of the mapping/fitting error that forced the fallback.
        reason: String,
    },
    /// The design did not fit the configured device and was implemented on
    /// a larger family member.
    DeviceUpsized {
        /// The originally requested device name.
        from: &'static str,
        /// The device actually used.
        to: &'static str,
    },
    /// The placer hit its move budget; the best-seen placement was kept.
    PlaceBudgetExhausted {
        /// Moves spent when the budget tripped.
        spent: u64,
    },
    /// Synthesis skipped espresso on oversized functions (exact but
    /// unminimized covers were kept).
    SynthBudgetExhausted {
        /// Number of functions left unminimized.
        skipped_functions: usize,
    },
    /// ECO placement was requested but could not be completed (partition,
    /// incremental-place, or routing failure on the ECO result); the flow
    /// fell back to a full from-scratch placement.
    EcoFallback {
        /// Display of the failure that forced the fallback.
        reason: String,
    },
    /// Rewrite verification could not take the exhaustive product-walk
    /// path (machine wider than the input cap) and fell back to sampled
    /// lockstep simulation.
    VerifySampled {
        /// The machine's primary-input count.
        inputs: usize,
    },
    /// The `auto` backend's overlay attempt failed for capacity (the
    /// machine exceeds the overlay ladder, or its base did not fit any
    /// device); the direct backend implemented it instead.
    OverlayCapacity {
        /// Display of the overlay failure that forced the fallback.
        reason: String,
    },
}

impl Downgrade {
    /// Stable payload-free label for histograms and JSON reports. New
    /// variants must pick a label here, which is what lets corpus
    /// coverage tests assert "every kind observed" without formatting.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Downgrade::EmbToFf { .. } => "emb-to-ff",
            Downgrade::DeviceUpsized { .. } => "device-upsized",
            Downgrade::PlaceBudgetExhausted { .. } => "place-budget",
            Downgrade::SynthBudgetExhausted { .. } => "synth-budget",
            Downgrade::EcoFallback { .. } => "eco-fallback",
            Downgrade::VerifySampled { .. } => "verify-sampled",
            Downgrade::OverlayCapacity { .. } => "overlay-capacity",
        }
    }

    /// All downgrade kind labels, in declaration order — the universe the
    /// corpus coverage gate checks against.
    #[must_use]
    pub fn all_kinds() -> &'static [&'static str] {
        &[
            "emb-to-ff",
            "device-upsized",
            "place-budget",
            "synth-budget",
            "eco-fallback",
            "verify-sampled",
            "overlay-capacity",
        ]
    }
}

impl fmt::Display for Downgrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Downgrade::EmbToFf { reason } => {
                write!(f, "EMB mapping fell back to FF baseline ({reason})")
            }
            Downgrade::DeviceUpsized { from, to } => {
                write!(f, "device upsized {from} -> {to}")
            }
            Downgrade::PlaceBudgetExhausted { spent } => {
                write!(f, "placement move budget exhausted after {spent} moves")
            }
            Downgrade::SynthBudgetExhausted { skipped_functions } => {
                write!(f, "{skipped_functions} function(s) left unminimized")
            }
            Downgrade::EcoFallback { reason } => {
                write!(f, "ECO placement fell back to full placement ({reason})")
            }
            Downgrade::VerifySampled { inputs } => {
                write!(
                    f,
                    "rewrite verification sampled ({inputs} inputs exceed the exhaustive cap)"
                )
            }
            Downgrade::OverlayCapacity { reason } => {
                write!(f, "overlay backend fell back to direct ({reason})")
            }
        }
    }
}

/// Area overhead of the clock-control logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockControlStats {
    /// LUTs used by the enable logic.
    pub luts: usize,
    /// Slices used.
    pub slices: usize,
    /// Idle cubes extracted from the STG.
    pub idle_cubes: usize,
}

impl FlowReport {
    /// Power at the given frequency, if it was configured.
    #[must_use]
    pub fn power_at(&self, freq_mhz: f64) -> Option<&PowerReport> {
        self.power
            .iter()
            .find(|p| (p.freq_mhz - freq_mhz).abs() < 1e-9)
    }
}

/// The stage of the Fig.-6 pipeline an error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowStage {
    /// Optional state-minimization pre-pass.
    Prepare,
    /// Combinational synthesis (FF baseline).
    Synth,
    /// EMB (BRAM) mapping.
    Map,
    /// Clock-control / gating attachment.
    ClockControl,
    /// Oracle lockstep verification.
    Verify,
    /// Netlist validation and packing.
    Pack,
    /// Placement.
    Place,
    /// Routing.
    Route,
    /// Activity simulation.
    Simulate,
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlowStage::Prepare => "prepare",
            FlowStage::Synth => "synth",
            FlowStage::Map => "map",
            FlowStage::ClockControl => "clock-control",
            FlowStage::Verify => "verify",
            FlowStage::Pack => "pack",
            FlowStage::Place => "place",
            FlowStage::Route => "route",
            FlowStage::Simulate => "simulate",
        };
        f.write_str(s)
    }
}

/// What went wrong (stage-specific payload).
#[derive(Debug)]
pub enum FlowErrorKind {
    /// FSM synthesis failed (FF baseline).
    Synth(SynthError),
    /// EMB mapping failed.
    Map(crate::map::MapFsmError),
    /// Overlay planning failed (machine exceeds the capacity ladder).
    Overlay(OverlayError),
    /// Clock-control synthesis failed.
    ClockControl(logic_synth::techmap::MapError),
    /// The implementation diverged from the oracle.
    Verify(VerifyError),
    /// Placement failed.
    Place(PlaceError),
    /// Routing failed.
    Route(RouteError),
    /// Netlist validation failed.
    Netlist(fpga_fabric::netlist::NetlistError),
    /// Power estimation was handed an activity record from a different
    /// netlist.
    Power(powermodel::ActivityMismatch),
    /// The requested stimulus needs an STG oracle (idle biasing), but the
    /// flow was given an external netlist without one.
    NeedsOracle,
    /// The state-minimization pre-pass failed.
    Minimize(String),
}

impl fmt::Display for FlowErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowErrorKind::Synth(e) => write!(f, "synthesis: {e}"),
            FlowErrorKind::Map(e) => write!(f, "mapping: {e}"),
            FlowErrorKind::Overlay(e) => write!(f, "overlay: {e}"),
            FlowErrorKind::ClockControl(e) => write!(f, "clock control: {e}"),
            FlowErrorKind::Verify(e) => write!(f, "verification: {e}"),
            FlowErrorKind::Place(e) => write!(f, "placement: {e}"),
            FlowErrorKind::Route(e) => write!(f, "routing: {e}"),
            FlowErrorKind::Netlist(e) => write!(f, "netlist: {e}"),
            FlowErrorKind::Power(e) => write!(f, "power estimation: {e}"),
            FlowErrorKind::NeedsOracle => {
                write!(f, "idle-biased stimulus needs an STG oracle")
            }
            FlowErrorKind::Minimize(e) => write!(f, "state minimization: {e}"),
        }
    }
}

/// A flow failure, carrying the benchmark and pipeline stage it came from
/// so harness logs and checkpoints stay actionable without a backtrace.
#[derive(Debug)]
pub struct FlowError {
    /// The machine / netlist being implemented.
    pub benchmark: String,
    /// Where in the pipeline it failed.
    pub stage: FlowStage,
    /// The stage-specific cause.
    pub kind: FlowErrorKind,
}

impl FlowError {
    /// Builds an error tagged with benchmark and stage context.
    #[must_use]
    pub fn new(benchmark: impl Into<String>, stage: FlowStage, kind: FlowErrorKind) -> Self {
        FlowError {
            benchmark: benchmark.into(),
            stage,
            kind,
        }
    }

    /// True when the failure is a capacity/fitting exhaustion — the input
    /// machine is well-formed but does not fit the attempted resources —
    /// rather than a correctness failure. These are the failures the
    /// degradation ladder may absorb (see [`emb_flow_with_fallback`]).
    #[must_use]
    pub fn is_capacity(&self) -> bool {
        matches!(
            self.kind,
            FlowErrorKind::Map(_)
                | FlowErrorKind::Overlay(_)
                | FlowErrorKind::Place(_)
                | FlowErrorKind::Route(_)
        )
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.benchmark, self.stage, self.kind)
    }
}

impl std::error::Error for FlowError {}

/// Applies the optional state-minimization pre-pass.
fn prepared(stg: &Stg, cfg: &FlowConfig) -> Result<Stg, FlowError> {
    if cfg.minimize_states {
        Ok(fsm_model::minimize::minimize(stg)
            .map_err(|e| {
                FlowError::new(stg.name(), FlowStage::Prepare, FlowErrorKind::Minimize(e))
            })?
            .stg)
    } else {
        Ok(stg.clone())
    }
}

/// Runs the conventional FF/LUT flow (Fig. 1a / Fig. 6 left path).
///
/// # Errors
///
/// Any stage may fail; see [`FlowError`].
pub fn ff_flow(
    stg: &Stg,
    synth_opts: SynthOptions,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let entry = cache::stats_snapshot();
    let mut stage = StageTimings::default();
    let key = cache::ff_frontend_key("ff", stg, synth_opts, cfg.minimize_states);
    let (netlist, downgrades) = match cache::load_frontend(&key) {
        Some(fe) => (fe.netlist, skipped_downgrades(fe.synth_skipped_functions)),
        None => {
            let t = Instant::now();
            let impl_stg = prepared(stg, cfg)?;
            let synth = synthesize(&impl_stg, synth_opts).map_err(|e| {
                FlowError::new(stg.name(), FlowStage::Synth, FlowErrorKind::Synth(e))
            })?;
            let downgrades = synth_downgrades(&synth);
            let (netlist, _) = ff_netlist(&synth, false);
            stage.synth_ms = ms_since(t);
            let t = Instant::now();
            verify_against_stg(
                &netlist,
                stg,
                OutputTiming::Combinational,
                cfg.verify_cycles,
                cfg.seed,
            )
            .map_err(|e| FlowError::new(stg.name(), FlowStage::Verify, FlowErrorKind::Verify(e)))?;
            stage.verify_ms = ms_since(t);
            cache::store_frontend(&key, &netlist, None, skipped_of(&downgrades), None);
            (netlist, downgrades)
        }
    };
    let mut report = implement(
        stg,
        netlist,
        ImplKind::Ff,
        None,
        stimulus,
        cfg,
        downgrades,
        None,
        stage,
    )?;
    report.cache = cache::stats_snapshot().since(entry);
    Ok(report)
}

/// Milliseconds elapsed since `t`.
fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// Downgrades to record for a synthesized machine (budget overruns).
fn synth_downgrades(synth: &logic_synth::synth::SynthesizedFsm) -> Vec<Downgrade> {
    match synth.budget {
        logic_synth::synth::SynthBudget::Completed => Vec::new(),
        logic_synth::synth::SynthBudget::Exhausted {
            skipped_functions, ..
        } => {
            vec![Downgrade::SynthBudgetExhausted { skipped_functions }]
        }
    }
}

/// The `SynthBudgetExhausted` payload, if present (cache record material).
fn skipped_of(downgrades: &[Downgrade]) -> Option<usize> {
    downgrades.iter().find_map(|d| match d {
        Downgrade::SynthBudgetExhausted { skipped_functions } => Some(*skipped_functions),
        _ => None,
    })
}

/// Rebuilds the synth-budget downgrade list from a cached front-end.
fn skipped_downgrades(skipped: Option<usize>) -> Vec<Downgrade> {
    skipped
        .map(|skipped_functions| Downgrade::SynthBudgetExhausted { skipped_functions })
        .into_iter()
        .collect()
}

/// The `VerifySampled` cache payload for a verification outcome.
fn sampled_of(stg: &Stg, method: &VerificationMethod) -> Option<usize> {
    match method {
        VerificationMethod::Exhaustive(_) => None,
        VerificationMethod::Sampled { .. } => Some(stg.num_inputs()),
    }
}

/// Rebuilds the sampled-verification downgrade list from its cache payload.
fn sampled_downgrades(sampled: Option<usize>) -> Vec<Downgrade> {
    sampled
        .map(|inputs| Downgrade::VerifySampled { inputs })
        .into_iter()
        .collect()
}

/// Runs the FF flow with clock-enable gating on the state register.
///
/// # Errors
///
/// Any stage may fail; see [`FlowError`].
pub fn ff_clock_gated_flow(
    stg: &Stg,
    synth_opts: SynthOptions,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let entry = cache::stats_snapshot();
    let mut stage = StageTimings::default();
    let key = cache::ff_frontend_key("ffg", stg, synth_opts, cfg.minimize_states);
    let (netlist, stats, downgrades) = match cache::load_frontend(&key) {
        Some(Frontend {
            netlist,
            clock_control: Some(stats),
            synth_skipped_functions,
            ..
        }) => (netlist, stats, skipped_downgrades(synth_skipped_functions)),
        _ => {
            let t = Instant::now();
            let impl_stg = prepared(stg, cfg)?;
            let synth = synthesize(&impl_stg, synth_opts).map_err(|e| {
                FlowError::new(stg.name(), FlowStage::Synth, FlowErrorKind::Synth(e))
            })?;
            let downgrades = synth_downgrades(&synth);
            let (netlist, control) = attach_ff_clock_gating(&synth, &impl_stg, synth_opts.map)
                .map_err(|e| {
                    FlowError::new(
                        stg.name(),
                        FlowStage::ClockControl,
                        FlowErrorKind::ClockControl(e),
                    )
                })?;
            stage.synth_ms = ms_since(t);
            let t = Instant::now();
            verify_against_stg(
                &netlist,
                stg,
                OutputTiming::Combinational,
                cfg.verify_cycles,
                cfg.seed,
            )
            .map_err(|e| FlowError::new(stg.name(), FlowStage::Verify, FlowErrorKind::Verify(e)))?;
            stage.verify_ms = ms_since(t);
            let stats = ClockControlStats {
                luts: control.num_luts(),
                slices: control.num_slices(),
                idle_cubes: control.idle_cubes,
            };
            cache::store_frontend(&key, &netlist, Some(stats), skipped_of(&downgrades), None);
            (netlist, stats, downgrades)
        }
    };
    let mut report = implement(
        stg,
        netlist,
        ImplKind::FfClockGated,
        Some(stats),
        stimulus,
        cfg,
        downgrades,
        None,
        stage,
    )?;
    report.cache = cache::stats_snapshot().since(entry);
    Ok(report)
}

/// Runs the EMB flow (Fig. 1b) on the backend selected by
/// [`FlowConfig::backend`]: per-FSM place & route (`direct`), the
/// pre-placed overlay (`overlay`), or overlay with a direct fallback on
/// capacity failures (`auto`, recording
/// [`Downgrade::OverlayCapacity`]).
///
/// # Errors
///
/// Any stage may fail; see [`FlowError`]. Under `auto`, overlay
/// *capacity* failures are absorbed; correctness failures propagate.
pub fn emb_flow(
    stg: &Stg,
    emb_opts: &EmbOptions,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    match cfg.backend {
        MapBackend::Direct => emb_direct_flow(stg, emb_opts, stimulus, cfg),
        MapBackend::Overlay => emb_overlay_flow(stg, stimulus, cfg),
        MapBackend::Auto => {
            let entry = cache::stats_snapshot();
            match emb_overlay_flow(stg, stimulus, cfg) {
                Ok(report) => Ok(report),
                Err(e) if e.is_capacity() => {
                    let reason = e.to_string();
                    let mut report = emb_direct_flow(stg, emb_opts, stimulus, cfg)?;
                    report.downgrades.push(Downgrade::OverlayCapacity { reason });
                    // Span both attempts: the overlay misses belong to
                    // this run too.
                    report.cache = cache::stats_snapshot().since(entry);
                    Ok(report)
                }
                Err(e) => Err(e),
            }
        }
    }
}

/// The direct EMB backend: per-FSM mapping and full place & route.
fn emb_direct_flow(
    stg: &Stg,
    emb_opts: &EmbOptions,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let entry = cache::stats_snapshot();
    let (netlist, downgrades, stage) = emb_frontend(stg, emb_opts, cfg)?;
    let mut report = implement(
        stg,
        netlist,
        ImplKind::Emb,
        None,
        stimulus,
        cfg,
        downgrades,
        None,
        stage,
    )?;
    report.cache = cache::stats_snapshot().since(entry);
    Ok(report)
}

/// Runs the EMB flow on the overlay backend: the machine is compiled
/// onto its overlay class — a capacity check, a padded ROM image, and
/// the usual `verify_rewrite` proof — and the class's pre-placed,
/// pre-routed base supplies the physical design. The base is built (and
/// cached) the first time any machine of the class is compiled; after
/// that, per-FSM turnaround is O(memory-init), not O(place & route).
///
/// # Errors
///
/// Typed capacity failures ([`FlowErrorKind::Overlay`]) when the machine
/// exceeds the overlay ladder; otherwise see [`FlowError`].
pub fn emb_overlay_flow(
    stg: &Stg,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let entry = cache::stats_snapshot();
    let (netlist, class, downgrades, stage) = overlay_frontend(stg, cfg)?;
    let (vectors, idle) = oracle_vectors(stg, stimulus, cfg);
    let mut report = overlay_physical(
        stg.name(),
        netlist,
        class,
        &vectors,
        idle,
        cfg,
        downgrades,
        stage,
    )?;
    report.cache = cache::stats_snapshot().since(entry);
    Ok(report)
}

/// The shared plain-EMB front-end: maps the machine into BRAMs and proves
/// the rewrite through the verification ladder (exhaustive product walk up
/// to [`FlowConfig::exhaustive_verify_max_inputs`] inputs, sampled lockstep
/// beyond). Cached under the `"emb"` key, so [`emb_flow`] and the
/// clock-controlled flow's ECO base resolve to the identical netlist.
fn emb_frontend(
    stg: &Stg,
    emb_opts: &EmbOptions,
    cfg: &FlowConfig,
) -> Result<(Netlist, Vec<Downgrade>, StageTimings), FlowError> {
    let mut stage = StageTimings::default();
    let key = cache::emb_frontend_key("emb", stg, emb_opts, cfg.minimize_states);
    if let Some(fe) = cache::load_frontend(&key) {
        return Ok((
            fe.netlist,
            sampled_downgrades(fe.verify_sampled_inputs),
            stage,
        ));
    }
    let t = Instant::now();
    let impl_stg = prepared(stg, cfg)?;
    let emb = map_fsm_into_embs(&impl_stg, emb_opts)
        .map_err(|e| FlowError::new(stg.name(), FlowStage::Map, FlowErrorKind::Map(e)))?;
    let netlist = emb.to_netlist();
    stage.synth_ms = ms_since(t);
    let t = Instant::now();
    let method = verify_rewrite(
        &netlist,
        stg,
        OutputTiming::Registered,
        cfg.exhaustive_verify_max_inputs,
        cfg.verify_cycles,
        cfg.seed,
    )
    .map_err(|e| FlowError::new(stg.name(), FlowStage::Verify, FlowErrorKind::Verify(e)))?;
    stage.verify_ms = ms_since(t);
    let sampled = sampled_of(stg, &method);
    cache::store_frontend(&key, &netlist, None, None, sampled);
    Ok((netlist, sampled_downgrades(sampled), stage))
}

/// The overlay front-end: plans the machine's overlay class, builds the
/// padded ROM image and the overlay netlist, and proves the rewrite
/// through the same `verify_rewrite` ladder as the direct backend.
/// Cached under the `"ovl"` key. The class is re-planned on a cache hit
/// — planning is pure arithmetic on the port/state counts, so it costs
/// nothing and keeps the cached record netlist-only.
fn overlay_frontend(
    stg: &Stg,
    cfg: &FlowConfig,
) -> Result<(Netlist, OverlayClass, Vec<Downgrade>, StageTimings), FlowError> {
    let mut stage = StageTimings::default();
    let impl_stg = prepared(stg, cfg)?;
    let class = OverlayClass::plan(
        impl_stg.num_inputs(),
        impl_stg.num_states(),
        impl_stg.num_outputs(),
    )
    .map_err(|e| FlowError::new(stg.name(), FlowStage::Map, FlowErrorKind::Overlay(e)))?;
    let key = cache::overlay_frontend_key(stg, cfg.minimize_states);
    if let Some(fe) = cache::load_frontend(&key) {
        return Ok((
            fe.netlist,
            class,
            sampled_downgrades(fe.verify_sampled_inputs),
            stage,
        ));
    }
    let t = Instant::now();
    let ovl = overlay_fsm(&impl_stg)
        .map_err(|e| FlowError::new(stg.name(), FlowStage::Map, FlowErrorKind::Overlay(e)))?;
    let netlist = ovl.fsm_netlist();
    stage.synth_ms = ms_since(t);
    let t = Instant::now();
    let method = verify_rewrite(
        &netlist,
        stg,
        OutputTiming::Registered,
        cfg.exhaustive_verify_max_inputs,
        cfg.verify_cycles,
        cfg.seed,
    )
    .map_err(|e| FlowError::new(stg.name(), FlowStage::Verify, FlowErrorKind::Verify(e)))?;
    stage.verify_ms = ms_since(t);
    let sampled = sampled_of(stg, &method);
    cache::store_frontend(&key, &netlist, None, None, sampled);
    Ok((netlist, class, sampled_downgrades(sampled), stage))
}

/// Runs the EMB flow with the full degradation ladder: if mapping (or
/// fitting the mapped design) fails at every rung — direct, column
/// compaction, series join, device upsize — the machine is implemented as
/// the conventional FF+LUT baseline instead, and the downgrade is recorded
/// in the report. This mirrors the paper's framing of EMB mapping as an
/// *alternative* to the FF implementation: any well-formed machine
/// completes. Correctness failures (synthesis/verify bugs) still propagate.
///
/// # Errors
///
/// Only non-capacity failures — see [`FlowError::is_capacity`].
pub fn emb_flow_with_fallback(
    stg: &Stg,
    emb_opts: &EmbOptions,
    synth_opts: SynthOptions,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let entry = cache::stats_snapshot();
    match emb_flow(stg, emb_opts, stimulus, cfg) {
        Ok(report) => Ok(report),
        Err(e) if e.is_capacity() => {
            let reason = e.to_string();
            let mut report = ff_flow(stg, synth_opts, stimulus, cfg)?;
            report.downgrades.push(Downgrade::EmbToFf { reason });
            // Span both attempts: the EMB misses belong to this run too.
            report.cache = cache::stats_snapshot().since(entry);
            Ok(report)
        }
        Err(e) => Err(e),
    }
}

/// Runs the EMB flow with Sec. 6 clock control.
///
/// # Errors
///
/// Any stage may fail; see [`FlowError`].
pub fn emb_clock_controlled_flow(
    stg: &Stg,
    emb_opts: &EmbOptions,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let entry = cache::stats_snapshot();
    let mut stage = StageTimings::default();
    let key = cache::emb_frontend_key("embcc", stg, emb_opts, cfg.minimize_states);
    let (netlist, stats, mut downgrades) = match cache::load_frontend(&key) {
        Some(Frontend {
            netlist,
            clock_control: Some(stats),
            verify_sampled_inputs,
            ..
        }) => (netlist, stats, sampled_downgrades(verify_sampled_inputs)),
        _ => {
            let t = Instant::now();
            let impl_stg = prepared(stg, cfg)?;
            let emb = map_fsm_into_embs(&impl_stg, emb_opts)
                .map_err(|e| FlowError::new(stg.name(), FlowStage::Map, FlowErrorKind::Map(e)))?;
            let (netlist, control) =
                attach_emb_clock_control(&emb, emb_opts.lut_map).map_err(|e| {
                    FlowError::new(
                        stg.name(),
                        FlowStage::ClockControl,
                        FlowErrorKind::ClockControl(e),
                    )
                })?;
            stage.synth_ms = ms_since(t);
            let t = Instant::now();
            let method = verify_rewrite(
                &netlist,
                stg,
                OutputTiming::Registered,
                cfg.exhaustive_verify_max_inputs,
                cfg.verify_cycles,
                cfg.seed,
            )
            .map_err(|e| FlowError::new(stg.name(), FlowStage::Verify, FlowErrorKind::Verify(e)))?;
            stage.verify_ms = ms_since(t);
            let stats = ClockControlStats {
                luts: control.num_luts(),
                slices: control.num_slices(),
                idle_cubes: control.idle_cubes,
            };
            let sampled = sampled_of(stg, &method);
            cache::store_frontend(&key, &netlist, Some(stats), None, sampled);
            (netlist, stats, sampled_downgrades(sampled))
        }
    };
    // The ECO base: the plain design this clock-controlled netlist extends.
    // Resolving it can only fail if the plain mapping fails, in which case
    // the gated flow still completes with a full placement.
    let eco_base = if cfg.eco_place {
        match emb_frontend(stg, emb_opts, cfg) {
            Ok((plain, _, _)) => Some(plain),
            Err(e) => {
                downgrades.push(Downgrade::EcoFallback {
                    reason: e.to_string(),
                });
                None
            }
        }
    } else {
        None
    };
    let mut report = implement(
        stg,
        netlist,
        ImplKind::EmbClockControlled,
        Some(stats),
        stimulus,
        cfg,
        downgrades,
        eco_base.as_ref(),
        stage,
    )?;
    report.cache = cache::stats_snapshot().since(entry);
    Ok(report)
}

/// Maps an already-built netlist onto the device, simulates, and reports.
#[allow(clippy::too_many_arguments)]
fn implement(
    stg: &Stg,
    netlist: Netlist,
    kind: ImplKind,
    clock_control: Option<ClockControlStats>,
    stimulus: &Stimulus,
    cfg: &FlowConfig,
    downgrades: Vec<Downgrade>,
    eco_base: Option<&Netlist>,
    stage: StageTimings,
) -> Result<FlowReport, FlowError> {
    let (vectors, idle) = oracle_vectors(stg, stimulus, cfg);
    physical(
        stg.name(),
        netlist,
        kind,
        clock_control,
        &vectors,
        idle,
        cfg,
        downgrades,
        eco_base,
        stage,
    )
}

/// The stimulus vectors plus the idle fraction the oracle achieves on
/// them.
fn oracle_vectors(stg: &Stg, stimulus: &Stimulus, cfg: &FlowConfig) -> (Vec<Vec<bool>>, f64) {
    let vectors: Vec<Vec<bool>> = match stimulus {
        Stimulus::Random => netstim::random(stg.num_inputs(), cfg.cycles, cfg.seed),
        Stimulus::IdleBiased(p) => crate::stimulus::idle_biased(stg, cfg.cycles, *p, cfg.seed),
        Stimulus::Replay(v) => v.clone(),
    };
    let oracle_trace = trace(stg, vectors.clone());
    let idle = idle_fraction(stg, &oracle_trace);
    (vectors, idle)
}

/// Implements a netlist that has no STG oracle (external BLIF input):
/// replayed stimulus only, idle fraction reported as 0.
///
/// # Errors
///
/// See [`FlowError`].
pub(crate) fn implement_external(
    netlist: Netlist,
    kind: ImplKind,
    clock_control: Option<ClockControlStats>,
    stimulus: &Stimulus,
    num_inputs: usize,
    cfg: &FlowConfig,
) -> Result<FlowReport, FlowError> {
    let vectors: Vec<Vec<bool>> = match stimulus {
        Stimulus::Replay(v) => v.clone(),
        Stimulus::Random => netstim::random(num_inputs, cfg.cycles, cfg.seed),
        Stimulus::IdleBiased(_) => {
            return Err(FlowError::new(
                netlist.name.clone(),
                FlowStage::Simulate,
                FlowErrorKind::NeedsOracle,
            ))
        }
    };
    let name = netlist.name.clone();
    let entry = cache::stats_snapshot();
    let mut report = physical(
        &name,
        netlist,
        kind,
        clock_control,
        &vectors,
        0.0,
        cfg,
        Vec::new(),
        None,
        StageTimings::default(),
    )?;
    report.cache = cache::stats_snapshot().since(entry);
    Ok(report)
}

/// One device's worth of physical implementation evidence: what was
/// packed and placed, how the placer's budget fared, and (when the ECO
/// path produced it) the incremental-placement report.
struct Implemented {
    device: Device,
    packed: PackedDesign,
    place_budget: fpga_fabric::place::BudgetOutcome,
    routed: fpga_fabric::route::RoutedDesign,
    coord_digest: String,
    place_fmax_est_mhz: f64,
    eco: Option<EcoReport>,
}

/// The placer's pre-route fmax estimate (MHz) for a finished placement,
/// `NaN` when the kernel cannot be built for the netlist.
fn place_fmax_estimate(
    netlist: &Netlist,
    packed: &PackedDesign,
    placement: &fpga_fabric::place::Placement,
    delay: &DelayModel,
) -> f64 {
    fpga_fabric::sta::estimate_critical_ns(netlist, packed, placement, delay)
        .map_or(f64::NAN, |ns| 1000.0 / ns.max(f64::MIN_POSITIVE))
}

/// Attempts the ECO path on one device: reuse (or compute and cache) the
/// base netlist's placement, pack the gated netlist as base + delta, pin
/// every base entity, place only the delta, and route. Any failure is
/// returned as a display string for the [`Downgrade::EcoFallback`] record.
fn try_eco(
    netlist: &Netlist,
    netlist_bytes: &[u8],
    base: &Netlist,
    device: Device,
    cfg: &FlowConfig,
) -> Result<(PackedDesign, fpga_fabric::place::EcoPlacement, EcoReport), String> {
    let base_packed = pack(base);
    let base_bytes = cache::encode_netlist(base);
    let popts = cfg.place_opts();
    let bkey = cache::place_key(&base_bytes, &device, popts);
    let (base_placement, base_hit) = match cache::load_placement(&bkey) {
        Some(p) => (p, true),
        None => {
            let p = place(base, &base_packed, device, popts)
                .map_err(|e| format!("base placement: {e}"))?;
            cache::store_placement(&bkey, &p);
            (p, false)
        }
    };
    let packed = pack_partitioned(netlist, &base_packed, base.cells().len())
        .map_err(|e| format!("partitioned pack: {e}"))?;
    let pins = PinnedEntities::pin_base(&base_placement, &packed);
    let base_digest = cache::coords_digest(
        &base_placement.clb_loc,
        &base_placement.bram_loc,
        &base_placement.iob_loc,
    );
    let ekey = cache::eco_place_key(netlist_bytes, &device, popts, &base_digest);
    let eco = match cache::load_eco_placement(&ekey) {
        // A cached ECO placement must still honour today's pin map (the
        // key makes collisions unlikely; the check makes them harmless).
        Some(e)
            if e.placement.device.name == device.name
                && verify_eco_placement(&e.placement, &pins).is_ok() =>
        {
            e
        }
        _ => {
            let e = place_incremental(netlist, &packed, device, popts, &pins)
                .map_err(|e| format!("eco placement: {e}"))?;
            cache::store_eco_placement(&ekey, &e);
            e
        }
    };
    let report = EcoReport {
        pinned_entities: eco.pinned_entities,
        delta_entities: eco.delta_entities,
        delta_hpwl: eco.delta_hpwl,
        base_reuse_cache_hit: base_hit,
        base_coord_digest: base_digest,
    };
    Ok((packed, eco, report))
}

/// The physical half of a flow: pack, place, route, simulate, estimate.
#[allow(clippy::too_many_arguments)]
fn physical(
    name: &str,
    netlist: Netlist,
    kind: ImplKind,
    clock_control: Option<ClockControlStats>,
    vectors: &[Vec<bool>],
    idle: f64,
    cfg: &FlowConfig,
    mut downgrades: Vec<Downgrade>,
    eco_base: Option<&Netlist>,
    mut stage: StageTimings,
) -> Result<FlowReport, FlowError> {
    netlist
        .validate()
        .map_err(|e| FlowError::new(name, FlowStage::Pack, FlowErrorKind::Netlist(e)))?;
    let packed = pack(&netlist);
    let mut implemented: Option<Implemented> = None;
    let mut last_err = None;
    let mut eco_failure: Option<String> = None;
    let netlist_bytes = cache::encode_netlist(&netlist);
    'devices: for &device in &device_ladder(cfg) {
        // ECO first: pin the base at the plain design's coordinates and
        // place only the delta. Any failure falls through to the full
        // placement on the same device.
        if let Some(base) = eco_base {
            let t = Instant::now();
            match try_eco(&netlist, &netlist_bytes, base, device, cfg) {
                Ok((eco_packed, eco, report)) => {
                    stage.place_ms += ms_since(t);
                    let t = Instant::now();
                    match route(&netlist, &eco_packed, &eco.placement, cfg.route) {
                        Ok(routed) => {
                            stage.route_ms += ms_since(t);
                            implemented = Some(Implemented {
                                device,
                                coord_digest: cache::coords_digest(
                                    &eco.placement.clb_loc,
                                    &eco.placement.bram_loc,
                                    &eco.placement.iob_loc,
                                ),
                                place_fmax_est_mhz: place_fmax_estimate(
                                    &netlist,
                                    &eco_packed,
                                    &eco.placement,
                                    &cfg.delay,
                                ),
                                packed: eco_packed,
                                place_budget: eco.placement.budget,
                                routed,
                                eco: Some(report),
                            });
                            break 'devices;
                        }
                        Err(e) => {
                            stage.route_ms += ms_since(t);
                            eco_failure = Some(format!("routing: {e}"));
                        }
                    }
                }
                Err(reason) => {
                    stage.place_ms += ms_since(t);
                    eco_failure = Some(reason);
                }
            }
        }
        let t = Instant::now();
        let pkey = cache::place_key(&netlist_bytes, &device, cfg.place_opts());
        let placement = match cache::load_placement(&pkey) {
            Some(p) => p,
            None => match place(&netlist, &packed, device, cfg.place_opts()) {
                Ok(p) => {
                    cache::store_placement(&pkey, &p);
                    p
                }
                Err(e) => {
                    stage.place_ms += ms_since(t);
                    last_err = Some(FlowError::new(
                        name,
                        FlowStage::Place,
                        FlowErrorKind::Place(e),
                    ));
                    continue;
                }
            },
        };
        stage.place_ms += ms_since(t);
        let t = Instant::now();
        match route(&netlist, &packed, &placement, cfg.route) {
            Ok(routed) => {
                stage.route_ms += ms_since(t);
                implemented = Some(Implemented {
                    device,
                    packed: packed.clone(),
                    place_budget: placement.budget,
                    coord_digest: cache::coords_digest(
                        &placement.clb_loc,
                        &placement.bram_loc,
                        &placement.iob_loc,
                    ),
                    place_fmax_est_mhz: place_fmax_estimate(
                        &netlist,
                        &packed,
                        &placement,
                        &cfg.delay,
                    ),
                    routed,
                    eco: None,
                });
                break;
            }
            Err(e) => {
                stage.route_ms += ms_since(t);
                last_err = Some(FlowError::new(
                    name,
                    FlowStage::Route,
                    FlowErrorKind::Route(e),
                ));
            }
        }
    }
    let Some(imp) = implemented else {
        return Err(last_err.unwrap_or_else(|| no_device_fits(name)));
    };
    // An ECO failure is only a downgrade if the flow did NOT end up on the
    // ECO path (a later device may have succeeded incrementally).
    if imp.eco.is_none() {
        if let Some(reason) = eco_failure {
            downgrades.push(Downgrade::EcoFallback { reason });
        }
    }
    finish_report(
        name,
        &netlist,
        kind,
        clock_control,
        vectors,
        idle,
        cfg,
        downgrades,
        imp,
        stage,
        None,
    )
}

/// The physical half of the overlay flow: resolve (or build and cache)
/// the class base's placement + routing on the device ladder, then reuse
/// them verbatim for this machine. The FSM netlist shares the base's
/// structure cell for cell and net for net — only the BRAM init images
/// differ, and neither placement nor routing reads those — so the stored
/// physical result is exact, not approximate. Budget and upsize
/// downgrades replay deterministically from the stored artifact: the
/// placement carries its own budget outcome, and the device is part of
/// the key.
#[allow(clippy::too_many_arguments)]
fn overlay_physical(
    name: &str,
    netlist: Netlist,
    class: OverlayClass,
    vectors: &[Vec<bool>],
    idle: f64,
    cfg: &FlowConfig,
    downgrades: Vec<Downgrade>,
    mut stage: StageTimings,
) -> Result<FlowReport, FlowError> {
    netlist
        .validate()
        .map_err(|e| FlowError::new(name, FlowStage::Pack, FlowErrorKind::Netlist(e)))?;
    let mut base = netlist.with_zeroed_bram_init();
    base.name = class.label();
    let base_bytes = cache::encode_netlist(&base);
    let packed = pack(&netlist);
    let mut implemented: Option<Implemented> = None;
    let mut last_err = None;
    let mut base_hit = false;
    for &device in &device_ladder(cfg) {
        let bkey = cache::overlay_base_key(&base_bytes, &device, cfg.place_opts(), cfg.route);
        let t = Instant::now();
        let (ovl_base, hit) = match cache::load_overlay_base(&bkey) {
            Some(b) => {
                stage.place_ms += ms_since(t);
                (b, true)
            }
            None => {
                let base_packed = pack(&base);
                let placement = match place(&base, &base_packed, device, cfg.place_opts()) {
                    Ok(p) => p,
                    Err(e) => {
                        stage.place_ms += ms_since(t);
                        last_err = Some(FlowError::new(
                            name,
                            FlowStage::Place,
                            FlowErrorKind::Place(e),
                        ));
                        continue;
                    }
                };
                stage.place_ms += ms_since(t);
                let t = Instant::now();
                let routed = match route(&base, &base_packed, &placement, cfg.route) {
                    Ok(r) => r,
                    Err(e) => {
                        stage.route_ms += ms_since(t);
                        last_err = Some(FlowError::new(
                            name,
                            FlowStage::Route,
                            FlowErrorKind::Route(e),
                        ));
                        continue;
                    }
                };
                stage.route_ms += ms_since(t);
                let b = cache::OverlayBase { placement, routed };
                cache::store_overlay_base(&bkey, &b);
                (b, false)
            }
        };
        base_hit = hit;
        implemented = Some(Implemented {
            device,
            coord_digest: cache::coords_digest(
                &ovl_base.placement.clb_loc,
                &ovl_base.placement.bram_loc,
                &ovl_base.placement.iob_loc,
            ),
            place_fmax_est_mhz: place_fmax_estimate(
                &netlist,
                &packed,
                &ovl_base.placement,
                &cfg.delay,
            ),
            packed: packed.clone(),
            place_budget: ovl_base.placement.budget,
            routed: ovl_base.routed,
            eco: None,
        });
        break;
    }
    let Some(imp) = implemented else {
        return Err(last_err.unwrap_or_else(|| no_device_fits(name)));
    };
    let overlay = OverlayReport {
        base_cache_hit: base_hit,
        class: class.label(),
        addr_bits: class.addr_bits(),
        state_bits: class.state_bits,
        data_bits: class.data_width(),
        banks: class.banks,
    };
    finish_report(
        name,
        &netlist,
        ImplKind::EmbOverlay,
        None,
        vectors,
        idle,
        cfg,
        downgrades,
        imp,
        stage,
        Some(overlay),
    )
}

/// The devices a flow may implement on: the configured device, then —
/// when upsizing is allowed — the rest of the family above it.
fn device_ladder(cfg: &FlowConfig) -> Vec<Device> {
    let family_from: Vec<Device> = fpga_fabric::device::FAMILY
        .iter()
        .copied()
        .skip_while(|d| d.name != cfg.device.name)
        .collect();
    if cfg.allow_device_upsize && !family_from.is_empty() {
        family_from
    } else {
        vec![cfg.device]
    }
}

/// The error reported when every ladder device was exhausted without a
/// stage-specific failure to blame.
fn no_device_fits(name: &str) -> FlowError {
    FlowError::new(
        name,
        FlowStage::Place,
        FlowErrorKind::Place(PlaceError::DoesNotFit {
            what: "devices",
            need: 1,
            have: 0,
        }),
    )
}

/// The shared tail of every physical flow: records the device-upsize and
/// place-budget downgrades, analyzes timing, simulates the stimulus for
/// switching activity, estimates power, and assembles the report.
#[allow(clippy::too_many_arguments)]
fn finish_report(
    name: &str,
    netlist: &Netlist,
    kind: ImplKind,
    clock_control: Option<ClockControlStats>,
    vectors: &[Vec<bool>],
    idle: f64,
    cfg: &FlowConfig,
    mut downgrades: Vec<Downgrade>,
    imp: Implemented,
    stage: StageTimings,
    overlay: Option<OverlayReport>,
) -> Result<FlowReport, FlowError> {
    let Implemented {
        device,
        packed,
        place_budget,
        routed,
        coord_digest,
        place_fmax_est_mhz,
        eco,
    } = imp;
    if device.name != cfg.device.name {
        downgrades.push(Downgrade::DeviceUpsized {
            from: cfg.device.name,
            to: device.name,
        });
    }
    if let fpga_fabric::place::BudgetOutcome::Exhausted { spent } = place_budget {
        downgrades.push(Downgrade::PlaceBudgetExhausted { spent });
    }
    let timing = analyze(netlist, &routed, &cfg.delay);

    // Activity recording runs on the bit-parallel kernel in single-lane
    // mode: the stimulus is one sequential stream, so only one lane
    // carries it, but toggle counting still goes through the word-wide
    // XOR/popcount path and is bit-identical to the scalar engine.
    let mut sim = BatchSimulator::new(netlist)
        .map_err(|e| FlowError::new(name, FlowStage::Simulate, FlowErrorKind::Netlist(e)))?;
    sim.run_sequential(vectors);
    let activity = sim.activity();
    let power: Vec<PowerReport> = cfg
        .freqs_mhz
        .iter()
        .map(|&f| {
            estimate(netlist, &routed, activity, f, &cfg.power)
                .map_err(|e| FlowError::new(name, FlowStage::Simulate, FlowErrorKind::Power(e)))
        })
        .collect::<Result<_, _>>()?;

    Ok(FlowReport {
        name: name.to_string(),
        kind,
        area: packed.area(netlist),
        power,
        timing,
        idle_fraction: idle,
        clock_control,
        total_wirelength: routed.total_wirelength,
        device,
        downgrades,
        cache: cache::CacheStats::default(),
        coord_digest,
        place_fmax_est_mhz,
        eco,
        stage_ms: stage,
        overlay,
    })
}

/// Convenience: the EMB mapping object for reporting (same options the
/// flow would use).
///
/// # Errors
///
/// Propagates mapping failures.
pub fn mapping_for(stg: &Stg, emb_opts: &EmbOptions) -> Result<EmbFsm, FlowError> {
    map_fsm_into_embs(stg, emb_opts)
        .map_err(|e| FlowError::new(stg.name(), FlowStage::Map, FlowErrorKind::Map(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::{rotary_sequencer, sequence_detector_0101, traffic_light};

    fn quick_cfg() -> FlowConfig {
        FlowConfig {
            cycles: 600,
            verify_cycles: 200,
            place: PlaceOptions {
                seed: 1,
                effort: 2.0,
                ..PlaceOptions::default()
            },
            ..FlowConfig::default()
        }
    }

    #[test]
    fn ff_and_emb_flows_complete_and_compare() {
        let stg = sequence_detector_0101();
        let cfg = quick_cfg();
        let ff = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg).unwrap();
        let emb = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
        assert_eq!(ff.kind, ImplKind::Ff);
        assert_eq!(emb.kind, ImplKind::Emb);
        assert_eq!(ff.area.brams, 0);
        assert_eq!(emb.area.brams, 1);
        assert_eq!(emb.area.luts, 0, "tiny FSM needs no aux LUTs");
        assert!(ff.area.luts > 0);
        // Both report power at all three paper frequencies, and both carry
        // the placer's pre-route fmax estimate.
        for r in [&ff, &emb] {
            assert_eq!(r.power.len(), 3);
            assert!(r.power_at(85.0).is_some());
            assert!(r.power[0].total_mw() > 0.0);
            assert!(
                r.place_fmax_est_mhz.is_finite() && r.place_fmax_est_mhz > 0.0,
                "placer fmax estimate missing: {}",
                r.place_fmax_est_mhz
            );
        }
    }

    #[test]
    fn clock_controlled_flow_reports_overhead_and_saves_power() {
        // Rotary sequencer halted most of the time: the EMB+cc variant
        // must consume visibly less than the free-running EMB.
        let stg = rotary_sequencer();
        let cfg = quick_cfg();
        let stim = Stimulus::IdleBiased(0.7);
        let emb = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).unwrap();
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg).unwrap();
        assert!(cc.clock_control.is_some());
        assert!(cc.clock_control.unwrap().luts >= 1);
        assert!(cc.idle_fraction > 0.4, "idle {:.2}", cc.idle_fraction);
        let p_emb = emb.power_at(100.0).unwrap().dynamic_mw();
        let p_cc = cc.power_at(100.0).unwrap().dynamic_mw();
        assert!(
            p_cc < p_emb,
            "clock control must save power: {p_cc:.2} vs {p_emb:.2}"
        );
    }

    #[test]
    fn eco_placement_pins_the_plain_design_exactly() {
        let stg = rotary_sequencer();
        let cfg = quick_cfg();
        let stim = Stimulus::IdleBiased(0.5);
        let emb = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).unwrap();
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg).unwrap();
        let eco = cc.eco.as_ref().expect("ECO path must engage on a fitting design");
        assert_eq!(
            eco.base_coord_digest, emb.coord_digest,
            "pinned base coordinates must be byte-identical to the plain placement"
        );
        assert!(eco.pinned_entities > 0, "base entities are pinned");
        assert!(eco.delta_entities > 0, "the enable cone is the delta");
        assert!(
            !cc.downgrades
                .iter()
                .any(|d| matches!(d, Downgrade::EcoFallback { .. })),
            "no fallback on the happy path: {:?}",
            cc.downgrades
        );
        // Opting out really opts out.
        let cfg_off = FlowConfig {
            eco_place: false,
            ..quick_cfg()
        };
        let full = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg_off).unwrap();
        assert!(full.eco.is_none());
    }

    #[test]
    fn ff_gated_flow_completes() {
        let stg = traffic_light();
        let cfg = quick_cfg();
        let r = ff_clock_gated_flow(
            &stg,
            SynthOptions::default(),
            &Stimulus::IdleBiased(0.5),
            &cfg,
        )
        .unwrap();
        assert_eq!(r.kind, ImplKind::FfClockGated);
        assert!(r.clock_control.is_some());
    }

    #[test]
    fn minimization_pre_pass_is_transparent() {
        // A machine with a redundant state: the flow minimizes it away yet
        // still verifies against the ORIGINAL oracle.
        let mut b = fsm_model::stg::StgBuilder::new("red", 1, 1);
        let a = b.state("A");
        let x = b.state("B");
        let y = b.state("B2"); // behaviourally identical to B
        b.transition(a, "1", x, "1");
        b.transition(a, "0", y, "1");
        b.transition(x, "-", a, "0");
        b.transition(y, "-", a, "0");
        let stg = b.build().unwrap();
        let cfg = FlowConfig {
            minimize_states: true,
            ..quick_cfg()
        };
        let r = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
        assert_eq!(r.area.brams, 1);
        // 2 states after minimization -> 1 state bit -> 2 address bits.
        let emb = crate::map::map_fsm_into_embs(
            &fsm_model::minimize::minimize(&stg).unwrap().stg,
            &EmbOptions::default(),
        )
        .unwrap();
        assert_eq!(emb.num_state_bits(), 1);
    }

    #[test]
    fn overlay_flow_shares_one_base_across_a_class() {
        // Two different machines of one overlay class: the second compile
        // must reuse the first's base artifact, landing on byte-identical
        // coordinates.
        let mk = |seed: u64| {
            let spec = fsm_model::generate::StgSpec {
                states: 6,
                inputs: 3,
                outputs: 2,
                transitions: 18,
                seed,
                ..fsm_model::generate::StgSpec::new(format!("ovlcls{seed}"))
            };
            fsm_model::generate::generate(&spec).unwrap()
        };
        let cfg = quick_cfg();
        let a = emb_overlay_flow(&mk(3), &Stimulus::Random, &cfg).unwrap();
        let b = emb_overlay_flow(&mk(8), &Stimulus::Random, &cfg).unwrap();
        assert_eq!(a.kind, ImplKind::EmbOverlay);
        let oa = a.overlay.as_ref().expect("overlay evidence");
        let ob = b.overlay.as_ref().expect("overlay evidence");
        assert_eq!(oa.class, ob.class);
        assert_eq!(oa.state_bits, 4, "6 states pad to the 4-bit rung");
        assert!(
            ob.base_cache_hit,
            "second machine of the class must reuse the stored base"
        );
        assert_eq!(
            a.coord_digest, b.coord_digest,
            "one base, one placement: identical coordinates for the class"
        );
        assert!(b.power[0].total_mw() > 0.0);
        assert!(b.stage_ms.compile_ms() >= 0.0);
    }

    #[test]
    fn overlay_flow_dispatches_through_emb_flow() {
        let stg = sequence_detector_0101();
        let cfg = FlowConfig {
            backend: MapBackend::Overlay,
            ..quick_cfg()
        };
        let r = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
        assert_eq!(r.kind, ImplKind::EmbOverlay);
        assert_eq!(r.overlay.as_ref().unwrap().class, "ovl_i1_s2_o1_b1");
        // The direct backend on the same machine reports no overlay
        // evidence and no stage regression.
        let d = emb_flow(
            &stg,
            &EmbOptions::default(),
            &Stimulus::Random,
            &quick_cfg(),
        )
        .unwrap();
        assert_eq!(d.kind, ImplKind::Emb);
        assert!(d.overlay.is_none());
    }

    #[test]
    fn auto_backend_downgrades_past_the_overlay_ladder() {
        // 13 inputs + 9 states (rung 4) = 17 logical address bits: past
        // the overlay ladder. `auto` must absorb the typed capacity error
        // and complete on the direct backend with the downgrade recorded;
        // `overlay` must surface it as a typed capacity failure.
        let spec = fsm_model::generate::StgSpec {
            states: 9,
            inputs: 13,
            outputs: 2,
            transitions: 40,
            max_support: Some(3),
            ..fsm_model::generate::StgSpec::new("wide13")
        };
        let stg = fsm_model::generate::generate(&spec).unwrap();
        let cfg = FlowConfig {
            backend: MapBackend::Auto,
            exhaustive_verify_max_inputs: 8,
            ..quick_cfg()
        };
        let r = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
        assert_eq!(r.kind, ImplKind::Emb, "fell back to the direct backend");
        assert!(
            r.downgrades
                .iter()
                .any(|d| matches!(d, Downgrade::OverlayCapacity { .. })),
            "downgrade missing: {:?}",
            r.downgrades
        );
        let cfg_ovl = FlowConfig {
            backend: MapBackend::Overlay,
            ..cfg
        };
        let err = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg_ovl).unwrap_err();
        assert!(err.is_capacity(), "typed capacity failure: {err}");
        assert!(matches!(err.kind, FlowErrorKind::Overlay(_)));
    }

    #[test]
    fn map_backend_parses_the_knob_values() {
        assert_eq!(MapBackend::parse("direct"), Some(MapBackend::Direct));
        assert_eq!(MapBackend::parse("overlay"), Some(MapBackend::Overlay));
        assert_eq!(MapBackend::parse("auto"), Some(MapBackend::Auto));
        assert_eq!(MapBackend::parse("Overlay"), None);
        assert_eq!(format!("{}", MapBackend::Auto), "auto");
    }

    #[test]
    fn emb_timing_is_complexity_independent() {
        // Two machines of very different transition counts, same interface
        // scale: EMB critical paths should be close; FF paths should not.
        let small = sequence_detector_0101();
        let spec = fsm_model::generate::StgSpec {
            states: 30,
            inputs: 5,
            outputs: 4,
            transitions: 150,
            ..fsm_model::generate::StgSpec::new("big")
        };
        let big = fsm_model::generate::generate(&spec).expect("generates");
        let cfg = quick_cfg();
        let e_small = emb_flow(&small, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
        let e_big = emb_flow(&big, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
        let ratio = e_big.timing.critical_path_ns / e_small.timing.critical_path_ns;
        assert!(
            ratio < 1.6,
            "EMB timing should be ~flat across complexity, got {ratio:.2}"
        );
    }
}
