//! Mapping finite-state machines into FPGA embedded memory blocks —
//! the core contribution of Tiwari & Tomko, DATE 2004.
//!
//! An FSM's transition function is programmed into an on-chip block RAM:
//! the registered data outputs carry the state (and, space permitting,
//! the outputs) and feed back into the address lines together with the
//! FSM inputs. Compared with the conventional FF + LUT realization this
//! uses almost no programmable logic or routing, its timing is
//! independent of FSM complexity, its function can be changed by
//! rewriting memory contents, and — with the enable-driven clock control
//! of the paper's Sec. 6 — the memory is simply not clocked while the
//! machine idles.
//!
//! * [`map`] — the `Map_FSM_in_EMBs` algorithm (Fig. 5) and netlist
//!   generation;
//! * [`compaction`] — per-state don't-care column removal and the input
//!   multiplexer (Fig. 4);
//! * [`contents`] — ROM computation, memory maps (Fig. 2), `INIT_xx`
//!   strings;
//! * [`clock_control`] — idle detection and enable synthesis (Sec. 6);
//! * [`baseline`] — the FF + LUT reference implementation (Fig. 1a);
//! * [`blif_flow`] — implement externally synthesized BLIF netlists
//!   (real SIS output) through the same physical flow;
//! * [`verify`] — lockstep equivalence against the STG oracle;
//! * [`stimulus`] — idle-biased input streams (Table 3's 50%-idle case);
//! * [`eco`] — content rewrites without re-place-and-route;
//! * [`overlay`] — pre-placed, pre-routed overlay bases shared by whole
//!   classes of machines; per-FSM compile is a memory-content update;
//! * [`reconfig`] — the same rewrites performed *live* through the
//!   BRAM's second (write) port while the machine runs;
//! * [`flow`] — end-to-end implement/simulate/estimate pipelines
//!   (Fig. 6) producing the rows of the paper's tables;
//! * [`vhdl`] — structural VHDL export with UNISIM primitives and
//!   `INIT_xx` generics (the paper's deliverable format).
//!
//! # Examples
//!
//! Map the paper's 0101 sequence detector (Fig. 2) and inspect the
//! memory map:
//!
//! ```
//! use emb_fsm::map::{map_fsm_into_embs, EmbOptions};
//! use fsm_model::benchmarks::sequence_detector_0101;
//!
//! let stg = sequence_detector_0101();
//! let emb = map_fsm_into_embs(&stg, &EmbOptions::default())?;
//! assert_eq!(emb.num_brams(), 1);
//! // State A (code 00) on input 0 goes to B (code 01) with output 0:
//! assert_eq!(emb.rom[0b000], 0b001);
//! # Ok::<(), emb_fsm::map::MapFsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod blif_flow;
pub mod cache;
pub mod clock_control;
pub mod compaction;
pub mod contents;
pub mod eco;
pub mod faultinject;
pub mod flow;
pub mod map;
pub mod netlist_build;
pub mod overlay;
pub mod reconfig;
pub mod stimulus;
pub mod verify;
pub mod vhdl;

pub use clock_control::{attach_emb_clock_control, synthesize_enable, ClockControl};
pub use flow::{
    emb_clock_controlled_flow, emb_flow, emb_overlay_flow, ff_clock_gated_flow, ff_flow,
    FlowConfig, FlowReport, ImplKind, MapBackend, StageTimings, Stimulus,
};
pub use map::{map_fsm_into_embs, EmbFsm, EmbOptions, MapFsmError, OutputMode};
