//! `Map_FSM_in_EMBs` — the paper's mapping algorithm (Fig. 5).
//!
//! Encodes the states, then fits the transition function into block RAM:
//!
//! 1. if `I + s` fits the address lines of some aspect ratio, pick the
//!    widest such shape (fewest BRAMs);
//! 2. if `O + s` exceeds the shape's data width, join BRAMs **in
//!    parallel** on the same address lines (lines 6–8);
//! 3. otherwise apply **column compaction** and a state-controlled input
//!    multiplexer (lines 11–14, Fig. 4);
//! 4. as a last resort join BRAMs **in series** (lines 16–18): extra
//!    address bits select among banks through an output multiplexer.
//!
//! Outputs can live in the memory words (Fig. 2: "some of the bits of the
//! output can be used for the FSM's output") or be regenerated from the
//! state bits by LUTs for Moore machines (Fig. 3); a Mealy machine is
//! first transformed to Moore in the latter mode, as the paper prescribes.

use crate::compaction::{mux_network, CompactionPlan};
use crate::contents;
use fpga_fabric::device::BramShape;
use fpga_fabric::netlist::{Cell, NetId, Netlist};
use fsm_model::encoding::{EncodingStyle, StateEncoding};
use fsm_model::machine;
use fsm_model::stg::Stg;
use logic_synth::cover::Cover;
use logic_synth::cube::Cube;
use logic_synth::decompose::decompose2;
use logic_synth::espresso;
use logic_synth::network::Network;
use logic_synth::techmap::{map_luts, LutNetwork, MapOptions};
use std::fmt;

/// How the FSM outputs are realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputMode {
    /// Choose automatically: in-memory when the data width allows it with
    /// the same BRAM count, otherwise Moore-style LUT outputs.
    #[default]
    Auto,
    /// Outputs are stored in the memory words next to the state bits.
    InMemory,
    /// Outputs are regenerated from the state bits by LUTs (Fig. 3);
    /// Mealy machines are first transformed to Moore.
    MooreLuts,
}

/// Options for the mapping algorithm.
#[derive(Debug, Clone, Copy)]
pub struct EmbOptions {
    /// State encoding (binary is the paper's choice: state bits are
    /// address lines).
    pub encoding: EncodingStyle,
    /// Output realization.
    pub output_mode: OutputMode,
    /// Permit column compaction (Fig. 4). Disabling it forces the series
    /// fallback for wide machines — the ablation of DESIGN.md §5.3.
    pub allow_compaction: bool,
    /// Permit the series (bank) fallback.
    pub allow_series: bool,
    /// Cap on series banks (2^extra-address-bits).
    pub max_series_banks: usize,
    /// Technology-mapping options for auxiliary logic (mux / outputs).
    pub lut_map: MapOptions,
}

impl Default for EmbOptions {
    fn default() -> Self {
        EmbOptions {
            encoding: EncodingStyle::Binary,
            output_mode: OutputMode::Auto,
            allow_compaction: true,
            allow_series: true,
            max_series_banks: 16,
            lut_map: MapOptions::default(),
        }
    }
}

/// Errors from the mapping algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum MapFsmError {
    /// The machine does not fit even with compaction and the series
    /// fallback (or those were disabled).
    DoesNotFit {
        /// Address bits the machine needs after the allowed reductions.
        needed_addr_bits: usize,
        /// Address bits available (possibly extended by allowed banks).
        available: usize,
    },
    /// One-hot encoding cannot be used for EMB addressing.
    EncodingUnsupported(EncodingStyle),
    /// Auxiliary logic synthesis failed.
    Logic(String),
}

impl fmt::Display for MapFsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapFsmError::DoesNotFit {
                needed_addr_bits,
                available,
            } => write!(
                f,
                "FSM needs {needed_addr_bits} address bits, only {available} available"
            ),
            MapFsmError::EncodingUnsupported(e) => {
                write!(f, "{e} encoding is not usable as a BRAM address")
            }
            MapFsmError::Logic(e) => write!(f, "auxiliary logic synthesis failed: {e}"),
        }
    }
}

impl std::error::Error for MapFsmError {}

/// How the address is formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressPlan {
    /// Raw FSM inputs on the low address lines.
    Direct,
    /// Compacted inputs through the state-controlled mux (Fig. 4).
    Compacted(CompactionPlan),
}

impl AddressPlan {
    /// Number of input address bits.
    #[must_use]
    pub fn input_bits(&self, num_inputs: usize) -> usize {
        match self {
            AddressPlan::Direct => num_inputs,
            AddressPlan::Compacted(p) => p.width,
        }
    }
}

/// Which mapping rung of the degradation ladder a mapping landed on.
/// Derived from the finished [`EmbFsm`] (address plan + bank count), so
/// outcome reports can histogram rungs without re-running the mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MapRung {
    /// Raw inputs on the address lines, a single bank.
    Direct,
    /// Column compaction through the state-controlled input mux (Fig. 4).
    Compacted,
    /// Series bank cascade (address width over the single-BRAM limit).
    Series,
}

impl MapRung {
    /// Stable lowercase label for histograms and JSON reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MapRung::Direct => "direct",
            MapRung::Compacted => "compacted",
            MapRung::Series => "series",
        }
    }
}

impl fmt::Display for MapRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The resolved output realization.
#[derive(Debug, Clone)]
pub enum OutputRealization {
    /// Output bits stored in memory words above the state bits.
    InMemory,
    /// Outputs regenerated from state bits by this LUT network (Fig. 3).
    Luts(LutNetwork),
}

/// A complete EMB mapping of one FSM.
#[derive(Debug, Clone)]
pub struct EmbFsm {
    /// The machine actually mapped (Moore-transformed when the output mode
    /// required it).
    pub stg: Stg,
    /// Name of the source machine.
    pub source_name: String,
    /// The state encoding (code 0 = reset, as required by the cleared
    /// output latches).
    pub encoding: StateEncoding,
    /// The chosen aspect ratio.
    pub shape: BramShape,
    /// Address formation.
    pub address: AddressPlan,
    /// Series banks (1 = no series join).
    pub banks: usize,
    /// Extra (bank-select) address bits handled by the output mux.
    pub series_bits: usize,
    /// BRAMs in parallel per bank.
    pub parallel: usize,
    /// Data bits per logical word (`s`, plus `O` when outputs are
    /// in-memory).
    pub data_width: usize,
    /// Output realization.
    pub outputs: OutputRealization,
    /// The input multiplexer (present iff `address` is compacted).
    pub input_mux: Option<LutNetwork>,
    /// Logical ROM: `2^(input_bits + s)` words of `data_width` bits.
    pub rom: Vec<u64>,
}

impl EmbFsm {
    /// Number of state bits `s`.
    #[must_use]
    pub fn num_state_bits(&self) -> usize {
        self.encoding.num_bits()
    }

    /// Total logical address bits (`input_bits + s`).
    #[must_use]
    pub fn logical_addr_bits(&self) -> usize {
        self.address.input_bits(self.stg.num_inputs()) + self.num_state_bits()
    }

    /// Total BRAMs used.
    #[must_use]
    pub fn num_brams(&self) -> usize {
        self.banks * self.parallel
    }

    /// The mapping rung this mapping landed on. Series joins subsume the
    /// compaction question (a cascade may also carry a compacted mux), so
    /// they report as [`MapRung::Series`].
    #[must_use]
    pub fn rung(&self) -> MapRung {
        if self.banks > 1 {
            MapRung::Series
        } else if matches!(self.address, AddressPlan::Compacted(_)) {
            MapRung::Compacted
        } else {
            MapRung::Direct
        }
    }

    /// LUTs in the auxiliary logic (input mux, Moore outputs, series
    /// output mux) — the EMB column of the paper's Table 1.
    #[must_use]
    pub fn aux_luts(&self) -> usize {
        let mux = self.input_mux.as_ref().map_or(0, LutNetwork::num_luts);
        let outs = match &self.outputs {
            OutputRealization::InMemory => 0,
            OutputRealization::Luts(l) => l.num_luts(),
        };
        let series = if self.banks > 1 {
            // One select LUT per data bit (bank mux).
            self.data_width * (self.banks - 1)
        } else {
            0
        };
        mux + outs + series
    }
}

/// Maps an FSM into embedded memory blocks (the algorithm of Fig. 5).
///
/// # Errors
///
/// Fails when the machine cannot fit the allowed BRAM organizations or
/// auxiliary logic synthesis fails.
pub fn map_fsm_into_embs(stg: &Stg, opts: &EmbOptions) -> Result<EmbFsm, MapFsmError> {
    if opts.encoding == EncodingStyle::OneHotZero {
        return Err(MapFsmError::EncodingUnsupported(opts.encoding));
    }

    // Resolve the output mode: LUT-realized (Moore) outputs shrink the
    // data word to just the state bits, possibly at the cost of a Moore
    // transform. Auto keeps outputs in memory (the paper's Fig. 2
    // default); the BRAM count is minimized below by compaction instead.
    let use_luts_for_outputs = match opts.output_mode {
        OutputMode::InMemory | OutputMode::Auto => false,
        OutputMode::MooreLuts => true,
    };

    let (mapped_stg, moore_outputs) = if use_luts_for_outputs {
        match machine::moore_outputs(stg) {
            Some(outs) => (stg.clone(), outs),
            None => {
                let moore =
                    machine::to_moore(stg).map_err(|e| MapFsmError::Logic(e.to_string()))?;
                let outs =
                    machine::moore_outputs(&moore).expect("to_moore produces a Moore machine");
                (moore, outs)
            }
        }
    } else {
        (stg.clone(), Vec::new())
    };

    let encoding = StateEncoding::assign(&mapped_stg, opts.encoding);
    let s = encoding.num_bits();
    let num_inputs = mapped_stg.num_inputs();
    let num_outputs = mapped_stg.num_outputs();
    let data_width = if use_luts_for_outputs {
        s
    } else {
        s + num_outputs
    };

    // Enumerate address-plan candidates and pick the one using the fewest
    // BRAMs. Fig. 5 presents compaction as the fallback when `I + s`
    // exceeds the address lines, but the paper also argues compaction "is
    // advantageous for power savings, as instantiating more EMBs increases
    // the power consumption" — so a compacted plan that reaches a wider
    // aspect ratio beats a direct plan that must join BRAMs in parallel.
    struct Candidate {
        address: AddressPlan,
        banks: usize,
        series_bits: usize,
        shape: BramShape,
        parallel: usize,
        needs_mux: bool,
    }
    let max_addr = BramShape::max_addr_bits();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut consider = |address: AddressPlan, needs_mux: bool| {
        let input_bits = address.input_bits(num_inputs);
        let addr_bits = input_bits + s;
        let (banks, series_bits, eff_addr) = if addr_bits <= max_addr {
            (1usize, 0usize, addr_bits)
        } else {
            if !opts.allow_series {
                return;
            }
            let series_bits = addr_bits - max_addr;
            if series_bits >= usize::BITS as usize || 1usize << series_bits > opts.max_series_banks
            {
                return;
            }
            (1usize << series_bits, series_bits, max_addr)
        };
        let shape = BramShape::widest_with_addr_bits(eff_addr)
            .expect("eff_addr <= max_addr by construction");
        let parallel = data_width.div_ceil(shape.data_bits).max(1);
        candidates.push(Candidate {
            address,
            banks,
            series_bits,
            shape,
            parallel,
            needs_mux,
        });
    };
    consider(AddressPlan::Direct, false);
    if opts.allow_compaction {
        let plan = CompactionPlan::build(&mapped_stg);
        if plan.width < num_inputs {
            consider(AddressPlan::Compacted(plan), true);
        }
    }
    // Fewest BRAMs; tie-break toward no mux (zero aux LUTs).
    candidates.sort_by_key(|c| (c.banks * c.parallel, usize::from(c.needs_mux)));
    let Some(chosen) = candidates.into_iter().next() else {
        return Err(MapFsmError::DoesNotFit {
            needed_addr_bits: num_inputs + s,
            available: max_addr
                + opts.max_series_banks.next_power_of_two().trailing_zeros() as usize,
        });
    };
    let Candidate {
        address,
        banks,
        series_bits,
        shape,
        parallel,
        needs_mux: _,
    } = chosen;

    // Auxiliary logic.
    let input_mux = match &address {
        AddressPlan::Direct => None,
        AddressPlan::Compacted(plan) => Some(
            mux_network(&mapped_stg, &encoding, plan, opts.lut_map)
                .map_err(|e| MapFsmError::Logic(e.to_string()))?,
        ),
    };
    let outputs = if use_luts_for_outputs {
        let luts = moore_output_network(&mapped_stg, &encoding, &moore_outputs, opts.lut_map)
            .map_err(|e| MapFsmError::Logic(e.to_string()))?;
        OutputRealization::Luts(luts)
    } else {
        OutputRealization::InMemory
    };

    let rom = contents::logical_rom(
        &mapped_stg,
        &encoding,
        &address,
        if use_luts_for_outputs { 0 } else { num_outputs },
    );

    Ok(EmbFsm {
        stg: mapped_stg,
        source_name: stg.name().to_string(),
        encoding,
        shape,
        address,
        banks,
        series_bits,
        parallel,
        data_width,
        outputs,
        input_mux,
        rom,
    })
}

/// Synthesizes the Moore output functions `out_j(state bits)` as LUTs
/// (Fig. 3), with unused state codes as don't-cares.
fn moore_output_network(
    stg: &Stg,
    encoding: &StateEncoding,
    moore_outputs: &[Vec<bool>],
    map: MapOptions,
) -> Result<LutNetwork, logic_synth::techmap::MapError> {
    let s = encoding.num_bits();
    let mut dcset = Cover::empty(s);
    let used: std::collections::HashSet<u64> = stg.states().map(|st| encoding.code(st)).collect();
    for code in 0..1u64 << s {
        if !used.contains(&code) {
            dcset.push(Cube::minterm(s, code));
        }
    }
    let mut network = Network::new();
    let st_ids: Vec<_> = (0..s)
        .map(|k| network.add_input(format!("st_{k}")))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for j in 0..stg.num_outputs() {
        let mut onset = Cover::empty(s);
        for st in stg.states() {
            if moore_outputs[st.index()][j] {
                onset.push(Cube::minterm(s, encoding.code(st)));
            }
        }
        let minimized = espresso::minimize(&onset, &dcset).cover;
        let node = if minimized.is_empty() {
            network.add_constant(false)
        } else if minimized.cubes().iter().any(|c| c.num_literals() == 0) {
            network.add_constant(true)
        } else {
            network
                .add_logic(st_ids.clone(), pad_cover(&minimized, s))
                .expect("cover over all state bits")
        };
        network
            .add_output(format!("out_{j}"), node)
            .expect("node exists");
    }
    map_luts(&decompose2(&network), map)
}

/// Identity helper: the cover already spans `s` variables.
fn pad_cover(cover: &Cover, s: usize) -> Cover {
    debug_assert_eq!(cover.num_vars(), s);
    cover.clone()
}

impl EmbFsm {
    /// Emits the physical netlist: BRAM banks, address wiring, auxiliary
    /// LUTs and top-level ports. No enable logic is attached; see
    /// [`crate::clock_control`] for the Sec. 6 variant.
    #[must_use]
    pub fn to_netlist(&self) -> Netlist {
        self.to_netlist_with_enable(false).0
    }

    /// Like [`Self::to_netlist`], optionally reserving an enable input
    /// net. Returns the netlist and, when requested, the net that must be
    /// driven by enable logic (all BRAM `EN` pins are tied to it).
    #[must_use]
    pub fn to_netlist_with_enable(&self, with_enable: bool) -> (Netlist, Option<NetId>) {
        let (n, en, _) = self.build_netlist(with_enable, false);
        (n, en)
    }

    /// Full-control netlist builder: optionally reserves the enable net
    /// and/or adds a top-level write port (`w_addr_*`, `w_data_*`, `w_en`)
    /// on every BRAM for run-time content updates (single-bank mappings
    /// only; see [`crate::reconfig`]). Returns the netlist, the enable net
    /// and the write-port presence flag.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // bank/bit/address indexing reads clearest
    pub fn build_netlist(
        &self,
        with_enable: bool,
        with_write_port: bool,
    ) -> (Netlist, Option<NetId>, bool) {
        let stg = &self.stg;
        let s = self.num_state_bits();
        let num_inputs = stg.num_inputs();
        let num_outputs = stg.num_outputs();
        let input_bits = self.address.input_bits(num_inputs);

        let mut n = Netlist::new(format!("{}_emb", self.source_name));
        let in_nets: Vec<NetId> = (0..num_inputs)
            .map(|j| n.add_net(format!("in_{j}")))
            .collect();
        for (j, net) in in_nets.iter().enumerate() {
            n.add_input(format!("in_{j}"), *net);
        }

        // State-bit nets come from the (first-bank) BRAM outputs; with
        // multiple banks they come from the bank output mux.
        let st_nets: Vec<NetId> = (0..s).map(|k| n.add_net(format!("st_{k}"))).collect();
        let data_nets: Vec<NetId> = if matches!(self.outputs, OutputRealization::InMemory) {
            (0..num_outputs)
                .map(|j| n.add_net(format!("mem_out_{j}")))
                .collect()
        } else {
            Vec::new()
        };
        // Full logical data bus: state bits then in-memory outputs.
        let word_nets: Vec<NetId> = st_nets.iter().chain(data_nets.iter()).copied().collect();
        debug_assert_eq!(word_nets.len(), self.data_width);

        // Address input bits: raw inputs or mux outputs.
        let addr_input_nets: Vec<NetId> = match (&self.address, &self.input_mux) {
            (AddressPlan::Direct, _) => in_nets.clone(),
            (AddressPlan::Compacted(_), Some(mux)) => {
                let mux_inputs: Vec<NetId> =
                    in_nets.iter().chain(st_nets.iter()).copied().collect();
                crate::netlist_build::instantiate_luts(&mut n, mux, &mux_inputs, "mux")
            }
            (AddressPlan::Compacted(_), None) => unreachable!("compaction implies a mux"),
        };
        debug_assert_eq!(addr_input_nets.len(), input_bits);

        // Logical address: inputs low, state bits high.
        let logical_addr: Vec<NetId> = addr_input_nets
            .iter()
            .chain(st_nets.iter())
            .copied()
            .collect();

        let en_net = if with_enable {
            Some(n.add_net("bram_en"))
        } else {
            None
        };

        // Optional run-time write port (single-bank mappings only — a
        // banked write would additionally need bank-select decode).
        let write_port = if with_write_port && self.banks == 1 {
            let waddr: Vec<NetId> = (0..self.logical_addr_bits())
                .map(|b| n.add_net(format!("w_addr_{b}")))
                .collect();
            let wdata: Vec<NetId> = (0..self.data_width)
                .map(|b| n.add_net(format!("w_data_{b}")))
                .collect();
            let we = n.add_net("w_en");
            for (b, net) in waddr.iter().enumerate() {
                n.add_input(format!("w_addr_{b}"), *net);
            }
            for (b, net) in wdata.iter().enumerate() {
                n.add_input(format!("w_data_{b}"), *net);
            }
            n.add_input("w_en", we);
            Some((waddr, wdata, we))
        } else {
            None
        };

        // Ground net for unused address pins.
        let mut ground: Option<NetId> = None;
        let mut ground_net = |n: &mut Netlist| -> NetId {
            if let Some(g) = ground {
                return g;
            }
            let g = n.add_net("gnd");
            n.add_cell(Cell::Const {
                output: g,
                value: false,
            });
            ground = Some(g);
            g
        };

        // Per-bank data-out nets (before the bank mux).
        let low_addr_bits = self.logical_addr_bits() - self.series_bits;
        let mut bank_word_nets: Vec<Vec<NetId>> = Vec::with_capacity(self.banks);
        for bank in 0..self.banks {
            let mut bank_nets = Vec::with_capacity(self.data_width);
            for bit in 0..self.data_width {
                if self.banks == 1 {
                    bank_nets.push(word_nets[bit]);
                } else {
                    bank_nets.push(n.add_net(format!("bank{bank}_d{bit}")));
                }
            }
            bank_word_nets.push(bank_nets);
        }

        // Physical BRAMs: `parallel` slices per bank.
        for bank in 0..self.banks {
            for p in 0..self.parallel {
                let lo_bit = p * self.shape.data_bits;
                let hi_bit = ((p + 1) * self.shape.data_bits).min(self.data_width);
                let dout: Vec<NetId> = (lo_bit..hi_bit).map(|b| bank_word_nets[bank][b]).collect();
                // Address pins: logical low bits, padded with ground.
                let mut addr: Vec<NetId> = logical_addr[..low_addr_bits].to_vec();
                while addr.len() < self.shape.addr_bits {
                    addr.push(ground_net(&mut n));
                }
                // Init: slice of the logical ROM for this bank and bit range.
                let depth = self.shape.depth();
                let mut init = vec![0u64; depth];
                let bank_base = bank << low_addr_bits;
                for a in 0..(1usize << low_addr_bits).min(depth) {
                    let word = self.rom[bank_base + a];
                    init[a] = (word >> lo_bit) & mask_bits(hi_bit - lo_bit);
                }
                let write = write_port.as_ref().map(|(waddr, wdata, we)| {
                    let mut w_addr = waddr.clone();
                    while w_addr.len() < self.shape.addr_bits {
                        w_addr.push(ground_net(&mut n));
                    }
                    fpga_fabric::netlist::BramWrite {
                        addr: w_addr,
                        data: wdata[lo_bit..hi_bit].to_vec(),
                        we: *we,
                    }
                });
                n.add_cell(Cell::Bram {
                    shape: self.shape,
                    addr,
                    dout,
                    en: en_net,
                    init,
                    output_init: 0,
                    write,
                });
            }
        }

        // Bank output mux. The select must be the high state bits of the
        // address used for the *previous* read (the bank that produced the
        // currently-latched word), so they are registered in FFs fed by
        // the muxed state outputs — this also breaks what would otherwise
        // be a combinational cycle through the mux.
        if self.banks > 1 {
            let sel_nets: Vec<NetId> = (0..self.series_bits)
                .map(|k| n.add_net(format!("bank_sel{k}")))
                .collect();
            let s_base = s - self.series_bits;
            for (k, q) in sel_nets.iter().enumerate() {
                n.add_cell(Cell::Ff {
                    d: st_nets[s_base + k],
                    q: *q,
                    ce: en_net,
                    init: false,
                });
            }
            for bit in 0..self.data_width {
                // Build a 2^series_bits : 1 mux as a cascade of 2:1 LUT3s.
                let mut level: Vec<NetId> =
                    (0..self.banks).map(|b| bank_word_nets[b][bit]).collect();
                for (stage, sel) in sel_nets.iter().enumerate() {
                    let mut next = Vec::with_capacity(level.len() / 2);
                    for pair in level.chunks(2) {
                        let out = n.add_net(format!("bmux_s{stage}_b{bit}_{}", next.len()));
                        // LUT3: inputs [a, b, sel] -> sel ? b : a.
                        let mut truth = 0u64;
                        for m in 0..8u64 {
                            let a = m & 1 == 1;
                            let b2 = m >> 1 & 1 == 1;
                            let sv = m >> 2 & 1 == 1;
                            if if sv { b2 } else { a } {
                                truth |= 1 << m;
                            }
                        }
                        n.add_cell(Cell::Lut {
                            inputs: vec![pair[0], pair.get(1).copied().unwrap_or(pair[0]), *sel],
                            output: out,
                            truth,
                        });
                        next.push(out);
                    }
                    level = next;
                }
                // level[0] is the selected bit; alias onto the word net via
                // a buffer LUT (word nets were created up front).
                n.add_cell(Cell::Lut {
                    inputs: vec![level[0]],
                    output: word_nets[bit],
                    truth: 0b10,
                });
            }
        }

        // Outputs.
        match &self.outputs {
            OutputRealization::InMemory => {
                for (j, net) in data_nets.iter().enumerate() {
                    n.add_output(format!("out_{j}"), *net);
                }
            }
            OutputRealization::Luts(luts) => {
                let outs = crate::netlist_build::instantiate_luts(&mut n, luts, &st_nets, "out");
                for (j, net) in outs.iter().enumerate() {
                    n.add_output(format!("out_{j}"), *net);
                }
            }
        }
        (n, en_net, write_port.is_some())
    }
}

fn mask_bits(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::{sequence_detector_0101, traffic_light};

    #[test]
    fn detector_maps_to_single_bram() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        assert_eq!(emb.num_state_bits(), 2);
        assert_eq!(emb.logical_addr_bits(), 3);
        assert_eq!(emb.num_brams(), 1);
        assert_eq!(emb.banks, 1);
        assert!(matches!(emb.address, AddressPlan::Direct));
        assert!(matches!(emb.outputs, OutputRealization::InMemory));
        assert_eq!(emb.aux_luts(), 0);
        // Widest shape: 512x36.
        assert_eq!(emb.shape.data_bits, 36);
    }

    #[test]
    fn fig2_memory_map_matches_paper() {
        // The paper's Fig. 2: state A=00, and from A on input 0 the next
        // state is B with output 0. Our encoding assigns codes in reset-
        // first order: A=0, B=1, C=2, D=3 (A is reset).
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        // Address layout: [input, st0, st1]; word: [ns0, ns1, out].
        // A (00) + input 0 -> B (01), out 0: address 000 -> word 01 0.
        assert_eq!(emb.rom[0b000], 0b001);
        // A + input 1 -> A, out 0: address 001 -> 000.
        assert_eq!(emb.rom[0b001], 0b000);
        // D (11) + input 1 -> C (10), out 1: address 111 -> word: ns=2,
        // out=1 -> 0b110.
        assert_eq!(emb.rom[0b111], 0b110);
    }

    #[test]
    fn parallel_join_when_outputs_are_wide() {
        // 40 outputs + state bits exceed 36 data bits -> 2 BRAMs parallel.
        let mut b = fsm_model::stg::StgBuilder::new("wide", 1, 40);
        let a = b.state("A");
        let c = b.state("B");
        let ones = "1".repeat(40);
        let zeros = "0".repeat(40);
        b.transition(a, "1", c, &ones);
        b.transition(a, "0", a, &zeros);
        b.transition(c, "-", a, &zeros);
        let stg = b.build().unwrap();
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::InMemory,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        assert_eq!(emb.data_width, 41);
        assert_eq!(emb.parallel, 2);
        assert_eq!(emb.num_brams(), 2);
    }

    #[test]
    fn compaction_triggers_for_wide_inputs() {
        // 16 inputs, but each state reads at most 2: fits after compaction.
        let spec = fsm_model::generate::StgSpec {
            states: 8,
            inputs: 16,
            outputs: 2,
            transitions: 32,
            max_support: Some(2),
            ..fsm_model::generate::StgSpec::new("wide_in")
        };
        let stg = fsm_model::generate::generate(&spec).expect("generates");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        assert!(matches!(emb.address, AddressPlan::Compacted(_)));
        assert!(emb.input_mux.is_some());
        assert!(emb.aux_luts() > 0);
        assert_eq!(emb.banks, 1);
        assert!(emb.logical_addr_bits() <= 14);
    }

    #[test]
    fn series_fallback_when_compaction_disabled() {
        let spec = fsm_model::generate::StgSpec {
            states: 4,
            inputs: 13,
            outputs: 1,
            transitions: 16,
            max_support: Some(2),
            ..fsm_model::generate::StgSpec::new("wide13")
        };
        let stg = fsm_model::generate::generate(&spec).expect("generates");
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                allow_compaction: false,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        // 13 inputs + 2 state bits = 15 > 14: one extra bit -> 2 banks.
        assert_eq!(emb.banks, 2);
        assert_eq!(emb.series_bits, 1);
        assert!(emb.num_brams() >= 2);
    }

    #[test]
    fn does_not_fit_reported() {
        let spec = fsm_model::generate::StgSpec {
            states: 4,
            inputs: 20,
            outputs: 1,
            transitions: 16,
            max_support: Some(20),
            ..fsm_model::generate::StgSpec::new("huge")
        };
        let stg = fsm_model::generate::generate(&spec).expect("generates");
        let err = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                allow_compaction: false,
                allow_series: false,
                ..EmbOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MapFsmError::DoesNotFit { .. }));
    }

    #[test]
    fn moore_lut_outputs_for_moore_machine() {
        let stg = traffic_light();
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        assert!(matches!(emb.outputs, OutputRealization::Luts(_)));
        assert_eq!(emb.data_width, emb.num_state_bits());
        let n = emb.to_netlist();
        assert_eq!(n.outputs().len(), stg.num_outputs());
        n.validate().unwrap();
    }

    #[test]
    fn mealy_machine_transforms_for_lut_outputs() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        assert!(emb.stg.num_states() > stg.num_states(), "Moore split");
        assert!(matches!(emb.outputs, OutputRealization::Luts(_)));
    }

    #[test]
    fn one_hot_rejected() {
        let stg = sequence_detector_0101();
        let err = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                encoding: EncodingStyle::OneHotZero,
                ..EmbOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, MapFsmError::EncodingUnsupported(_)));
    }

    #[test]
    fn netlists_validate() {
        for opts in [
            EmbOptions::default(),
            EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        ] {
            let stg = sequence_detector_0101();
            let emb = map_fsm_into_embs(&stg, &opts).unwrap();
            emb.to_netlist().validate().unwrap();
            let (n, en) = emb.to_netlist_with_enable(true);
            // With an undriven enable net the netlist must NOT validate
            // until the caller wires it (API contract check).
            assert!(en.is_some());
            assert!(n.validate().is_err());
        }
    }
}
