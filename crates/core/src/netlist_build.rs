//! Helpers for instantiating technology-mapped logic into an FPGA netlist.

use fpga_fabric::netlist::{Cell, NetId, Netlist};
use logic_synth::techmap::{LutNetwork, Signal};

/// Instantiates a [`LutNetwork`] into `netlist`.
///
/// `input_nets[i]` supplies the net for the LUT network's primary input
/// `i`. Returns one net per LUT-network primary output (constant outputs
/// get a fresh net driven by a [`Cell::Const`]; passthrough outputs reuse
/// the input net directly).
///
/// # Panics
///
/// Panics if `input_nets.len()` differs from the LUT network's input
/// count.
pub fn instantiate_luts(
    netlist: &mut Netlist,
    luts: &LutNetwork,
    input_nets: &[NetId],
    prefix: &str,
) -> Vec<NetId> {
    assert_eq!(
        input_nets.len(),
        luts.inputs.len(),
        "LUT network input count mismatch"
    );
    let mut lut_nets: Vec<NetId> = Vec::with_capacity(luts.luts.len());
    let mut const_nets: [Option<NetId>; 2] = [None, None];
    let mut const_net = |netlist: &mut Netlist, v: bool| -> NetId {
        if let Some(n) = const_nets[usize::from(v)] {
            return n;
        }
        let n = netlist.add_net(format!("{prefix}_const{}", u8::from(v)));
        netlist.add_cell(Cell::Const {
            output: n,
            value: v,
        });
        const_nets[usize::from(v)] = Some(n);
        n
    };
    for (i, lut) in luts.luts.iter().enumerate() {
        let inputs: Vec<NetId> = lut
            .fanins
            .iter()
            .map(|f| match *f {
                Signal::Input(p) => input_nets[p],
                Signal::Lut(l) => lut_nets[l],
                Signal::Const(v) => const_net(netlist, v),
            })
            .collect();
        let output = netlist.add_net(format!("{prefix}_lut{i}"));
        netlist.add_cell(Cell::Lut {
            inputs,
            output,
            truth: lut.truth.as_u64(),
        });
        lut_nets.push(output);
    }
    luts.outputs
        .iter()
        .map(|(_, sig)| match *sig {
            Signal::Input(p) => input_nets[p],
            Signal::Lut(l) => lut_nets[l],
            Signal::Const(v) => const_net(netlist, v),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic_synth::cover::Cover;
    use logic_synth::cube::Cube;
    use logic_synth::decompose::decompose2;
    use logic_synth::network::Network;
    use logic_synth::techmap::{map_luts, MapOptions};
    use netsim::engine::Simulator;

    #[test]
    fn instantiated_logic_matches_lut_network() {
        // y = (a & b) | !c over 3 inputs.
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let cover = Cover::from_cubes(
            3,
            vec![
                Cube::from_pattern(&"11-".parse().unwrap()),
                Cube::from_pattern(&"--0".parse().unwrap()),
            ],
        );
        let y = net.add_logic(vec![a, b, c], cover).unwrap();
        net.add_output("y", y).unwrap();
        let luts = map_luts(&decompose2(&net), MapOptions::default()).unwrap();

        let mut n = Netlist::new("inst");
        let pins: Vec<NetId> = (0..3).map(|i| n.add_net(format!("p{i}"))).collect();
        for (i, p) in pins.iter().enumerate() {
            n.add_input(format!("p{i}"), *p);
        }
        let outs = instantiate_luts(&mut n, &luts, &pins, "u0");
        n.add_output("y", outs[0]);
        let mut sim = Simulator::new(&n).unwrap();
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            sim.clock(&bits);
            assert_eq!(sim.outputs()[0], luts.eval(&bits)[0], "m={m:03b}");
        }
    }

    #[test]
    fn constant_outputs_materialize() {
        let mut net = Network::new();
        let _a = net.add_input("a");
        let k = net.add_constant(true);
        net.add_output("one", k).unwrap();
        let luts = map_luts(&net, MapOptions::default()).unwrap();
        let mut n = Netlist::new("k");
        let p = n.add_net("p");
        n.add_input("a", p);
        let outs = instantiate_luts(&mut n, &luts, &[p], "c");
        n.add_output("one", outs[0]);
        let mut sim = Simulator::new(&n).unwrap();
        sim.clock(&[false]);
        assert_eq!(sim.outputs(), vec![true]);
    }
}
