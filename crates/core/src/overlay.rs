//! The FSM overlay backend: pre-placed, pre-routed BRAM bases whose
//! per-FSM "compile" is a memory-content update.
//!
//! The direct backend ([`crate::map`] + place & route) spends almost all
//! of its cold-path time on per-FSM physical design. But the paper's EMB
//! mapping makes an FSM's behavior a pure function of memory contents:
//! two machines with the same port counts and the same *padded* state
//! width produce byte-identical netlist structure — only the BRAM init
//! images differ. Wilson & Stitt's FSM overlay turns that into a
//! turnaround optimization: synthesize/place/route the structure
//! **once** per overlay class, store it as a content-addressed artifact,
//! and reduce every subsequent FSM compile in the class to
//!
//! 1. a capacity check against the class ladder,
//! 2. encoding the STG into the overlay's ROM image
//!    ([`crate::contents::logical_rom`] over a width-padded encoding),
//! 3. an equivalence proof via the usual `verify_rewrite` ladder.
//!
//! **Class identity.** An overlay class is `(inputs, state_bits,
//! outputs, banks)` where `state_bits` is the machine's natural binary
//! state width rounded up to a rung of [`STATE_BIT_RUNGS`]. Port counts
//! are not quantized — they are top-level IOBs, so two machines with
//! different port counts can never share a placement. State-width
//! padding is what buys reuse: every machine with up to `2^state_bits`
//! states and the same ports lands on the same base. The padded encoding
//! keeps all reachable words in the low addresses and zero-fills the
//! rest, so the base's geometry hosts any member of the class.
//!
//! **Capacity ladder.** A class needs `inputs + state_bits` logical
//! address bits. One BRAM supplies [`BramShape::max_addr_bits`] (14);
//! series banking adds at most [`MAX_SERIES_BITS`] more (4 banks), the
//! point where the bank-mux LUT overhead stops paying for itself on the
//! Virtex-II aspect ratios. Machines past 16 logical address bits get a
//! typed [`OverlayError::CapacityExceeded`] — the `auto` backend turns
//! that into a `Downgrade::OverlayCapacity` and runs the direct flow.

use crate::contents;
use crate::map::{AddressPlan, EmbFsm, OutputRealization};
use fpga_fabric::device::BramShape;
use fpga_fabric::netlist::Netlist;
use fsm_model::encoding::{EncodingStyle, StateEncoding};
use fsm_model::stg::Stg;
use std::fmt;

/// Padded state widths an overlay base may be built with. Quantizing to
/// a short ladder keeps the base family small (few artifacts to build
/// and cache) while wasting at most one address bit of BRAM depth.
pub const STATE_BIT_RUNGS: [usize; 7] = [2, 4, 6, 8, 10, 12, 14];

/// Maximum series (bank-select) address bits an overlay base may use:
/// 2 bits = 4 banks.
pub const MAX_SERIES_BITS: usize = 2;

/// Errors from overlay planning. All typed — the overlay backend never
/// panics on a machine that merely fails to fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The machine needs more logical address bits than the largest
    /// overlay base supplies.
    CapacityExceeded {
        /// `inputs + padded state bits` the machine needs.
        needed_addr_bits: usize,
        /// The ladder's ceiling (`max_addr_bits + MAX_SERIES_BITS`).
        available: usize,
    },
    /// The data word (`state_bits + outputs`) exceeds the 64-bit ROM
    /// word representation.
    WordTooWide {
        /// Requested word width.
        data_width: usize,
    },
    /// A planning invariant failed (encoding padding, shape lookup).
    Unsupported(String),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::CapacityExceeded {
                needed_addr_bits,
                available,
            } => write!(
                f,
                "FSM needs {needed_addr_bits} overlay address bits, largest base has {available}"
            ),
            OverlayError::WordTooWide { data_width } => {
                write!(f, "overlay word of {data_width} bits exceeds 64")
            }
            OverlayError::Unsupported(e) => write!(f, "overlay planning failed: {e}"),
        }
    }
}

impl std::error::Error for OverlayError {}

/// The resolved geometry of one overlay class: everything the base
/// netlist's structure depends on, and nothing the ROM contents do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayClass {
    /// Top-level FSM inputs the base exposes.
    pub inputs: usize,
    /// Padded state width (a [`STATE_BIT_RUNGS`] rung).
    pub state_bits: usize,
    /// Top-level FSM outputs the base exposes (in-memory realization).
    pub outputs: usize,
    /// Series banks (1, 2, or 4).
    pub banks: usize,
    /// Bank-select address bits (`log2 banks`).
    pub series_bits: usize,
    /// The BRAM aspect ratio every bank slice uses.
    pub shape: BramShape,
    /// BRAMs in parallel per bank.
    pub parallel: usize,
}

impl OverlayClass {
    /// Plans the class for a machine with the given port counts and
    /// state count.
    ///
    /// # Errors
    ///
    /// [`OverlayError::CapacityExceeded`] when `inputs + padded state
    /// bits` exceeds the ladder, [`OverlayError::WordTooWide`] when the
    /// data word passes 64 bits.
    pub fn plan(inputs: usize, states: usize, outputs: usize) -> Result<Self, OverlayError> {
        let max_addr = BramShape::max_addr_bits();
        let available = max_addr + MAX_SERIES_BITS;
        let natural = fsm_model::encoding::bits_for_states(states);
        let Some(state_bits) = STATE_BIT_RUNGS.iter().copied().find(|&r| r >= natural) else {
            return Err(OverlayError::CapacityExceeded {
                needed_addr_bits: inputs + natural,
                available,
            });
        };
        let addr_bits = inputs + state_bits;
        let (banks, series_bits, eff_addr) = if addr_bits <= max_addr {
            (1usize, 0usize, addr_bits)
        } else if addr_bits - max_addr <= MAX_SERIES_BITS {
            let sb = addr_bits - max_addr;
            (1usize << sb, sb, max_addr)
        } else {
            return Err(OverlayError::CapacityExceeded {
                needed_addr_bits: addr_bits,
                available,
            });
        };
        let data_width = state_bits + outputs;
        if data_width > 64 {
            return Err(OverlayError::WordTooWide { data_width });
        }
        let shape = BramShape::widest_with_addr_bits(eff_addr).ok_or_else(|| {
            OverlayError::Unsupported(format!("no BRAM shape with {eff_addr} address bits"))
        })?;
        let parallel = data_width.div_ceil(shape.data_bits).max(1);
        Ok(OverlayClass {
            inputs,
            state_bits,
            outputs,
            banks,
            series_bits,
            shape,
            parallel,
        })
    }

    /// The canonical class name, e.g. `ovl_i4_s6_o2_b1`. The base
    /// netlist is renamed to this so every member of the class hashes to
    /// the same content-addressed base artifact.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "ovl_i{}_s{}_o{}_b{}",
            self.inputs, self.state_bits, self.outputs, self.banks
        )
    }

    /// Logical address bits (`inputs + state_bits`).
    #[must_use]
    pub fn addr_bits(&self) -> usize {
        self.inputs + self.state_bits
    }

    /// Largest state count the class hosts.
    #[must_use]
    pub fn capacity_states(&self) -> usize {
        1usize << self.state_bits.min(usize::BITS as usize - 1)
    }

    /// Data bits per logical ROM word.
    #[must_use]
    pub fn data_width(&self) -> usize {
        self.state_bits + self.outputs
    }
}

/// One FSM compiled onto an overlay class: the padded EMB mapping (whose
/// ROM is the overlay's memory image) plus the class it targets.
#[derive(Debug, Clone)]
pub struct OverlayFsm {
    /// The padded mapping. Its netlist structure is shared by every
    /// member of [`OverlayFsm::class`]; only `emb.rom` (and thus the
    /// BRAM init images) is specific to this machine.
    pub emb: EmbFsm,
    /// The overlay class the machine landed on.
    pub class: OverlayClass,
}

impl OverlayFsm {
    /// This machine's netlist on the overlay: identical structure to
    /// [`OverlayFsm::base_netlist`], with the real ROM contents.
    #[must_use]
    pub fn fsm_netlist(&self) -> Netlist {
        self.emb.to_netlist()
    }

    /// The class's base netlist: the same structure with every BRAM init
    /// zeroed and the design renamed to the canonical class label. Two
    /// machines of one class produce byte-identical base netlists — the
    /// content address under which the base's placement and routing are
    /// stored, and reused by [`Netlist::replace_bram_init`]-style
    /// content swaps without re-running physical design.
    #[must_use]
    pub fn base_netlist(&self) -> Netlist {
        let mut base = self.fsm_netlist().with_zeroed_bram_init();
        base.name = self.class.label();
        base
    }
}

/// Compiles `stg` onto its overlay class: plans the geometry, pads the
/// binary encoding to the class's state width, and builds the ROM image
/// with [`contents::logical_rom`]. No physical design happens here —
/// that is the base artifact's job, done once per class.
///
/// # Errors
///
/// Typed [`OverlayError`] when the machine exceeds the capacity ladder.
pub fn overlay_fsm(stg: &Stg) -> Result<OverlayFsm, OverlayError> {
    let class = OverlayClass::plan(stg.num_inputs(), stg.num_states(), stg.num_outputs())?;
    let encoding = StateEncoding::assign_padded(stg, EncodingStyle::Binary, class.state_bits)
        .map_err(OverlayError::Unsupported)?;
    let address = AddressPlan::Direct;
    let rom = contents::logical_rom(stg, &encoding, &address, stg.num_outputs());
    let emb = EmbFsm {
        stg: stg.clone(),
        source_name: stg.name().to_string(),
        encoding,
        shape: class.shape,
        address,
        banks: class.banks,
        series_bits: class.series_bits,
        parallel: class.parallel,
        data_width: class.data_width(),
        outputs: OutputRealization::InMemory,
        input_mux: None,
        rom,
    };
    Ok(OverlayFsm { emb, class })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::sequence_detector_0101;
    use fsm_model::generate::{generate, StgSpec};

    #[test]
    fn class_plan_quantizes_state_bits() {
        let c = OverlayClass::plan(1, 4, 1).unwrap();
        assert_eq!(c.state_bits, 2);
        assert_eq!(c.banks, 1);
        let c = OverlayClass::plan(1, 5, 1).unwrap();
        assert_eq!(c.state_bits, 4);
        assert_eq!(c.capacity_states(), 16);
        // 17 states -> natural 5 -> rung 6.
        let c = OverlayClass::plan(1, 17, 1).unwrap();
        assert_eq!(c.state_bits, 6);
    }

    #[test]
    fn class_plan_series_and_reject() {
        // 10 inputs + 6 state bits = 16 -> 2 series bits, 4 banks.
        let c = OverlayClass::plan(10, 33, 2).unwrap();
        assert_eq!(c.state_bits, 6);
        assert_eq!(c.series_bits, 2);
        assert_eq!(c.banks, 4);
        assert_eq!(c.addr_bits(), 16);
        // 13 inputs + 4 state bits = 17 -> past the ladder.
        let err = OverlayClass::plan(13, 9, 1).unwrap_err();
        assert_eq!(
            err,
            OverlayError::CapacityExceeded {
                needed_addr_bits: 17,
                available: 16
            }
        );
    }

    #[test]
    fn class_label_is_canonical() {
        let c = OverlayClass::plan(4, 11, 3).unwrap();
        assert_eq!(c.label(), "ovl_i4_s4_o3_b1");
    }

    #[test]
    fn overlay_rom_matches_direct_semantics() {
        // The padded ROM must agree with the natural-width ROM on every
        // reachable address: same inputs, same state codes (padding only
        // widens the declared state field).
        let stg = sequence_detector_0101();
        let ovl = overlay_fsm(&stg).unwrap();
        assert_eq!(ovl.class.state_bits, 2);
        let natural = StateEncoding::assign(&stg, EncodingStyle::Binary);
        let direct_rom =
            contents::logical_rom(&stg, &natural, &AddressPlan::Direct, stg.num_outputs());
        // Same class width here (4 states = exactly 2 bits), so the ROMs
        // are identical word for word.
        assert_eq!(ovl.emb.rom, direct_rom);
    }

    #[test]
    fn padded_rom_places_words_at_padded_addresses() {
        // 3 states pad from 2 natural bits... still rung 2; use 5 states
        // (natural 3 -> rung 4) to see real padding.
        let spec = StgSpec {
            states: 5,
            inputs: 2,
            outputs: 1,
            transitions: 12,
            ..StgSpec::new("pad5")
        };
        let stg = generate(&spec).unwrap();
        let ovl = overlay_fsm(&stg).unwrap();
        assert_eq!(ovl.class.state_bits, 4);
        assert_eq!(ovl.emb.rom.len(), 1 << (2 + 4));
        // State codes stay < 8, so the top half of the state field is
        // never addressed: those words are zero-filled.
        for (addr, &word) in ovl.emb.rom.iter().enumerate() {
            let code = addr >> 2;
            if code >= 8 {
                assert_eq!(word, 0, "address {addr:#x}");
            }
        }
    }

    #[test]
    fn base_netlist_is_class_invariant() {
        // Two different machines of one class: identical base netlists.
        let mk = |seed: u64| {
            let spec = StgSpec {
                states: 6,
                inputs: 3,
                outputs: 2,
                transitions: 18,
                seed,
                ..StgSpec::new("cls")
            };
            generate(&spec).unwrap()
        };
        let a = overlay_fsm(&mk(1)).unwrap();
        let b = overlay_fsm(&mk(9)).unwrap();
        assert_eq!(a.class, b.class);
        let base_a = a.base_netlist();
        let base_b = b.base_netlist();
        assert_eq!(base_a.name, a.class.label());
        assert_eq!(format!("{base_a:?}"), format!("{base_b:?}"));
        base_a.validate().unwrap();
        // And the real FSM netlists differ from the base only in init
        // contents: same structure counts.
        let real = a.fsm_netlist();
        assert_eq!(real.num_nets(), base_a.num_nets());
        assert_eq!(real.cell_counts(), base_a.cell_counts());
    }

    #[test]
    fn four_bank_overlay_netlist_validates() {
        let spec = StgSpec {
            states: 20,
            inputs: 10,
            outputs: 2,
            transitions: 60,
            max_support: Some(3),
            ..StgSpec::new("wide")
        };
        let stg = generate(&spec).unwrap();
        let ovl = overlay_fsm(&stg).unwrap();
        assert_eq!(ovl.class.banks, 4);
        ovl.fsm_netlist().validate().unwrap();
        ovl.base_netlist().validate().unwrap();
    }
}
