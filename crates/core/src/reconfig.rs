//! Run-time reconfiguration through the BRAM's second port.
//!
//! The paper's ECO argument (Sec. 4.2) — "quick and easy change in the
//! FSM's functionality by directly changing the EMB's contents. No design
//! recompilation necessary" — assumes the bitstream is rewritten between
//! runs. Virtex-II block RAMs are dual-ported, so the same idea works
//! *while the machine runs*: expose the second port as a write interface
//! and stream in the new transition table word by word.
//!
//! This module builds that variant of the EMB netlist and computes the
//! minimal word-update sequence between two mappings. The read port is
//! read-first, so an in-flight read the same cycle as a write to the same
//! address still returns the old word — updates are glitch-free as long
//! as the machine is *parked* in states whose words are rewritten last
//! (simplest: park in the reset state and rewrite its words last, as
//! [`update_sequence`] orders them).

use crate::eco::{self, EcoError};
use crate::map::EmbFsm;
use fpga_fabric::netlist::Netlist;
use fsm_model::stg::Stg;
use netsim::engine::Simulator;

/// An EMB FSM netlist with a live write port.
#[derive(Debug, Clone)]
pub struct ReconfigurableFsm {
    /// The netlist (top ports: `in_*`, `out_*`, then `w_addr_*`,
    /// `w_data_*`, `w_en`).
    pub netlist: Netlist,
    /// Logical address width of the write port.
    pub addr_bits: usize,
    /// Data width of the write port.
    pub data_bits: usize,
    /// Number of FSM inputs (the leading input ports).
    pub fsm_inputs: usize,
}

/// Errors from reconfigurable-netlist construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// Banked (series) mappings would need bank-select write decode.
    BankedMappingUnsupported {
        /// Banks in the mapping.
        banks: usize,
    },
    /// The underlying ECO rewrite failed.
    Eco(EcoError),
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::BankedMappingUnsupported { banks } => {
                write!(f, "write port unsupported for {banks}-bank mappings")
            }
            ReconfigError::Eco(e) => write!(f, "eco: {e}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<EcoError> for ReconfigError {
    fn from(e: EcoError) -> Self {
        ReconfigError::Eco(e)
    }
}

/// Builds the write-port variant of a mapping's netlist.
///
/// # Errors
///
/// Fails for banked (series) mappings.
pub fn with_write_port(emb: &EmbFsm) -> Result<ReconfigurableFsm, ReconfigError> {
    if emb.banks != 1 {
        return Err(ReconfigError::BankedMappingUnsupported { banks: emb.banks });
    }
    let (netlist, _, has_write) = emb.build_netlist(false, true);
    debug_assert!(has_write);
    Ok(ReconfigurableFsm {
        netlist,
        addr_bits: emb.logical_addr_bits(),
        data_bits: emb.data_width,
        fsm_inputs: emb.stg.num_inputs(),
    })
}

/// The word updates turning `old` into the ECO rewrite for `new_stg`,
/// ordered so that words of the reset state's address block come last
/// (safe while parked in the reset state).
///
/// # Errors
///
/// Propagates [`EcoError`] (frozen-mapping constraints).
pub fn update_sequence(old: &EmbFsm, new_stg: &Stg) -> Result<Vec<(u64, u64)>, ReconfigError> {
    let rewrite = eco::rewrite(old, new_stg)?;
    let input_bits = old.address.input_bits(old.stg.num_inputs());
    let reset_block = |addr: u64| -> bool { addr >> input_bits == 0 };
    let mut updates: Vec<(u64, u64)> = rewrite
        .emb
        .rom
        .iter()
        .enumerate()
        .zip(&old.rom)
        .filter(|((_, new), old)| new != old)
        .map(|((a, new), _)| (a as u64, *new))
        .collect();
    updates.sort_by_key(|(a, _)| (reset_block(*a), *a));
    Ok(updates)
}

impl ReconfigurableFsm {
    /// Applies one content update per clock while holding the FSM inputs
    /// at `park_inputs` (inputs that keep the machine in its current
    /// state). Returns the number of writes applied.
    ///
    /// # Panics
    ///
    /// Panics if `park_inputs.len() != self.fsm_inputs` or an update
    /// address/word exceeds the port width.
    pub fn apply_updates(
        &self,
        sim: &mut Simulator<'_>,
        updates: &[(u64, u64)],
        park_inputs: &[bool],
    ) -> usize {
        assert_eq!(park_inputs.len(), self.fsm_inputs, "park input width");
        for (addr, word) in updates {
            assert!(*addr < 1 << self.addr_bits, "address out of range");
            assert!(
                self.data_bits >= 64 || *word < 1 << self.data_bits,
                "word out of range"
            );
            let mut vec = park_inputs.to_vec();
            vec.extend((0..self.addr_bits).map(|b| addr >> b & 1 == 1));
            vec.extend((0..self.data_bits).map(|b| word >> b & 1 == 1));
            vec.push(true); // w_en
            sim.clock(&vec);
        }
        updates.len()
    }

    /// One idle cycle with the write port de-asserted.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.fsm_inputs`.
    pub fn clock_without_write(&self, sim: &mut Simulator<'_>, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.fsm_inputs, "input width");
        let mut vec = inputs.to_vec();
        vec.extend(std::iter::repeat_n(
            false,
            self.addr_bits + self.data_bits + 1,
        ));
        sim.clock(&vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_fsm_into_embs, EmbOptions};
    use fsm_model::benchmarks::sequence_detector_0101;
    use fsm_model::simulate::StgSimulator;
    use fsm_model::stg::StgBuilder;

    fn detector_0110() -> Stg {
        let mut b = StgBuilder::new("seq0110", 1, 1);
        let a = b.state("A");
        let s_b = b.state("B");
        let c = b.state("C");
        let d = b.state("D");
        b.transition(a, "0", s_b, "0");
        b.transition(a, "1", a, "0");
        b.transition(s_b, "1", c, "0");
        b.transition(s_b, "0", s_b, "0");
        b.transition(c, "1", d, "0");
        b.transition(c, "0", s_b, "0");
        b.transition(d, "0", s_b, "1");
        b.transition(d, "1", a, "0");
        b.build().unwrap()
    }

    #[test]
    fn live_retune_from_0101_to_0110() {
        let old_stg = sequence_detector_0101();
        let new_stg = detector_0110();
        let emb = map_fsm_into_embs(&old_stg, &EmbOptions::default()).unwrap();
        let rc = with_write_port(&emb).unwrap();
        rc.netlist.validate().unwrap();

        let mut sim = Simulator::new(&rc.netlist).unwrap();
        // Phase 1: behave as the 0101 detector.
        let mut oracle = StgSimulator::new(&old_stg);
        for bits in [0u8, 1, 0, 1, 1, 0, 1, 0, 1] {
            let want = oracle.clock(&[bits == 1]).to_vec();
            let got = rc.clock_without_write(&mut sim, &[bits == 1]);
            assert_eq!(got[0], want[0], "pre-update behaviour");
        }
        // Park in state A (input 1 self-loops there) with zero outputs.
        rc.clock_without_write(&mut sim, &[true]);
        rc.clock_without_write(&mut sim, &[true]);

        // Phase 2: stream the update while the clock keeps running.
        let updates = update_sequence(&emb, &new_stg).unwrap();
        assert!(!updates.is_empty());
        let applied = rc.apply_updates(&mut sim, &updates, &[true]);
        assert_eq!(applied, updates.len());

        // Phase 3: the SAME running netlist is now the 0110 detector.
        // Parked in A with zero outputs == the new machine's reset state.
        let mut oracle = StgSimulator::new(&new_stg);
        let mut x: u64 = 0x1234_5678_9abc_def1;
        for cycle in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let bit = x & 1 == 1;
            let want = oracle.clock(&[bit]).to_vec();
            let got = rc.clock_without_write(&mut sim, &[bit]);
            assert_eq!(got[0], want[0], "post-update divergence at {cycle}");
        }
    }

    #[test]
    fn write_port_is_inert_when_disabled() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let rc = with_write_port(&emb).unwrap();
        // With w_en held low the machine is cycle-exact with the oracle.
        let mut sim = Simulator::new(&rc.netlist).unwrap();
        let mut oracle = StgSimulator::new(&stg);
        for i in 0..600u32 {
            let bit = i.wrapping_mul(2654435761) >> 31 & 1 == 1;
            let want = oracle.clock(&[bit]).to_vec();
            let got = rc.clock_without_write(&mut sim, &[bit]);
            assert_eq!(got[0], want[0]);
        }
    }

    #[test]
    fn simulator_reset_restores_original_contents() {
        let old_stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&old_stg, &EmbOptions::default()).unwrap();
        let rc = with_write_port(&emb).unwrap();
        let mut sim = Simulator::new(&rc.netlist).unwrap();
        let updates = update_sequence(&emb, &detector_0110()).unwrap();
        rc.apply_updates(&mut sim, &updates, &[true]);
        sim.reset();
        // Back to the 0101 detector.
        let mut oracle = StgSimulator::new(&old_stg);
        for bits in [0u8, 1, 0, 1] {
            let want = oracle.clock(&[bits == 1]).to_vec();
            let got = rc.clock_without_write(&mut sim, &[bits == 1]);
            assert_eq!(got[0], want[0]);
        }
    }

    #[test]
    fn banked_mappings_are_rejected() {
        let spec = fsm_model::generate::StgSpec {
            states: 4,
            inputs: 13,
            outputs: 1,
            transitions: 16,
            max_support: Some(13),
            ..fsm_model::generate::StgSpec::new("wide13")
        };
        let stg = fsm_model::generate::generate(&spec).expect("generates");
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                allow_compaction: false,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        assert!(emb.banks > 1);
        assert!(matches!(
            with_write_port(&emb),
            Err(ReconfigError::BankedMappingUnsupported { .. })
        ));
    }

    #[test]
    fn update_sequence_orders_reset_block_last() {
        let old_stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&old_stg, &EmbOptions::default()).unwrap();
        let updates = update_sequence(&emb, &detector_0110()).unwrap();
        // Reset-state words (state code 0 -> high address bits 0) last.
        let input_bits = 1;
        let first_reset = updates.iter().position(|(a, _)| a >> input_bits == 0);
        if let Some(pos) = first_reset {
            assert!(
                updates[pos..].iter().all(|(a, _)| a >> input_bits == 0),
                "reset-block updates must come last: {updates:?}"
            );
        }
    }
}
