//! STG-aware stimulus generation.
//!
//! Table 3 of the paper reports clock-control savings for "an average case
//! (with 50% idle states)". [`idle_biased`] steers a fraction of the input
//! vectors into the current state's idle self-loops so the run exhibits a
//! chosen idle occupancy; the remaining cycles draw uniform random
//! vectors, like the paper's baseline stimulus.

use fsm_model::simulate::StgSimulator;
use fsm_model::stg::Stg;
use xrand::SmallRng;

/// Generates `cycles` input vectors steering the machine so that close to
/// `idle_prob` of the cycles are idle (no state or output change).
///
/// The generator runs closed-loop: it tracks the idle fraction realized
/// so far and steers toward idle whenever it is behind the target, so the
/// achieved occupancy converges on `idle_prob` even when entering an idle
/// condition costs a transient (the output latching cycle). Machines
/// without reachable self-loops saturate below the target; measure the
/// outcome with [`fsm_model::simulate::idle_fraction`].
#[must_use]
pub fn idle_biased(stg: &Stg, cycles: usize, idle_prob: f64, seed: u64) -> Vec<Vec<bool>> {
    let target = idle_prob.clamp(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1d1e_b1a5_ed00_0001);
    let mut sim = StgSimulator::new(stg);
    let mut vectors = Vec::with_capacity(cycles);
    let mut idle_cycles = 0usize;
    for cycle in 0..cycles {
        let behind = (idle_cycles as f64) < target * cycle as f64;
        // Mostly feedback-driven, with a little randomness to avoid
        // lock-step artifacts.
        let want_idle = if rng.random_bool(0.1) {
            rng.random_bool(target)
        } else {
            behind
        };
        let vector = if want_idle {
            pick_idle_vector(stg, &sim, &mut rng)
        } else {
            pick_active_vector(stg, &sim, &mut rng)
        }
        .unwrap_or_else(|| {
            (0..stg.num_inputs())
                .map(|_| rng.random_bool(0.5))
                .collect()
        });
        let before = (sim.state(), sim.outputs().to_vec());
        sim.clock(&vector);
        if sim.state() == before.0 && sim.outputs() == before.1 {
            idle_cycles += 1;
        }
        vectors.push(vector);
    }
    vectors
}

/// Picks a random minterm of a transition that *changes* state or
/// outputs, if one exists — so the non-idle budget really is non-idle.
fn pick_active_vector(stg: &Stg, sim: &StgSimulator<'_>, rng: &mut SmallRng) -> Option<Vec<bool>> {
    let state = sim.state();
    let held = sim.outputs();
    let active: Vec<_> = stg
        .transitions_from(state)
        .filter(|t| t.to != state || t.output.resolve_zero() != held)
        .collect();
    if active.is_empty() {
        return None;
    }
    let t = active[rng.random_range(0..active.len())];
    for _ in 0..4 {
        let vector: Vec<bool> = t
            .input
            .trits()
            .iter()
            .map(|tr| tr.value().unwrap_or_else(|| rng.random_bool(0.5)))
            .collect();
        let (next, outs) = stg.step(state, &vector);
        if next != state || outs != held {
            return Some(vector);
        }
    }
    None
}

/// Picks a random minterm of a self-loop whose output equals the latched
/// outputs of the current state, if one exists.
fn pick_idle_vector(stg: &Stg, sim: &StgSimulator<'_>, rng: &mut SmallRng) -> Option<Vec<bool>> {
    let state = sim.state();
    let held = sim.outputs();
    let matching: Vec<_> = stg
        .transitions_from(state)
        .filter(|t| t.to == state && t.output.resolve_zero() == held)
        .collect();
    // Fall back to any self-loop: it only holds the state this cycle, but
    // the *next* pick will find its output already latched and idle fully.
    let any_loop: Vec<_>;
    let loops = if matching.is_empty() {
        any_loop = stg
            .transitions_from(state)
            .filter(|t| t.to == state)
            .collect();
        &any_loop
    } else {
        &matching
    };
    if loops.is_empty() {
        return None;
    }
    let t = loops[rng.random_range(0..loops.len())];
    // Random minterm of the cube, then confirm priority resolution really
    // takes this transition (an earlier overlapping transition could
    // shadow it).
    for _ in 0..4 {
        let vector: Vec<bool> = t
            .input
            .trits()
            .iter()
            .map(|tr| tr.value().unwrap_or_else(|| rng.random_bool(0.5)))
            .collect();
        let (next, _) = stg.step(state, &vector);
        if next == state {
            return Some(vector);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::{rotary_sequencer, sequence_detector_0101};
    use fsm_model::simulate::{idle_fraction, trace};

    #[test]
    fn idle_bias_reaches_target_on_idle_friendly_machine() {
        let stg = rotary_sequencer();
        let stim = idle_biased(&stg, 2000, 0.5, 7);
        let tr = trace(&stg, stim);
        let f = idle_fraction(&stg, &tr);
        assert!(
            (0.35..=0.65).contains(&f),
            "idle fraction {f:.2} should be near 0.5"
        );
    }

    #[test]
    fn zero_bias_behaves_like_random() {
        let stg = rotary_sequencer();
        let stim = idle_biased(&stg, 1000, 0.0, 8);
        let tr = trace(&stg, stim);
        // Random halt input is 1 half the time; consecutive halts idle.
        let f = idle_fraction(&stg, &tr);
        assert!(f < 0.5, "unbiased idle fraction {f:.2}");
    }

    #[test]
    fn high_bias_on_detector() {
        // The 0101 detector has self-loops in states A (on 1) and B (on 0).
        let stg = sequence_detector_0101();
        let stim = idle_biased(&stg, 2000, 0.9, 9);
        let tr = trace(&stg, stim);
        let f = idle_fraction(&stg, &tr);
        assert!(f > 0.6, "idle fraction {f:.2} with 0.9 bias");
    }

    #[test]
    fn idle_occupancy_statistically_tight_over_10k_cycles() {
        // Table 3's "average case with 50% idle": over a long run the
        // closed-loop controller must hold the occupancy within ±5
        // percentage points of the target, not merely "near" it.
        let stg = rotary_sequencer();
        let stim = idle_biased(&stg, 10_000, 0.5, 42);
        let tr = trace(&stg, stim);
        let f = idle_fraction(&stg, &tr);
        assert!(
            (0.45..=0.55).contains(&f),
            "idle occupancy {f:.3} drifted more than 5 points from the 0.5 target"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let stg = rotary_sequencer();
        assert_eq!(
            idle_biased(&stg, 100, 0.5, 1),
            idle_biased(&stg, 100, 0.5, 1)
        );
        assert_ne!(
            idle_biased(&stg, 100, 0.5, 1),
            idle_biased(&stg, 100, 0.5, 2)
        );
    }
}
