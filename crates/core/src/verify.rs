//! Lockstep equivalence checking against the STG oracle.
//!
//! Every hardware artifact this crate produces — the FF baseline, the EMB
//! mapping in all its variants, the clock-controlled versions, ECO
//! rewrites — is verified by simulating it next to
//! [`fsm_model::simulate::StgSimulator`] over a deterministic random
//! stimulus and comparing the FSM outputs cycle by cycle.

use fpga_fabric::netlist::{Netlist, NetlistError};
use fsm_model::simulate::StgSimulator;
use fsm_model::stg::Stg;
use netsim::engine::Simulator;
use netsim::stimulus;
use std::fmt;

/// When the implementation's outputs are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputTiming {
    /// Outputs are latched (BRAM FSM): compare the post-edge values.
    Registered,
    /// Outputs are combinational Mealy logic (FF FSM): compare the
    /// settled pre-edge values.
    Combinational,
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The netlist is structurally invalid.
    Invalid(NetlistError),
    /// Outputs diverged from the oracle.
    Mismatch {
        /// Cycle of first divergence (0-based).
        cycle: usize,
        /// The inputs applied that cycle.
        inputs: Vec<bool>,
        /// Oracle outputs.
        expected: Vec<bool>,
        /// Implementation outputs.
        got: Vec<bool>,
    },
    /// The netlist exposes fewer `out_*` ports than the machine has
    /// outputs.
    PortCount {
        /// Ports found.
        found: usize,
        /// Outputs expected.
        expected: usize,
    },
    /// Exhaustive verification refused: too many inputs to enumerate.
    InputsTooWide {
        /// The machine's input count.
        inputs: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Invalid(e) => write!(f, "invalid netlist: {e}"),
            VerifyError::Mismatch {
                cycle,
                inputs,
                expected,
                got,
            } => write!(
                f,
                "output mismatch at cycle {cycle} (inputs {inputs:?}): expected {expected:?}, got {got:?}"
            ),
            VerifyError::PortCount { found, expected } => {
                write!(f, "netlist has {found} output ports, machine has {expected}")
            }
            VerifyError::InputsTooWide { inputs, limit } => {
                write!(f, "{inputs} inputs exceed the exhaustive limit of {limit}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<NetlistError> for VerifyError {
    fn from(e: NetlistError) -> Self {
        VerifyError::Invalid(e)
    }
}

/// Verifies `netlist` against `stg` over `cycles` random vectors.
///
/// The netlist's first `stg.num_outputs()` output ports are compared;
/// additional ports (debug state bits) are ignored. The netlist's inputs
/// must be the machine's inputs in order (extra inputs are not allowed —
/// enable logic must be internal).
///
/// # Errors
///
/// Returns the first divergence found, or a structural error.
pub fn verify_against_stg(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    cycles: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    if netlist.outputs().len() < stg.num_outputs() {
        return Err(VerifyError::PortCount {
            found: netlist.outputs().len(),
            expected: stg.num_outputs(),
        });
    }
    let mut hw = Simulator::new(netlist)?;
    let mut oracle = StgSimulator::new(stg);
    for (cycle, inputs) in stimulus::random(stg.num_inputs(), cycles, seed)
        .into_iter()
        .enumerate()
    {
        let expected = oracle.clock(&inputs).to_vec();
        hw.clock(&inputs);
        let got_all = match timing {
            OutputTiming::Registered => hw.outputs(),
            OutputTiming::Combinational => hw.pre_edge_outputs().to_vec(),
        };
        let got = got_all[..stg.num_outputs()].to_vec();
        if got != expected {
            return Err(VerifyError::Mismatch {
                cycle,
                inputs,
                expected,
                got,
            });
        }
    }
    Ok(())
}

/// Exhaustively verifies `netlist` against `stg` by product-machine
/// reachability: starting from the joint reset state, every reachable
/// (oracle state, implementation state) pair is expanded under **all**
/// `2^I` input vectors, and outputs are compared on each edge. Unlike
/// [`verify_against_stg`] this is a proof, not a sample — any reachable
/// divergence is found.
///
/// The implementation state is the vector of its sequential elements
/// (FF values and BRAM output latches), so the walk terminates: the
/// joint state space is finite and only reachable states are visited.
///
/// # Errors
///
/// Returns a [`VerifyError`] with a minimal-length witness input trace on
/// divergence, or `InputsTooWide` when `2^I` enumeration is infeasible.
pub fn verify_exhaustive(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    max_inputs: usize,
) -> Result<ExhaustiveReport, VerifyError> {
    if stg.num_inputs() > max_inputs || stg.num_inputs() > 20 {
        return Err(VerifyError::InputsTooWide {
            inputs: stg.num_inputs(),
            limit: max_inputs.min(20),
        });
    }
    if netlist.outputs().len() < stg.num_outputs() {
        return Err(VerifyError::PortCount {
            found: netlist.outputs().len(),
            expected: stg.num_outputs(),
        });
    }
    let base = Simulator::new(netlist)?;

    // Joint state key: oracle (state, latched outputs) + implementation
    // sequential snapshot.
    type Key = (u32, Vec<bool>, Vec<bool>);
    let snapshot = |sim: &Simulator<'_>| -> Vec<bool> {
        let mut v = Vec::new();
        for cell in netlist.cells() {
            match cell {
                fpga_fabric::netlist::Cell::Ff { q, .. } => v.push(sim.value(*q)),
                fpga_fabric::netlist::Cell::Bram { dout, .. } => {
                    v.extend(dout.iter().map(|d| sim.value(*d)));
                }
                _ => {}
            }
        }
        v
    };

    let oracle0 = StgSimulator::new(stg);
    let key0: Key = (
        oracle0.state().0,
        oracle0.outputs().to_vec(),
        snapshot(&base),
    );
    let mut seen: std::collections::HashSet<Key> = std::collections::HashSet::new();
    seen.insert(key0.clone());
    // BFS queue holds (oracle, implementation, input trace to reach it).
    let mut queue: std::collections::VecDeque<(StgSimulator<'_>, Simulator<'_>, Vec<Vec<bool>>)> =
        std::collections::VecDeque::new();
    queue.push_back((oracle0, base, Vec::new()));

    let num_inputs = stg.num_inputs();
    let mut states_explored = 0usize;
    let mut edges_checked = 0usize;
    while let Some((oracle, hw, trace)) = queue.pop_front() {
        states_explored += 1;
        for m in 0..1u64 << num_inputs {
            let inputs: Vec<bool> = (0..num_inputs).map(|i| m >> i & 1 == 1).collect();
            let mut o2 = oracle.clone();
            let mut h2 = hw.clone();
            let expected = o2.clock(&inputs).to_vec();
            h2.clock(&inputs);
            let got_all = match timing {
                OutputTiming::Registered => h2.outputs(),
                OutputTiming::Combinational => h2.pre_edge_outputs().to_vec(),
            };
            let got = got_all[..stg.num_outputs()].to_vec();
            edges_checked += 1;
            if got != expected {
                let mut witness = trace.clone();
                witness.push(inputs.clone());
                return Err(VerifyError::Mismatch {
                    cycle: witness.len() - 1,
                    inputs,
                    expected,
                    got,
                });
            }
            let key: Key = (o2.state().0, o2.outputs().to_vec(), snapshot(&h2));
            if seen.insert(key) {
                let mut w = trace.clone();
                w.push(inputs);
                queue.push_back((o2, h2, w));
            }
        }
    }
    Ok(ExhaustiveReport {
        states_explored,
        edges_checked,
    })
}

/// Statistics of a completed exhaustive verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveReport {
    /// Reachable joint (oracle, implementation) states explored.
    pub states_explored: usize,
    /// Transitions (state × input vector) checked.
    pub edges_checked: usize,
}

/// How a rewrite was verified: by the exhaustive product-walk proof, or —
/// when the input space is too wide to enumerate — by sampled lockstep
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationMethod {
    /// Every reachable joint state was expanded under all input vectors:
    /// a proof of equivalence, with walk statistics.
    Exhaustive(ExhaustiveReport),
    /// Random-stimulus lockstep comparison over this many cycles (the
    /// typed fallback for machines with too many inputs to enumerate).
    Sampled {
        /// Cycles simulated.
        cycles: usize,
    },
}

impl VerificationMethod {
    /// True when the rewrite was proven, not sampled.
    #[must_use]
    pub fn is_exhaustive(&self) -> bool {
        matches!(self, VerificationMethod::Exhaustive(_))
    }
}

/// Verification ladder for netlist-producing rewrites (EMB mapping with
/// compaction / Mealy→Moore output transform / series banks, and the
/// clock-control rewrite): run the exhaustive product-walk proof whenever
/// the machine's input count permits (`inputs ≤ min(max_inputs, 20)`),
/// and fall back to sampled lockstep simulation — a typed downgrade, not
/// a silent one — above that.
///
/// # Errors
///
/// Any divergence from the oracle, by either rung, as a [`VerifyError`].
pub fn verify_rewrite(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    max_inputs: usize,
    cycles: usize,
    seed: u64,
) -> Result<VerificationMethod, VerifyError> {
    match verify_exhaustive(netlist, stg, timing, max_inputs) {
        Ok(report) => Ok(VerificationMethod::Exhaustive(report)),
        Err(VerifyError::InputsTooWide { .. }) => {
            verify_against_stg(netlist, stg, timing, cycles, seed)?;
            Ok(VerificationMethod::Sampled { cycles })
        }
        Err(e) => Err(e),
    }
}

/// Exhaustively decides whether two netlists are observationally
/// equivalent: a BFS product walk from the joint reset state expands
/// every reachable (state of `a`, state of `b`) pair under all `2^I`
/// input vectors and compares the registered output ports on each edge.
///
/// This is the ground-truth oracle the mutation tests calibrate against:
/// a mutation is *observable* iff this returns `false`, and a sound and
/// complete verifier must flag exactly the observable mutants.
///
/// Both netlists must expose the same input and output port counts.
///
/// # Errors
///
/// Returns `InputsTooWide` when `2^I` enumeration is infeasible,
/// `PortCount` on mismatched interfaces, or a structural error.
pub fn netlists_equivalent(
    a: &Netlist,
    b: &Netlist,
    max_inputs: usize,
) -> Result<bool, VerifyError> {
    let num_inputs = a.inputs().len();
    if num_inputs > max_inputs || num_inputs > 20 {
        return Err(VerifyError::InputsTooWide {
            inputs: num_inputs,
            limit: max_inputs.min(20),
        });
    }
    if b.inputs().len() != num_inputs || b.outputs().len() != a.outputs().len() {
        return Err(VerifyError::PortCount {
            found: b.outputs().len(),
            expected: a.outputs().len(),
        });
    }
    let snapshot = |n: &Netlist, sim: &Simulator<'_>| -> Vec<bool> {
        let mut v = Vec::new();
        for cell in n.cells() {
            match cell {
                fpga_fabric::netlist::Cell::Ff { q, .. } => v.push(sim.value(*q)),
                fpga_fabric::netlist::Cell::Bram { dout, .. } => {
                    v.extend(dout.iter().map(|d| sim.value(*d)));
                }
                _ => {}
            }
        }
        v
    };
    let sa = Simulator::new(a)?;
    let sb = Simulator::new(b)?;
    let mut seen = std::collections::HashSet::new();
    seen.insert((snapshot(a, &sa), snapshot(b, &sb)));
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((sa, sb));
    while let Some((sa, sb)) = queue.pop_front() {
        for m in 0..1u64 << num_inputs {
            let inputs: Vec<bool> = (0..num_inputs).map(|i| m >> i & 1 == 1).collect();
            let mut a2 = sa.clone();
            let mut b2 = sb.clone();
            a2.clock(&inputs);
            b2.clock(&inputs);
            if a2.outputs() != b2.outputs() {
                return Ok(false);
            }
            if seen.insert((snapshot(a, &a2), snapshot(b, &b2))) {
                queue.push_back((a2, b2));
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ff_netlist;
    use crate::map::{map_fsm_into_embs, EmbOptions, OutputMode};
    use fsm_model::benchmarks::{rotary_sequencer, sequence_detector_0101, traffic_light};
    use logic_synth::synth::{synthesize, SynthOptions};

    #[test]
    fn ff_baseline_verifies_combinational() {
        for stg in [
            sequence_detector_0101(),
            traffic_light(),
            rotary_sequencer(),
        ] {
            let synth = synthesize(&stg, SynthOptions::default()).unwrap();
            let (n, _) = ff_netlist(&synth, false);
            verify_against_stg(&n, &stg, OutputTiming::Combinational, 500, 42)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn emb_mapping_verifies_registered() {
        for stg in [
            sequence_detector_0101(),
            traffic_light(),
            rotary_sequencer(),
        ] {
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let n = emb.to_netlist();
            verify_against_stg(&n, &stg, OutputTiming::Registered, 500, 43)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn emb_with_moore_lut_outputs_verifies() {
        for stg in [traffic_light(), sequence_detector_0101()] {
            let emb = map_fsm_into_embs(
                &stg,
                &EmbOptions {
                    output_mode: OutputMode::MooreLuts,
                    ..EmbOptions::default()
                },
            )
            .unwrap();
            let n = emb.to_netlist();
            verify_against_stg(&n, &stg, OutputTiming::Registered, 500, 44)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn emb_with_compaction_verifies() {
        let spec = fsm_model::generate::StgSpec {
            states: 10,
            inputs: 15,
            outputs: 3,
            transitions: 40,
            max_support: Some(3),
            ..fsm_model::generate::StgSpec::new("cmp")
        };
        let stg = fsm_model::generate::generate(&spec);
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        assert!(emb.input_mux.is_some());
        let n = emb.to_netlist();
        verify_against_stg(&n, &stg, OutputTiming::Registered, 800, 45).unwrap();
    }

    #[test]
    fn emb_with_series_banks_verifies() {
        let spec = fsm_model::generate::StgSpec {
            states: 4,
            inputs: 13,
            outputs: 2,
            transitions: 16,
            max_support: Some(13),
            ..fsm_model::generate::StgSpec::new("series")
        };
        let stg = fsm_model::generate::generate(&spec);
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                allow_compaction: false,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        assert!(emb.banks >= 2, "series path must engage");
        let n = emb.to_netlist();
        verify_against_stg(&n, &stg, OutputTiming::Registered, 800, 46).unwrap();
    }

    #[test]
    fn mismatch_is_reported_with_context() {
        // Corrupt one ROM word and expect a diagnosed divergence.
        let stg = sequence_detector_0101();
        let mut emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        emb.rom[0] ^= 0b100; // flip the output bit of (A, input 0)
        let n = emb.to_netlist();
        let err = verify_against_stg(&n, &stg, OutputTiming::Registered, 500, 47).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn exhaustive_proves_small_machines() {
        for stg in [sequence_detector_0101(), traffic_light()] {
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let rep = verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 8)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            assert!(rep.states_explored >= stg.num_states());
            assert!(rep.edges_checked >= rep.states_explored);

            let synth = synthesize(&stg, SynthOptions::default()).unwrap();
            let (ffn, _) = ff_netlist(&synth, false);
            verify_exhaustive(&ffn, &stg, OutputTiming::Combinational, 8)
                .unwrap_or_else(|e| panic!("{} ff: {e}", stg.name()));
        }
    }

    #[test]
    fn exhaustive_finds_buried_bugs() {
        // Corrupt a word reachable only through a specific 3-step prefix;
        // the exhaustive walk must find it and report a witness.
        let stg = sequence_detector_0101();
        let mut emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        emb.rom[0b111] ^= 0b100; // the detection word (state D, input 1)
        let err =
            verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 8).unwrap_err();
        match err {
            VerifyError::Mismatch { cycle, .. } => {
                assert!(cycle >= 1, "needs a prefix to reach state D");
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn exhaustive_refuses_wide_inputs() {
        let stg = fsm_model::benchmarks::by_name("sand").unwrap(); // 11 inputs
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let err =
            verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 8).unwrap_err();
        assert!(matches!(err, VerifyError::InputsTooWide { .. }));
    }

    #[test]
    fn netlist_equivalence_identity_and_mutant() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        assert_eq!(netlists_equivalent(&n, &n, 8), Ok(true));

        let mut broken = emb.clone();
        broken.rom[0] ^= 0b100; // flip a reachable output bit
        let m = broken.to_netlist();
        assert_eq!(netlists_equivalent(&n, &m, 8), Ok(false));
    }

    #[test]
    fn netlist_equivalence_refuses_wide_inputs() {
        let stg = fsm_model::benchmarks::by_name("sand").unwrap(); // 11 inputs
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        assert!(matches!(
            netlists_equivalent(&n, &n, 8),
            Err(VerifyError::InputsTooWide { .. })
        ));
    }

    #[test]
    fn rewrite_ladder_proves_narrow_and_samples_wide() {
        // Narrow machine: the ladder takes the exhaustive rung.
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let method =
            verify_rewrite(&emb.to_netlist(), &stg, OutputTiming::Registered, 20, 200, 7).unwrap();
        assert!(method.is_exhaustive(), "{method:?}");

        // Wide machine (sand, 11 inputs) against a tight cap: typed
        // fallback to sampling, not an error.
        let wide = fsm_model::benchmarks::by_name("sand").unwrap();
        let emb = map_fsm_into_embs(&wide, &EmbOptions::default()).unwrap();
        let method =
            verify_rewrite(&emb.to_netlist(), &wide, OutputTiming::Registered, 8, 200, 7).unwrap();
        assert_eq!(method, VerificationMethod::Sampled { cycles: 200 });

        // A divergent netlist still fails through the ladder.
        let mut broken = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        broken.rom[0] ^= 0b100;
        let err = verify_rewrite(
            &broken.to_netlist(),
            &stg,
            OutputTiming::Registered,
            20,
            200,
            7,
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn paper_benchmarks_verify_both_ways() {
        // The full suite is exercised in integration tests; spot-check two
        // representative machines here (one small, one with compaction).
        for name in ["donfile", "sand"] {
            let stg = fsm_model::benchmarks::by_name(name).unwrap();
            let synth = synthesize(&stg, SynthOptions::default()).unwrap();
            let (ffn, _) = ff_netlist(&synth, false);
            verify_against_stg(&ffn, &stg, OutputTiming::Combinational, 400, 48)
                .unwrap_or_else(|e| panic!("{name} ff: {e}"));
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let n = emb.to_netlist();
            verify_against_stg(&n, &stg, OutputTiming::Registered, 400, 49)
                .unwrap_or_else(|e| panic!("{name} emb: {e}"));
        }
    }
}
