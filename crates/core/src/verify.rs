//! Lockstep equivalence checking against the STG oracle.
//!
//! Every hardware artifact this crate produces — the FF baseline, the EMB
//! mapping in all its variants, the clock-controlled versions, ECO
//! rewrites — is verified by simulating it next to
//! [`fsm_model::simulate::StgSimulator`] over a deterministic random
//! stimulus and comparing the FSM outputs cycle by cycle.

use fpga_fabric::netlist::{Netlist, NetlistError};
use fsm_model::simulate::StgSimulator;
use fsm_model::stg::{StateId, Stg};
use netsim::engine::Simulator;
use netsim::kernel::{BatchSimulator, LANES};
use netsim::stimulus;
use std::fmt;

/// When the implementation's outputs are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputTiming {
    /// Outputs are latched (BRAM FSM): compare the post-edge values.
    Registered,
    /// Outputs are combinational Mealy logic (FF FSM): compare the
    /// settled pre-edge values.
    Combinational,
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The netlist is structurally invalid.
    Invalid(NetlistError),
    /// Outputs diverged from the oracle.
    Mismatch {
        /// Cycle of first divergence (0-based).
        cycle: usize,
        /// The inputs applied that cycle.
        inputs: Vec<bool>,
        /// Oracle outputs.
        expected: Vec<bool>,
        /// Implementation outputs.
        got: Vec<bool>,
    },
    /// The netlist exposes fewer `out_*` ports than the machine has
    /// outputs.
    PortCount {
        /// Ports found.
        found: usize,
        /// Outputs expected.
        expected: usize,
    },
    /// Exhaustive verification refused: too many inputs to enumerate.
    InputsTooWide {
        /// The machine's input count.
        inputs: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Invalid(e) => write!(f, "invalid netlist: {e}"),
            VerifyError::Mismatch {
                cycle,
                inputs,
                expected,
                got,
            } => write!(
                f,
                "output mismatch at cycle {cycle} (inputs {inputs:?}): expected {expected:?}, got {got:?}"
            ),
            VerifyError::PortCount { found, expected } => {
                write!(f, "netlist has {found} output ports, machine has {expected}")
            }
            VerifyError::InputsTooWide { inputs, limit } => {
                write!(f, "{inputs} inputs exceed the exhaustive limit of {limit}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<NetlistError> for VerifyError {
    fn from(e: NetlistError) -> Self {
        VerifyError::Invalid(e)
    }
}

/// Verifies `netlist` against `stg` over `cycles` random vectors.
///
/// The netlist's first `stg.num_outputs()` output ports are compared;
/// additional ports (debug state bits) are ignored. The netlist's inputs
/// must be the machine's inputs in order (extra inputs are not allowed —
/// enable logic must be internal).
///
/// # Errors
///
/// Returns the first divergence found, or a structural error.
pub fn verify_against_stg(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    cycles: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    if netlist.outputs().len() < stg.num_outputs() {
        return Err(VerifyError::PortCount {
            found: netlist.outputs().len(),
            expected: stg.num_outputs(),
        });
    }
    let mut hw = Simulator::new(netlist)?;
    let mut oracle = StgSimulator::new(stg);
    for (cycle, inputs) in stimulus::random(stg.num_inputs(), cycles, seed)
        .into_iter()
        .enumerate()
    {
        let expected = oracle.clock(&inputs).to_vec();
        hw.clock(&inputs);
        let got_all = match timing {
            OutputTiming::Registered => hw.outputs(),
            OutputTiming::Combinational => hw.pre_edge_outputs().to_vec(),
        };
        let got = got_all[..stg.num_outputs()].to_vec();
        if got != expected {
            return Err(VerifyError::Mismatch {
                cycle,
                inputs,
                expected,
                got,
            });
        }
    }
    Ok(())
}

/// The input vector of minterm `m`, LSB-first: input `i` is bit `i`.
fn minterm_inputs(m: u64, num_inputs: usize) -> Vec<bool> {
    (0..num_inputs).map(|i| m >> i & 1 == 1).collect()
}

/// Packs bit groups into `u64` words, LSB-first across the concatenation.
/// Group widths are fixed per walk, so the packing is injective: two
/// joint states produce equal words iff every bit matches. Keys in the
/// `seen` set shrink ~64× versus `Vec<bool>` tuples, which is what lets
/// the batched walks hold the sand/styr product spaces comfortably.
fn pack_key(groups: &[&[bool]]) -> Vec<u64> {
    let total: usize = groups.iter().map(|g| g.len()).sum();
    let mut words = vec![0u64; total.div_ceil(64)];
    let mut i = 0usize;
    for g in groups {
        for &b in *g {
            if b {
                words[i / 64] |= 1u64 << (i % 64);
            }
            i += 1;
        }
    }
    words
}

/// A discovered joint state in the batched product walk. `parent` and
/// `minterm` form a parent-pointer tree from which the minimal witness
/// trace is reconstructed on divergence; node 0 is the reset state.
struct WalkNode {
    oracle: StateId,
    parent: u32,
    minterm: u64,
}

/// The input trace that reaches `nodes[idx]` from reset, by walking the
/// parent chain back to node 0.
fn trace_to(nodes: &[WalkNode], idx: usize, num_inputs: usize) -> Vec<Vec<bool>> {
    let mut rev = Vec::new();
    let mut cur = idx;
    while cur != 0 {
        rev.push(minterm_inputs(nodes[cur].minterm, num_inputs));
        cur = nodes[cur].parent as usize;
    }
    rev.reverse();
    rev
}

/// Exhaustively verifies `netlist` against `stg` by product-machine
/// reachability: starting from the joint reset state, every reachable
/// (oracle state, implementation state) pair is expanded under **all**
/// `2^I` input vectors, and outputs are compared on each edge. Unlike
/// [`verify_against_stg`] this is a proof, not a sample — any reachable
/// divergence is found.
///
/// The implementation state is the vector of its sequential elements
/// (FF values and BRAM output latches), so the walk terminates: the
/// joint state space is finite and only reachable states are visited.
///
/// Edges are expanded through the bit-parallel
/// [`netsim::kernel::BatchSimulator`], 64 per clock: each lane is loaded
/// with one frontier state's sequential snapshot and one input minterm.
/// The frontier is expanded in FIFO node order × minterm order — the
/// exact global edge order of the scalar walk — so the report counts and
/// the first-divergence witness are identical to
/// [`verify_exhaustive_scalar`]. Netlists with BRAM write ports fall back
/// to the scalar walk (their memory contents are architectural state
/// beyond the sequential nets, so the lane snapshot would under-key).
///
/// # Errors
///
/// Returns a [`VerifyError`] with a minimal-length witness input trace on
/// divergence, or `InputsTooWide` when `2^I` enumeration is infeasible.
pub fn verify_exhaustive(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    max_inputs: usize,
) -> Result<ExhaustiveReport, VerifyError> {
    check_exhaustive_bounds(netlist, stg, max_inputs)?;
    let mut batch = BatchSimulator::new(netlist)?;
    if batch.has_write_ports() {
        return scalar_exhaustive_walk(netlist, stg, timing);
    }

    let num_inputs = stg.num_inputs();
    let num_outputs = stg.num_outputs();
    let vectors = 1u64 << num_inputs;

    batch.reset();
    let mut nodes: Vec<WalkNode> = Vec::new();
    let mut snaps: Vec<Vec<bool>> = Vec::new();
    let mut seen: std::collections::HashSet<(u32, Vec<u64>)> = std::collections::HashSet::new();

    let root_outputs = vec![false; num_outputs];
    let root_snap = batch.lane_state(0);
    seen.insert((stg.reset_state().0, pack_key(&[&root_outputs, &root_snap])));
    nodes.push(WalkNode {
        oracle: stg.reset_state(),
        parent: 0,
        minterm: 0,
    });
    snaps.push(root_snap);

    let mut states_explored = 0usize;
    let mut edges_checked = 0usize;
    let mut input_words = vec![0u64; num_inputs];
    let mut batch_edges: Vec<(usize, u64)> = Vec::with_capacity(LANES);
    let mut cur_node = 0usize;
    let mut cur_minterm = 0u64;
    while cur_node < nodes.len() {
        // Fill up to 64 lanes with the next edges of the global order.
        batch_edges.clear();
        while batch_edges.len() < LANES && cur_node < nodes.len() {
            if cur_minterm == 0 {
                states_explored += 1;
            }
            batch_edges.push((cur_node, cur_minterm));
            cur_minterm += 1;
            if cur_minterm == vectors {
                cur_minterm = 0;
                cur_node += 1;
            }
        }
        for w in &mut input_words {
            *w = 0;
        }
        for (lane, &(ni, m)) in batch_edges.iter().enumerate() {
            batch.load_lane_state(lane, &snaps[ni]);
            for (k, w) in input_words.iter_mut().enumerate() {
                if m >> k & 1 == 1 {
                    *w |= 1u64 << lane;
                }
            }
        }
        batch.clock_words(&input_words);
        // Scan lanes in edge order: the first divergence and the seen-set
        // insertion order match the scalar walk exactly.
        for (lane, &(ni, m)) in batch_edges.iter().enumerate() {
            edges_checked += 1;
            let inputs = minterm_inputs(m, num_inputs);
            let (next, expected) = stg.step(nodes[ni].oracle, &inputs);
            let got_all = match timing {
                OutputTiming::Registered => batch.lane_outputs(lane),
                OutputTiming::Combinational => batch.lane_pre_edge_outputs(lane),
            };
            let got = got_all[..num_outputs].to_vec();
            if got != expected {
                let mut witness = trace_to(&nodes, ni, num_inputs);
                witness.push(inputs.clone());
                return Err(VerifyError::Mismatch {
                    cycle: witness.len() - 1,
                    inputs,
                    expected,
                    got,
                });
            }
            let snap = batch.lane_state(lane);
            if seen.insert((next.0, pack_key(&[&expected, &snap]))) {
                nodes.push(WalkNode {
                    oracle: next,
                    parent: ni as u32,
                    minterm: m,
                });
                snaps.push(snap);
            }
        }
    }
    Ok(ExhaustiveReport {
        states_explored,
        edges_checked,
    })
}

/// The shared precondition checks of the exhaustive walks.
fn check_exhaustive_bounds(
    netlist: &Netlist,
    stg: &Stg,
    max_inputs: usize,
) -> Result<(), VerifyError> {
    if stg.num_inputs() > max_inputs || stg.num_inputs() > 20 {
        return Err(VerifyError::InputsTooWide {
            inputs: stg.num_inputs(),
            limit: max_inputs.min(20),
        });
    }
    if netlist.outputs().len() < stg.num_outputs() {
        return Err(VerifyError::PortCount {
            found: netlist.outputs().len(),
            expected: stg.num_outputs(),
        });
    }
    Ok(())
}

/// The scalar (one edge per clock) exhaustive product walk — the original
/// implementation, retained as the differential-testing oracle for the
/// bit-parallel walk and as the benchmark baseline. [`verify_exhaustive`]
/// also routes here for netlists with BRAM write ports, whose memory
/// contents the batched sequential-net snapshot cannot key.
///
/// # Errors
///
/// Identical contract to [`verify_exhaustive`]: a minimal witness on
/// divergence, `InputsTooWide` when enumeration is infeasible.
pub fn verify_exhaustive_scalar(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    max_inputs: usize,
) -> Result<ExhaustiveReport, VerifyError> {
    check_exhaustive_bounds(netlist, stg, max_inputs)?;
    scalar_exhaustive_walk(netlist, stg, timing)
}

fn scalar_exhaustive_walk(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
) -> Result<ExhaustiveReport, VerifyError> {
    let base = Simulator::new(netlist)?;

    // Joint state key: oracle (state, latched outputs) + implementation
    // sequential snapshot.
    type Key = (u32, Vec<bool>, Vec<bool>);
    let snapshot = |sim: &Simulator<'_>| -> Vec<bool> {
        let mut v = Vec::new();
        for cell in netlist.cells() {
            match cell {
                fpga_fabric::netlist::Cell::Ff { q, .. } => v.push(sim.value(*q)),
                fpga_fabric::netlist::Cell::Bram { dout, .. } => {
                    v.extend(dout.iter().map(|d| sim.value(*d)));
                }
                _ => {}
            }
        }
        v
    };

    let oracle0 = StgSimulator::new(stg);
    let key0: Key = (
        oracle0.state().0,
        oracle0.outputs().to_vec(),
        snapshot(&base),
    );
    let mut seen: std::collections::HashSet<Key> = std::collections::HashSet::new();
    seen.insert(key0.clone());
    // BFS queue holds (oracle, implementation, input trace to reach it).
    let mut queue: std::collections::VecDeque<(StgSimulator<'_>, Simulator<'_>, Vec<Vec<bool>>)> =
        std::collections::VecDeque::new();
    queue.push_back((oracle0, base, Vec::new()));

    let num_inputs = stg.num_inputs();
    let mut states_explored = 0usize;
    let mut edges_checked = 0usize;
    while let Some((oracle, hw, trace)) = queue.pop_front() {
        states_explored += 1;
        for m in 0..1u64 << num_inputs {
            let inputs = minterm_inputs(m, num_inputs);
            let mut o2 = oracle.clone();
            let mut h2 = hw.clone();
            let expected = o2.clock(&inputs).to_vec();
            h2.clock(&inputs);
            let got_all = match timing {
                OutputTiming::Registered => h2.outputs(),
                OutputTiming::Combinational => h2.pre_edge_outputs().to_vec(),
            };
            let got = got_all[..stg.num_outputs()].to_vec();
            edges_checked += 1;
            if got != expected {
                let mut witness = trace.clone();
                witness.push(inputs.clone());
                return Err(VerifyError::Mismatch {
                    cycle: witness.len() - 1,
                    inputs,
                    expected,
                    got,
                });
            }
            let key: Key = (o2.state().0, o2.outputs().to_vec(), snapshot(&h2));
            if seen.insert(key) {
                let mut w = trace.clone();
                w.push(inputs);
                queue.push_back((o2, h2, w));
            }
        }
    }
    Ok(ExhaustiveReport {
        states_explored,
        edges_checked,
    })
}

/// Statistics of a completed exhaustive verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhaustiveReport {
    /// Reachable joint (oracle, implementation) states explored.
    pub states_explored: usize,
    /// Transitions (state × input vector) checked.
    pub edges_checked: usize,
}

/// How a rewrite was verified: by the exhaustive product-walk proof, or —
/// when the input space is too wide to enumerate — by sampled lockstep
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationMethod {
    /// Every reachable joint state was expanded under all input vectors:
    /// a proof of equivalence, with walk statistics.
    Exhaustive(ExhaustiveReport),
    /// Random-stimulus lockstep comparison over this many cycles (the
    /// typed fallback for machines with too many inputs to enumerate).
    Sampled {
        /// Cycles simulated.
        cycles: usize,
    },
}

impl VerificationMethod {
    /// True when the rewrite was proven, not sampled.
    #[must_use]
    pub fn is_exhaustive(&self) -> bool {
        matches!(self, VerificationMethod::Exhaustive(_))
    }
}

/// Verification ladder for netlist-producing rewrites (EMB mapping with
/// compaction / Mealy→Moore output transform / series banks, and the
/// clock-control rewrite): run the exhaustive product-walk proof whenever
/// the machine's input count permits (`inputs ≤ min(max_inputs, 20)`),
/// and fall back to sampled lockstep simulation — a typed downgrade, not
/// a silent one — above that.
///
/// # Errors
///
/// Any divergence from the oracle, by either rung, as a [`VerifyError`].
pub fn verify_rewrite(
    netlist: &Netlist,
    stg: &Stg,
    timing: OutputTiming,
    max_inputs: usize,
    cycles: usize,
    seed: u64,
) -> Result<VerificationMethod, VerifyError> {
    match verify_exhaustive(netlist, stg, timing, max_inputs) {
        Ok(report) => Ok(VerificationMethod::Exhaustive(report)),
        Err(VerifyError::InputsTooWide { .. }) => {
            verify_against_stg(netlist, stg, timing, cycles, seed)?;
            Ok(VerificationMethod::Sampled { cycles })
        }
        Err(e) => Err(e),
    }
}

/// Exhaustively decides whether two netlists are observationally
/// equivalent: a BFS product walk from the joint reset state expands
/// every reachable (state of `a`, state of `b`) pair under all `2^I`
/// input vectors and compares the registered output ports on each edge.
///
/// This is the ground-truth oracle the mutation tests calibrate against:
/// a mutation is *observable* iff this returns `false`, and a sound and
/// complete verifier must flag exactly the observable mutants.
///
/// Both netlists must expose the same input and output port counts.
///
/// Like [`verify_exhaustive`], the walk runs on the bit-parallel kernel —
/// two lockstep [`BatchSimulator`]s expand 64 joint edges per clock — and
/// falls back to the scalar pairwise walk when either netlist has BRAM
/// write ports.
///
/// # Errors
///
/// Returns `InputsTooWide` when `2^I` enumeration is infeasible,
/// `PortCount` on mismatched interfaces, or a structural error.
pub fn netlists_equivalent(
    a: &Netlist,
    b: &Netlist,
    max_inputs: usize,
) -> Result<bool, VerifyError> {
    let num_inputs = a.inputs().len();
    if num_inputs > max_inputs || num_inputs > 20 {
        return Err(VerifyError::InputsTooWide {
            inputs: num_inputs,
            limit: max_inputs.min(20),
        });
    }
    if b.inputs().len() != num_inputs || b.outputs().len() != a.outputs().len() {
        return Err(VerifyError::PortCount {
            found: b.outputs().len(),
            expected: a.outputs().len(),
        });
    }
    let mut ba = BatchSimulator::new(a)?;
    let mut bb = BatchSimulator::new(b)?;
    if ba.has_write_ports() || bb.has_write_ports() {
        return netlists_equivalent_scalar_walk(a, b, num_inputs);
    }

    let vectors = 1u64 << num_inputs;
    ba.reset();
    bb.reset();
    // The joint frontier: per node, the sequential snapshot of each side.
    let mut snaps: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
    let sa0 = ba.lane_state(0);
    let sb0 = bb.lane_state(0);
    seen.insert(pack_key(&[&sa0, &sb0]));
    snaps.push((sa0, sb0));

    let mut input_words = vec![0u64; num_inputs];
    let mut batch_edges: Vec<(usize, u64)> = Vec::with_capacity(LANES);
    let mut cur_node = 0usize;
    let mut cur_minterm = 0u64;
    while cur_node < snaps.len() {
        batch_edges.clear();
        while batch_edges.len() < LANES && cur_node < snaps.len() {
            batch_edges.push((cur_node, cur_minterm));
            cur_minterm += 1;
            if cur_minterm == vectors {
                cur_minterm = 0;
                cur_node += 1;
            }
        }
        for w in &mut input_words {
            *w = 0;
        }
        for (lane, &(ni, m)) in batch_edges.iter().enumerate() {
            let (sa, sb) = &snaps[ni];
            ba.load_lane_state(lane, sa);
            bb.load_lane_state(lane, sb);
            for (k, w) in input_words.iter_mut().enumerate() {
                if m >> k & 1 == 1 {
                    *w |= 1u64 << lane;
                }
            }
        }
        ba.clock_words(&input_words);
        bb.clock_words(&input_words);
        for (lane, _) in batch_edges.iter().enumerate() {
            if ba.lane_outputs(lane) != bb.lane_outputs(lane) {
                return Ok(false);
            }
            let sa = ba.lane_state(lane);
            let sb = bb.lane_state(lane);
            if seen.insert(pack_key(&[&sa, &sb])) {
                snaps.push((sa, sb));
            }
        }
    }
    Ok(true)
}

/// The scalar pairwise product walk backing [`netlists_equivalent`] for
/// write-port netlists, and serving as its differential oracle in tests.
fn netlists_equivalent_scalar_walk(
    a: &Netlist,
    b: &Netlist,
    num_inputs: usize,
) -> Result<bool, VerifyError> {
    let snapshot = |n: &Netlist, sim: &Simulator<'_>| -> Vec<bool> {
        let mut v = Vec::new();
        for cell in n.cells() {
            match cell {
                fpga_fabric::netlist::Cell::Ff { q, .. } => v.push(sim.value(*q)),
                fpga_fabric::netlist::Cell::Bram { dout, .. } => {
                    v.extend(dout.iter().map(|d| sim.value(*d)));
                }
                _ => {}
            }
        }
        v
    };
    let sa = Simulator::new(a)?;
    let sb = Simulator::new(b)?;
    let mut seen = std::collections::HashSet::new();
    seen.insert((snapshot(a, &sa), snapshot(b, &sb)));
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((sa, sb));
    while let Some((sa, sb)) = queue.pop_front() {
        for m in 0..1u64 << num_inputs {
            let inputs: Vec<bool> = (0..num_inputs).map(|i| m >> i & 1 == 1).collect();
            let mut a2 = sa.clone();
            let mut b2 = sb.clone();
            a2.clock(&inputs);
            b2.clock(&inputs);
            if a2.outputs() != b2.outputs() {
                return Ok(false);
            }
            if seen.insert((snapshot(a, &a2), snapshot(b, &b2))) {
                queue.push_back((a2, b2));
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ff_netlist;
    use crate::map::{map_fsm_into_embs, EmbOptions, OutputMode};
    use fsm_model::benchmarks::{rotary_sequencer, sequence_detector_0101, traffic_light};
    use logic_synth::synth::{synthesize, SynthOptions};

    #[test]
    fn ff_baseline_verifies_combinational() {
        for stg in [
            sequence_detector_0101(),
            traffic_light(),
            rotary_sequencer(),
        ] {
            let synth = synthesize(&stg, SynthOptions::default()).unwrap();
            let (n, _) = ff_netlist(&synth, false);
            verify_against_stg(&n, &stg, OutputTiming::Combinational, 500, 42)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn emb_mapping_verifies_registered() {
        for stg in [
            sequence_detector_0101(),
            traffic_light(),
            rotary_sequencer(),
        ] {
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let n = emb.to_netlist();
            verify_against_stg(&n, &stg, OutputTiming::Registered, 500, 43)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn emb_with_moore_lut_outputs_verifies() {
        for stg in [traffic_light(), sequence_detector_0101()] {
            let emb = map_fsm_into_embs(
                &stg,
                &EmbOptions {
                    output_mode: OutputMode::MooreLuts,
                    ..EmbOptions::default()
                },
            )
            .unwrap();
            let n = emb.to_netlist();
            verify_against_stg(&n, &stg, OutputTiming::Registered, 500, 44)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }

    #[test]
    fn emb_with_compaction_verifies() {
        let spec = fsm_model::generate::StgSpec {
            states: 10,
            inputs: 15,
            outputs: 3,
            transitions: 40,
            max_support: Some(3),
            ..fsm_model::generate::StgSpec::new("cmp")
        };
        let stg = fsm_model::generate::generate(&spec).expect("generates");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        assert!(emb.input_mux.is_some());
        let n = emb.to_netlist();
        verify_against_stg(&n, &stg, OutputTiming::Registered, 800, 45).unwrap();
    }

    #[test]
    fn emb_with_series_banks_verifies() {
        let spec = fsm_model::generate::StgSpec {
            states: 4,
            inputs: 13,
            outputs: 2,
            transitions: 16,
            max_support: Some(13),
            ..fsm_model::generate::StgSpec::new("series")
        };
        let stg = fsm_model::generate::generate(&spec).expect("generates");
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                allow_compaction: false,
                ..EmbOptions::default()
            },
        )
        .unwrap();
        assert!(emb.banks >= 2, "series path must engage");
        let n = emb.to_netlist();
        verify_against_stg(&n, &stg, OutputTiming::Registered, 800, 46).unwrap();
    }

    #[test]
    fn mismatch_is_reported_with_context() {
        // Corrupt one ROM word and expect a diagnosed divergence.
        let stg = sequence_detector_0101();
        let mut emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        emb.rom[0] ^= 0b100; // flip the output bit of (A, input 0)
        let n = emb.to_netlist();
        let err = verify_against_stg(&n, &stg, OutputTiming::Registered, 500, 47).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn exhaustive_proves_small_machines() {
        for stg in [sequence_detector_0101(), traffic_light()] {
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let rep = verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 8)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            assert!(rep.states_explored >= stg.num_states());
            assert!(rep.edges_checked >= rep.states_explored);

            let synth = synthesize(&stg, SynthOptions::default()).unwrap();
            let (ffn, _) = ff_netlist(&synth, false);
            verify_exhaustive(&ffn, &stg, OutputTiming::Combinational, 8)
                .unwrap_or_else(|e| panic!("{} ff: {e}", stg.name()));
        }
    }

    #[test]
    fn exhaustive_finds_buried_bugs() {
        // Corrupt a word reachable only through a specific 3-step prefix;
        // the exhaustive walk must find it and report a witness.
        let stg = sequence_detector_0101();
        let mut emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        emb.rom[0b111] ^= 0b100; // the detection word (state D, input 1)
        let err =
            verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 8).unwrap_err();
        match err {
            VerifyError::Mismatch { cycle, .. } => {
                assert!(cycle >= 1, "needs a prefix to reach state D");
            }
            other => panic!("expected mismatch, got {other}"),
        }
    }

    #[test]
    fn exhaustive_refuses_wide_inputs() {
        let stg = fsm_model::benchmarks::by_name("sand").unwrap(); // 11 inputs
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let err =
            verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 8).unwrap_err();
        assert!(matches!(err, VerifyError::InputsTooWide { .. }));
    }

    #[test]
    fn batched_walk_matches_scalar_reports_and_witnesses() {
        // The kernel-backed walk must be indistinguishable from the scalar
        // oracle: same exploration counts on success, same first-divergence
        // witness on failure.
        for stg in [
            sequence_detector_0101(),
            traffic_light(),
            rotary_sequencer(),
        ] {
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let n = emb.to_netlist();
            let batched = verify_exhaustive(&n, &stg, OutputTiming::Registered, 20)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            let scalar = verify_exhaustive_scalar(&n, &stg, OutputTiming::Registered, 20)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            assert_eq!(batched, scalar, "{}", stg.name());
        }

        let stg = sequence_detector_0101();
        let mut emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        emb.rom[0b111] ^= 0b100; // reachable only through a 3-step prefix
        let n = emb.to_netlist();
        let b = verify_exhaustive(&n, &stg, OutputTiming::Registered, 8).unwrap_err();
        let s = verify_exhaustive_scalar(&n, &stg, OutputTiming::Registered, 8).unwrap_err();
        assert_eq!(b, s, "witnesses must agree edge-for-edge");
    }

    #[test]
    fn netlist_equivalence_identity_and_mutant() {
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        assert_eq!(netlists_equivalent(&n, &n, 8), Ok(true));

        let mut broken = emb.clone();
        broken.rom[0] ^= 0b100; // flip a reachable output bit
        let m = broken.to_netlist();
        assert_eq!(netlists_equivalent(&n, &m, 8), Ok(false));
    }

    #[test]
    fn netlist_equivalence_refuses_wide_inputs() {
        let stg = fsm_model::benchmarks::by_name("sand").unwrap(); // 11 inputs
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let n = emb.to_netlist();
        assert!(matches!(
            netlists_equivalent(&n, &n, 8),
            Err(VerifyError::InputsTooWide { .. })
        ));
    }

    #[test]
    fn rewrite_ladder_proves_narrow_and_samples_wide() {
        // Narrow machine: the ladder takes the exhaustive rung.
        let stg = sequence_detector_0101();
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        let method =
            verify_rewrite(&emb.to_netlist(), &stg, OutputTiming::Registered, 20, 200, 7).unwrap();
        assert!(method.is_exhaustive(), "{method:?}");

        // Wide machine (sand, 11 inputs) against a tight cap: typed
        // fallback to sampling, not an error.
        let wide = fsm_model::benchmarks::by_name("sand").unwrap();
        let emb = map_fsm_into_embs(&wide, &EmbOptions::default()).unwrap();
        let method =
            verify_rewrite(&emb.to_netlist(), &wide, OutputTiming::Registered, 8, 200, 7).unwrap();
        assert_eq!(method, VerificationMethod::Sampled { cycles: 200 });

        // A divergent netlist still fails through the ladder.
        let mut broken = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
        broken.rom[0] ^= 0b100;
        let err = verify_rewrite(
            &broken.to_netlist(),
            &stg,
            OutputTiming::Registered,
            20,
            200,
            7,
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn paper_benchmarks_verify_both_ways() {
        // The full suite is exercised in integration tests; spot-check two
        // representative machines here (one small, one with compaction).
        for name in ["donfile", "sand"] {
            let stg = fsm_model::benchmarks::by_name(name).unwrap();
            let synth = synthesize(&stg, SynthOptions::default()).unwrap();
            let (ffn, _) = ff_netlist(&synth, false);
            verify_against_stg(&ffn, &stg, OutputTiming::Combinational, 400, 48)
                .unwrap_or_else(|e| panic!("{name} ff: {e}"));
            let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).unwrap();
            let n = emb.to_netlist();
            verify_against_stg(&n, &stg, OutputTiming::Registered, 400, 49)
                .unwrap_or_else(|e| panic!("{name} emb: {e}"));
        }
    }
}
