//! Integration test for the flow-artifact cache: a cold run, a
//! memory-warm run, and a disk-warm run (memory layer dropped) must all
//! produce the same report, and the hit/miss counters surfaced in
//! [`FlowReport`] must account for the traffic.
//!
//! This file holds a single test function on purpose: the cache reads
//! `FLOW_CACHE_DIR` once per process, so the variable must be set before
//! any other code in this binary touches the cache.

use emb_fsm::cache;
use emb_fsm::flow::{ff_flow, FlowConfig, FlowReport, Stimulus};
use emb_fsm::EmbOptions;
use fpga_fabric::place::PlaceOptions;
use logic_synth::synth::SynthOptions;
use std::path::PathBuf;

/// The fields a cached rerun must reproduce exactly.
fn fingerprint(r: &FlowReport) -> (usize, usize, usize, u64, usize, u64, String) {
    (
        r.area.luts,
        r.area.ffs,
        r.area.brams,
        r.timing.critical_path_ns.to_bits(),
        r.total_wirelength,
        r.power_at(85.0).map_or(0, |p| p.total_mw().to_bits()),
        format!("{:?}", r.downgrades),
    )
}

#[test]
fn cold_memory_warm_and_disk_warm_runs_agree() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("itest_flow_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("FLOW_CACHE_DIR", &dir);

    let stg = fsm_model::benchmarks::sequence_detector_0101();
    let cfg = FlowConfig {
        cycles: 400,
        verify_cycles: 150,
        place: PlaceOptions {
            seed: 1,
            effort: 2.0,
            ..PlaceOptions::default()
        },
        ..FlowConfig::default()
    };

    // Cold: every artifact is computed and stored.
    let cold = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg).unwrap();
    assert_eq!(cold.cache.hits, 0, "cold run must not hit: {}", cold.cache);
    assert!(
        cold.cache.misses >= 2,
        "cold run misses at least the front-end and one placement: {}",
        cold.cache
    );

    // Memory-warm: same process, both layers populated.
    let warm = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg).unwrap();
    assert_eq!(
        fingerprint(&warm),
        fingerprint(&cold),
        "warm run must equal cold run"
    );
    assert_eq!(
        warm.cache.misses, 0,
        "warm run must not miss: {}",
        warm.cache
    );
    assert_eq!(
        warm.cache.hits, cold.cache.misses,
        "every cold miss becomes a warm hit"
    );

    // Disk-warm: drop the in-process layer, artifacts come from disk.
    cache::reset_memory();
    let disk = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg).unwrap();
    assert_eq!(
        fingerprint(&disk),
        fingerprint(&cold),
        "disk-warm run must equal cold run"
    );
    assert_eq!(
        disk.cache.misses, 0,
        "disk-warm run must not miss: {}",
        disk.cache
    );
    assert_eq!(disk.cache.hits, cold.cache.misses);

    // A different flavor of the same machine is a different key: the EMB
    // flow over an already-cached STG still misses its own artifacts.
    let emb =
        emb_fsm::flow::emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg).unwrap();
    assert!(
        emb.cache.misses >= 2,
        "distinct kind tags must not collide: {}",
        emb.cache
    );

    let _ = std::fs::remove_dir_all(&dir);
}
