//! Virtex-II-like device family.
//!
//! The paper targets a Xilinx Virtex-II XC2V250-6. This module models the
//! family's floorplan at the granularity the experiments need: a CLB array
//! (4 slices per CLB, each slice holding two 4-input LUTs and two FFs),
//! columns of 18-Kbit block RAMs embedded in the array, and a perimeter of
//! IOBs. The numbers (slice and BRAM counts per device) match the Virtex-II
//! data sheet; tile geometry is simplified to a uniform grid.

use std::fmt;

/// Slices per CLB (Virtex-II).
pub const SLICES_PER_CLB: usize = 4;
/// LUT4s per slice (Virtex-II).
pub const LUTS_PER_SLICE: usize = 2;
/// FFs per slice (Virtex-II).
pub const FFS_PER_SLICE: usize = 2;
/// CLB rows spanned by one block RAM (Virtex-II BRAMs are 4 CLBs tall).
pub const CLB_ROWS_PER_BRAM: usize = 4;

/// A device of the family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Part name.
    pub name: &'static str,
    /// CLB array rows.
    pub clb_rows: usize,
    /// CLB array columns.
    pub clb_cols: usize,
    /// Number of BRAM columns embedded in the array.
    pub bram_cols: usize,
}

impl Device {
    /// Total slices.
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.clb_rows * self.clb_cols * SLICES_PER_CLB
    }

    /// Total CLBs.
    #[must_use]
    pub fn num_clbs(&self) -> usize {
        self.clb_rows * self.clb_cols
    }

    /// Total 4-input LUTs.
    #[must_use]
    pub fn num_luts(&self) -> usize {
        self.num_slices() * LUTS_PER_SLICE
    }

    /// Total flip-flops.
    #[must_use]
    pub fn num_ffs(&self) -> usize {
        self.num_slices() * FFS_PER_SLICE
    }

    /// Block RAMs per column.
    #[must_use]
    pub fn brams_per_col(&self) -> usize {
        self.clb_rows / CLB_ROWS_PER_BRAM
    }

    /// Total 18-Kbit block RAMs.
    #[must_use]
    pub fn num_brams(&self) -> usize {
        self.bram_cols * self.brams_per_col()
    }

    /// Grid width in tiles (CLB columns plus embedded BRAM columns).
    #[must_use]
    pub fn grid_width(&self) -> usize {
        self.clb_cols + self.bram_cols
    }

    /// Grid height in tiles.
    #[must_use]
    pub fn grid_height(&self) -> usize {
        self.clb_rows
    }

    /// The x coordinates of the BRAM columns, spread evenly through the
    /// array (matching the interleaved Virtex-II floorplan).
    #[must_use]
    pub fn bram_col_positions(&self) -> Vec<usize> {
        // Place column i of bram_cols at roughly (i+1)/(n+1) of the width.
        let w = self.grid_width();
        (0..self.bram_cols)
            .map(|i| (w * (i + 1)) / (self.bram_cols + 1))
            .collect()
    }

    /// All CLB tile coordinates `(x, y)`.
    #[must_use]
    pub fn clb_sites(&self) -> Vec<(usize, usize)> {
        let bram_xs = self.bram_col_positions();
        let mut sites = Vec::with_capacity(self.num_clbs());
        for x in 0..self.grid_width() {
            if bram_xs.contains(&x) {
                continue;
            }
            for y in 0..self.grid_height() {
                sites.push((x, y));
            }
        }
        sites
    }

    /// All BRAM site coordinates `(x, y)` (y of the BRAM's top tile).
    #[must_use]
    pub fn bram_sites(&self) -> Vec<(usize, usize)> {
        let mut sites = Vec::with_capacity(self.num_brams());
        for x in self.bram_col_positions() {
            for b in 0..self.brams_per_col() {
                sites.push((x, b * CLB_ROWS_PER_BRAM));
            }
        }
        sites
    }

    /// IOB site coordinates on the perimeter.
    #[must_use]
    pub fn iob_sites(&self) -> Vec<(usize, usize)> {
        let w = self.grid_width();
        let h = self.grid_height();
        let mut sites = Vec::new();
        for x in 0..w {
            sites.push((x, 0));
            if h > 1 {
                sites.push((x, h - 1));
            }
        }
        for y in 1..h.saturating_sub(1) {
            sites.push((0, y));
            if w > 1 {
                sites.push((w - 1, y));
            }
        }
        sites
    }

    /// Looks a device up by part name (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Device> {
        FAMILY
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
            .copied()
    }

    /// The paper's target device.
    #[must_use]
    pub fn xc2v250() -> Device {
        Device::by_name("XC2V250").expect("XC2V250 is in the family table")
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} CLBs ({} slices, {} LUT4), {} BRAM",
            self.name,
            self.clb_rows,
            self.clb_cols,
            self.num_slices(),
            self.num_luts(),
            self.num_brams()
        )
    }
}

/// The modeled Virtex-II family (slice/BRAM counts from the data sheet).
pub const FAMILY: [Device; 6] = [
    Device {
        name: "XC2V40",
        clb_rows: 8,
        clb_cols: 8,
        bram_cols: 2,
    },
    Device {
        name: "XC2V80",
        clb_rows: 16,
        clb_cols: 8,
        bram_cols: 2,
    },
    Device {
        name: "XC2V250",
        clb_rows: 24,
        clb_cols: 16,
        bram_cols: 4,
    },
    Device {
        name: "XC2V500",
        clb_rows: 32,
        clb_cols: 24,
        bram_cols: 4,
    },
    Device {
        name: "XC2V1000",
        clb_rows: 40,
        clb_cols: 32,
        bram_cols: 4,
    },
    Device {
        name: "XC2V8000",
        clb_rows: 112,
        clb_cols: 104,
        bram_cols: 6,
    },
];

/// A block-RAM aspect ratio (address × data organization of the 18-Kbit
/// BRAM).
///
/// Virtex-II block RAMs are 16 Kbit of data plus 2 Kbit of parity; the
/// wide shapes expose the parity bits as extra data (the ×9/×18/×36
/// organizations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BramShape {
    /// Address line count.
    pub addr_bits: usize,
    /// Data width.
    pub data_bits: usize,
}

impl BramShape {
    /// All legal Virtex-II shapes, widest data first.
    pub const ALL: [BramShape; 6] = [
        BramShape {
            addr_bits: 9,
            data_bits: 36,
        },
        BramShape {
            addr_bits: 10,
            data_bits: 18,
        },
        BramShape {
            addr_bits: 11,
            data_bits: 9,
        },
        BramShape {
            addr_bits: 12,
            data_bits: 4,
        },
        BramShape {
            addr_bits: 13,
            data_bits: 2,
        },
        BramShape {
            addr_bits: 14,
            data_bits: 1,
        },
    ];

    /// Number of addressable words.
    #[must_use]
    pub fn depth(&self) -> usize {
        1usize << self.addr_bits
    }

    /// The widest shape with at least `addr_bits` address lines, if any.
    ///
    /// This is the selection rule of the paper's algorithm (Fig. 5 line 2):
    /// the "number of address lines available at any configuration".
    #[must_use]
    pub fn widest_with_addr_bits(addr_bits: usize) -> Option<BramShape> {
        Self::ALL.iter().copied().find(|s| s.addr_bits >= addr_bits)
    }

    /// Maximum address lines of any shape (the ×1 organization).
    #[must_use]
    pub fn max_addr_bits() -> usize {
        Self::ALL
            .iter()
            .map(|s| s.addr_bits)
            .max()
            .expect("table is non-empty")
    }
}

impl fmt::Display for BramShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.depth() >= 1024 {
            write!(f, "{}Kx{}", self.depth() / 1024, self.data_bits)
        } else {
            write!(f, "{}x{}", self.depth(), self.data_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasheet_counts() {
        let d = Device::xc2v250();
        assert_eq!(d.num_slices(), 1536);
        assert_eq!(d.num_luts(), 3072);
        assert_eq!(d.num_brams(), 24);
        assert_eq!(Device::by_name("xc2v40").unwrap().num_brams(), 4);
        assert_eq!(Device::by_name("XC2V8000").unwrap().num_brams(), 168);
    }

    #[test]
    fn site_counts_match() {
        for d in FAMILY {
            assert_eq!(d.clb_sites().len(), d.num_clbs(), "{}", d.name);
            assert_eq!(d.bram_sites().len(), d.num_brams(), "{}", d.name);
            assert!(!d.iob_sites().is_empty());
        }
    }

    #[test]
    fn bram_columns_do_not_collide_with_clbs() {
        for d in FAMILY {
            let bram_xs = d.bram_col_positions();
            for (x, _) in d.clb_sites() {
                assert!(!bram_xs.contains(&x), "{}: CLB in BRAM column", d.name);
            }
            // Distinct positions.
            let mut xs = bram_xs.clone();
            xs.dedup();
            assert_eq!(xs.len(), d.bram_cols, "{}", d.name);
        }
    }

    #[test]
    fn shapes_are_all_18kbit_class() {
        for s in BramShape::ALL {
            let bits = s.depth() * s.data_bits;
            assert!((16_384..=18_432).contains(&bits), "{s} has {bits} bits");
        }
    }

    #[test]
    fn widest_shape_selection() {
        assert_eq!(
            BramShape::widest_with_addr_bits(9),
            Some(BramShape {
                addr_bits: 9,
                data_bits: 36
            })
        );
        assert_eq!(
            BramShape::widest_with_addr_bits(10),
            Some(BramShape {
                addr_bits: 10,
                data_bits: 18
            })
        );
        assert_eq!(
            BramShape::widest_with_addr_bits(14),
            Some(BramShape {
                addr_bits: 14,
                data_bits: 1
            })
        );
        assert_eq!(BramShape::widest_with_addr_bits(15), None);
        assert_eq!(BramShape::max_addr_bits(), 14);
    }

    #[test]
    fn unknown_device_name() {
        assert!(Device::by_name("XC9999").is_none());
    }
}
