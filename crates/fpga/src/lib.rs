//! Virtex-II-like FPGA fabric model: devices, mapped netlists, packing,
//! placement, routing and timing.
//!
//! This crate stands in for the Xilinx ISE implementation tools in the
//! paper's flow (Fig. 6): it takes a technology-mapped design and produces
//! the physical quantities the power model consumes — per-net wirelength
//! and switch counts, resource utilization, and the critical path.
//!
//! * [`device`] — the Virtex-II family floorplan (XC2V40…XC2V8000) and the
//!   18-Kbit block-RAM aspect ratios;
//! * [`netlist`] — LUT/FF/BRAM cells and nets, with validation and
//!   combinational levelization;
//! * [`mod@pack`] — LUT/FF pairing and CLB clustering (area accounting);
//! * [`mod@place`] — simulated-annealing placement (timing-driven via a
//!   criticality-weighted cost term);
//! * [`mod@route`] — congestion-aware grid routing (wirelength, switches);
//! * [`timing`] — post-route static timing analysis and fmax;
//! * [`schedule`] — the levelized evaluation order shared with `netsim`;
//! * [`sta`] — the incremental static-timing kernel the placer queries.
//!
//! # Examples
//!
//! ```
//! use fpga_fabric::device::Device;
//!
//! let d = Device::xc2v250();
//! assert_eq!(d.num_brams(), 24);
//! assert_eq!(d.num_slices(), 1536);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod device;
pub mod netlist;
pub mod pack;
pub mod place;
pub mod route;
pub mod schedule;
pub mod sta;
pub mod timing;

pub use device::{BramShape, Device};
pub use netlist::{Cell, CellId, NetId, Netlist};
pub use pack::{pack, AreaReport, PackedDesign};
pub use place::{place, PlaceOptions, Placement};
pub use route::{route, RouteOptions, RoutedDesign};
pub use schedule::Schedule;
pub use sta::TimingKernel;
pub use timing::{analyze, DelayModel, TimingReport};
