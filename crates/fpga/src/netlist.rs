//! Technology-mapped netlists.
//!
//! A [`Netlist`] is the post-mapping design representation shared by the
//! packer, placer, router, simulator and power model: LUT4 cells, D
//! flip-flops, block RAMs (with optional enable — the port the paper's
//! clock-control technique drives), constants, and named top-level ports.
//! There is a single implicit clock domain, matching the paper's designs.

use crate::device::BramShape;
use std::collections::HashMap;
use std::fmt;

/// Index of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The net index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The cell index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The optional write port of a block RAM (the second port of the
/// dual-port Virtex-II BRAM, used here to rewrite FSM contents at run
/// time — the paper's ECO story without reconfiguration).
#[derive(Debug, Clone, PartialEq)]
pub struct BramWrite {
    /// Write-address nets, LSB first (`shape.addr_bits` of them).
    pub addr: Vec<NetId>,
    /// Write-data nets, LSB first (up to `shape.data_bits`).
    pub data: Vec<NetId>,
    /// Write enable.
    pub we: NetId,
}

/// A mapped cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A K-input LUT (K ≤ 6; Virtex-II uses 4).
    Lut {
        /// Input nets, truth-table variable order.
        inputs: Vec<NetId>,
        /// Output net.
        output: NetId,
        /// Truth table packed LSB-first (entry for input pattern `m` is bit
        /// `m`).
        truth: u64,
    },
    /// A D flip-flop on the implicit clock.
    Ff {
        /// Data input net.
        d: NetId,
        /// Output net.
        q: NetId,
        /// Optional clock-enable net (holds state when low).
        ce: Option<NetId>,
        /// Power-on / reset value.
        init: bool,
    },
    /// A block RAM used as a ROM (single read port, registered output).
    Bram {
        /// Aspect ratio.
        shape: BramShape,
        /// Address nets, LSB first (`addr.len() == shape.addr_bits`).
        addr: Vec<NetId>,
        /// Data output nets, LSB first (`dout.len() <= shape.data_bits`;
        /// unused high bits may be omitted).
        dout: Vec<NetId>,
        /// Optional enable net: when low, the output latches hold (the
        /// BRAM is not clocked — the paper's Sec. 6 power lever).
        en: Option<NetId>,
        /// Memory contents, one word per address (low `data_bits` used).
        init: Vec<u64>,
        /// Output-latch value after configuration/reset (the paper relies
        /// on cleared latches addressing word 0).
        output_init: u64,
        /// Optional write port (read port is read-first on collisions).
        write: Option<BramWrite>,
    },
    /// A constant driver.
    Const {
        /// Output net.
        output: NetId,
        /// Value.
        value: bool,
    },
}

impl Cell {
    /// The nets this cell drives.
    #[must_use]
    pub fn outputs(&self) -> Vec<NetId> {
        match self {
            Cell::Lut { output, .. } | Cell::Const { output, .. } => vec![*output],
            Cell::Ff { q, .. } => vec![*q],
            Cell::Bram { dout, .. } => dout.clone(),
        }
    }

    /// The nets this cell reads.
    #[must_use]
    pub fn inputs(&self) -> Vec<NetId> {
        match self {
            Cell::Lut { inputs, .. } => inputs.clone(),
            Cell::Const { .. } => Vec::new(),
            Cell::Ff { d, ce, .. } => {
                let mut v = vec![*d];
                v.extend(ce.iter().copied());
                v
            }
            Cell::Bram {
                addr, en, write, ..
            } => {
                let mut v = addr.clone();
                v.extend(en.iter().copied());
                if let Some(w) = write {
                    v.extend(w.addr.iter().copied());
                    v.extend(w.data.iter().copied());
                    v.push(w.we);
                }
                v
            }
        }
    }

    /// Is the cell sequential (clocked)?
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(self, Cell::Ff { .. } | Cell::Bram { .. })
    }
}

/// Errors from netlist validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net has no driver (neither a cell output nor a top-level input).
    Undriven(NetId),
    /// A net has multiple drivers.
    MultiplyDriven(NetId),
    /// A combinational cycle exists through LUTs.
    CombinationalCycle,
    /// A cell references a net id out of range.
    BadNet {
        /// The offending cell.
        cell: CellId,
        /// The offending net.
        net: NetId,
    },
    /// Structural inconsistency (wrong pin counts etc).
    Malformed {
        /// The offending cell.
        cell: CellId,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Undriven(n) => write!(f, "net {} has no driver", n.0),
            NetlistError::MultiplyDriven(n) => write!(f, "net {} has multiple drivers", n.0),
            NetlistError::CombinationalCycle => write!(f, "combinational cycle through LUTs"),
            NetlistError::BadNet { cell, net } => {
                write!(f, "cell {} references invalid net {}", cell.0, net.0)
            }
            NetlistError::Malformed { cell, reason } => {
                write!(f, "cell {}: {}", cell.0, reason)
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A mapped design.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    net_names: Vec<String>,
    cells: Vec<Cell>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// Creates a net.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.net_names.push(name.into());
        NetId((self.net_names.len() - 1) as u32)
    }

    /// Adds a cell.
    pub fn add_cell(&mut self, cell: Cell) -> CellId {
        self.cells.push(cell);
        CellId((self.cells.len() - 1) as u32)
    }

    /// Declares `net` as a top-level input.
    pub fn add_input(&mut self, name: impl Into<String>, net: NetId) {
        self.inputs.push((name.into(), net));
    }

    /// Declares `net` as a top-level output.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.net_names.len()
    }

    /// A net's name.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Finds a net by name (first match).
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| NetId(i as u32))
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// A cell by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Top-level inputs.
    #[must_use]
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// Top-level outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Counts of each cell type `(luts, ffs, brams, consts)`.
    #[must_use]
    pub fn cell_counts(&self) -> CellCounts {
        let mut c = CellCounts::default();
        for cell in &self.cells {
            match cell {
                Cell::Lut { .. } => c.luts += 1,
                Cell::Ff { .. } => c.ffs += 1,
                Cell::Bram { .. } => c.brams += 1,
                Cell::Const { .. } => c.consts += 1,
            }
        }
        c
    }

    /// Map from net to its driving cell (top-level inputs have none).
    #[must_use]
    pub fn driver_map(&self) -> HashMap<NetId, CellId> {
        let mut m = HashMap::new();
        for (i, cell) in self.cells.iter().enumerate() {
            for o in cell.outputs() {
                m.insert(o, CellId(i as u32));
            }
        }
        m
    }

    /// Per-net fanout: cells reading each net (top outputs not included).
    #[must_use]
    pub fn fanout_map(&self) -> Vec<Vec<CellId>> {
        let mut m = vec![Vec::new(); self.num_nets()];
        for (i, cell) in self.cells.iter().enumerate() {
            for n in cell.inputs() {
                m[n.index()].push(CellId(i as u32));
            }
        }
        m
    }

    /// Replaces the `init` contents of the BRAM cell at `cell_index`.
    ///
    /// The new image must have the same depth as the BRAM's shape. This is
    /// the content-rewrite (ECO) primitive: it changes no structure, so an
    /// existing placement/routing stays valid.
    ///
    /// # Errors
    ///
    /// Returns a message if the cell is not a BRAM or the image length is
    /// wrong.
    pub fn replace_bram_init(
        &mut self,
        cell_index: usize,
        new_init: Vec<u64>,
    ) -> Result<(), String> {
        match self.cells.get_mut(cell_index) {
            Some(Cell::Bram { shape, init, .. }) => {
                if new_init.len() != shape.depth() {
                    return Err(format!(
                        "init image has {} words, shape {shape} needs {}",
                        new_init.len(),
                        shape.depth()
                    ));
                }
                *init = new_init;
                Ok(())
            }
            Some(_) => Err(format!("cell {cell_index} is not a BRAM")),
            None => Err(format!("no cell {cell_index}")),
        }
    }

    /// A copy of this netlist with every BRAM's `init` image zeroed
    /// (`output_init` untouched). Two netlists that differ only in
    /// memory contents collapse onto the same zeroed skeleton — the
    /// structural identity an overlay base artifact is keyed on: one
    /// placement/routing of the skeleton is valid for every member of
    /// the class, because [`Netlist::replace_bram_init`] changes no
    /// structure.
    #[must_use]
    pub fn with_zeroed_bram_init(&self) -> Netlist {
        let mut n = self.clone();
        for cell in &mut n.cells {
            if let Cell::Bram { shape, init, .. } = cell {
                *init = vec![0u64; shape.depth()];
            }
        }
        n
    }

    /// Validates structural sanity: single drivers, no dangling references,
    /// consistent pin counts, and no combinational cycles. Returns the
    /// topological order of combinational cells on success.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<Vec<CellId>, NetlistError> {
        let n = self.num_nets();
        let check = |cell: CellId, net: NetId| -> Result<(), NetlistError> {
            if net.index() >= n {
                Err(NetlistError::BadNet { cell, net })
            } else {
                Ok(())
            }
        };
        let mut driver: Vec<Option<bool>> = vec![None; n]; // Some(_) = driven
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId(i as u32);
            for net in cell.inputs().into_iter().chain(cell.outputs()) {
                check(id, net)?;
            }
            match cell {
                Cell::Lut { inputs, truth, .. } => {
                    if inputs.len() > 6 {
                        return Err(NetlistError::Malformed {
                            cell: id,
                            reason: format!("LUT with {} inputs", inputs.len()),
                        });
                    }
                    if inputs.len() < 6 && *truth >> (1u64 << inputs.len()) != 0 {
                        return Err(NetlistError::Malformed {
                            cell: id,
                            reason: "truth table wider than input count".into(),
                        });
                    }
                }
                Cell::Bram {
                    shape,
                    addr,
                    dout,
                    init,
                    write,
                    ..
                } => {
                    if let Some(w) = write {
                        if w.addr.len() != shape.addr_bits {
                            return Err(NetlistError::Malformed {
                                cell: id,
                                reason: format!(
                                    "{} write-address pins for shape {shape}",
                                    w.addr.len()
                                ),
                            });
                        }
                        if w.data.len() > shape.data_bits {
                            return Err(NetlistError::Malformed {
                                cell: id,
                                reason: format!(
                                    "{} write-data pins for shape {shape}",
                                    w.data.len()
                                ),
                            });
                        }
                    }
                    if addr.len() != shape.addr_bits {
                        return Err(NetlistError::Malformed {
                            cell: id,
                            reason: format!("{} address pins for shape {shape}", addr.len()),
                        });
                    }
                    if dout.len() > shape.data_bits {
                        return Err(NetlistError::Malformed {
                            cell: id,
                            reason: format!("{} data pins for shape {shape}", dout.len()),
                        });
                    }
                    if init.len() != shape.depth() {
                        return Err(NetlistError::Malformed {
                            cell: id,
                            reason: format!(
                                "{} init words for depth {}",
                                init.len(),
                                shape.depth()
                            ),
                        });
                    }
                }
                Cell::Ff { .. } | Cell::Const { .. } => {}
            }
            for o in cell.outputs() {
                if driver[o.index()].is_some() {
                    return Err(NetlistError::MultiplyDriven(o));
                }
                driver[o.index()] = Some(true);
            }
        }
        for (_, net) in &self.inputs {
            check(CellId(u32::MAX), *net)?;
            if driver[net.index()].is_some() {
                return Err(NetlistError::MultiplyDriven(*net));
            }
            driver[net.index()] = Some(false);
        }
        // Every net read by a cell or exported must be driven.
        for cell in &self.cells {
            for net in cell.inputs() {
                if driver[net.index()].is_none() {
                    return Err(NetlistError::Undriven(net));
                }
            }
        }
        for (_, net) in &self.outputs {
            if driver[net.index()].is_none() {
                return Err(NetlistError::Undriven(*net));
            }
        }
        self.combinational_order()
    }

    /// Topological order over combinational cells (LUTs/constants);
    /// sequential cells are sources/sinks.
    ///
    /// # Errors
    ///
    /// Fails with [`NetlistError::CombinationalCycle`] when LUTs form a
    /// loop not broken by a FF or BRAM.
    pub fn combinational_order(&self) -> Result<Vec<CellId>, NetlistError> {
        let driver = self.driver_map();
        let n = self.cells.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 visiting, 2 done
        let mut order = Vec::with_capacity(n);

        // Iterative DFS over combinational dependencies.
        for start in 0..n {
            if state[start] != 0 || self.cells[start].is_sequential() {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            state[start] = 1;
            while let Some((cell, child)) = stack.last().copied() {
                let deps: Vec<usize> = self.cells[cell]
                    .inputs()
                    .iter()
                    .filter_map(|net| driver.get(net))
                    .map(|c| c.index())
                    .filter(|&c| !self.cells[c].is_sequential())
                    .collect();
                if child < deps.len() {
                    stack.last_mut().expect("non-empty stack").1 += 1;
                    let next = deps[child];
                    match state[next] {
                        0 => {
                            state[next] = 1;
                            stack.push((next, 0));
                        }
                        1 => return Err(NetlistError::CombinationalCycle),
                        _ => {}
                    }
                } else {
                    state[cell] = 2;
                    order.push(CellId(cell as u32));
                    stack.pop();
                }
            }
        }
        Ok(order)
    }
}

/// Cell-type totals of a netlist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCounts {
    /// LUT count.
    pub luts: usize,
    /// Flip-flop count.
    pub ffs: usize,
    /// Block-RAM count.
    pub brams: usize,
    /// Constant-driver count.
    pub consts: usize,
}

impl fmt::Display for CellCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT, {} FF, {} BRAM, {} const",
            self.luts, self.ffs, self.brams, self.consts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BramShape;

    /// A 2-bit counter with enable: en -> [lut, lut] -> ff -> loop.
    fn counter() -> Netlist {
        let mut n = Netlist::new("cnt");
        let en = n.add_net("en");
        let q0 = n.add_net("q0");
        let q1 = n.add_net("q1");
        let d0 = n.add_net("d0");
        let d1 = n.add_net("d1");
        n.add_input("en", en);
        n.add_output("q0", q0);
        n.add_output("q1", q1);
        // d0 = q0 ^ en : inputs [q0, en] -> truth 0110
        n.add_cell(Cell::Lut {
            inputs: vec![q0, en],
            output: d0,
            truth: 0b0110,
        });
        // d1 = q1 ^ (q0 & en): inputs [q1, q0, en] -> minterm eval
        let mut t = 0u64;
        for m in 0..8u64 {
            let q1v = m & 1 == 1;
            let q0v = m >> 1 & 1 == 1;
            let env = m >> 2 & 1 == 1;
            if q1v ^ (q0v && env) {
                t |= 1 << m;
            }
        }
        n.add_cell(Cell::Lut {
            inputs: vec![q1, q0, en],
            output: d1,
            truth: t,
        });
        n.add_cell(Cell::Ff {
            d: d0,
            q: q0,
            ce: None,
            init: false,
        });
        n.add_cell(Cell::Ff {
            d: d1,
            q: q1,
            ce: None,
            init: false,
        });
        n
    }

    #[test]
    fn counter_validates() {
        let n = counter();
        let order = n.validate().unwrap();
        assert_eq!(order.len(), 2); // two LUTs
        assert_eq!(
            n.cell_counts(),
            CellCounts {
                luts: 2,
                ffs: 2,
                brams: 0,
                consts: 0
            }
        );
    }

    #[test]
    fn undriven_net_detected() {
        let mut n = counter();
        let ghost = n.add_net("ghost");
        let out = n.add_net("bad");
        n.add_cell(Cell::Lut {
            inputs: vec![ghost],
            output: out,
            truth: 0b10,
        });
        assert!(matches!(n.validate(), Err(NetlistError::Undriven(_))));
    }

    #[test]
    fn double_driver_detected() {
        let mut n = counter();
        let q0 = NetId(1);
        n.add_cell(Cell::Const {
            output: q0,
            value: true,
        });
        assert!(matches!(n.validate(), Err(NetlistError::MultiplyDriven(_))));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("cyc");
        let a = n.add_net("a");
        let b = n.add_net("b");
        n.add_cell(Cell::Lut {
            inputs: vec![b],
            output: a,
            truth: 0b01,
        });
        n.add_cell(Cell::Lut {
            inputs: vec![a],
            output: b,
            truth: 0b01,
        });
        n.add_output("a", a);
        assert_eq!(n.validate(), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn sequential_loop_is_fine() {
        // FF output feeding its own D through a LUT: legal.
        let mut n = Netlist::new("loop");
        let q = n.add_net("q");
        let d = n.add_net("d");
        n.add_cell(Cell::Lut {
            inputs: vec![q],
            output: d,
            truth: 0b01,
        });
        n.add_cell(Cell::Ff {
            d,
            q,
            ce: None,
            init: false,
        });
        n.add_output("q", q);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn bram_pin_checks() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("rom");
        let a: Vec<NetId> = (0..9).map(|i| n.add_net(format!("a{i}"))).collect();
        let d: Vec<NetId> = (0..4).map(|i| n.add_net(format!("d{i}"))).collect();
        for (i, net) in a.iter().enumerate() {
            n.add_input(format!("a{i}"), *net);
        }
        for (i, net) in d.iter().enumerate() {
            n.add_output(format!("d{i}"), *net);
        }
        n.add_cell(Cell::Bram {
            shape,
            addr: a.clone(),
            dout: d.clone(),
            en: None,
            init: vec![0; 512],
            output_init: 0,
            write: None,
        });
        assert!(n.validate().is_ok());

        // Wrong init length.
        let mut bad = Netlist::new("rom2");
        let a2: Vec<NetId> = (0..9).map(|i| bad.add_net(format!("a{i}"))).collect();
        let d2 = bad.add_net("d");
        for (i, net) in a2.iter().enumerate() {
            bad.add_input(format!("a{i}"), *net);
        }
        bad.add_output("d", d2);
        bad.add_cell(Cell::Bram {
            shape,
            addr: a2,
            dout: vec![d2],
            en: None,
            init: vec![0; 100],
            output_init: 0,
            write: None,
        });
        assert!(matches!(
            bad.validate(),
            Err(NetlistError::Malformed { .. })
        ));
    }

    #[test]
    fn zeroed_bram_init_preserves_structure() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("rom");
        let a: Vec<NetId> = (0..9).map(|i| n.add_net(format!("a{i}"))).collect();
        let d = n.add_net("d");
        for (i, net) in a.iter().enumerate() {
            n.add_input(format!("a{i}"), *net);
        }
        n.add_output("d", d);
        n.add_cell(Cell::Bram {
            shape,
            addr: a,
            dout: vec![d],
            en: None,
            init: (0..512).map(|w| w as u64 * 3 + 1).collect(),
            output_init: 0,
            write: None,
        });
        let z = n.with_zeroed_bram_init();
        assert!(z.validate().is_ok());
        assert_eq!(z.num_nets(), n.num_nets());
        assert_eq!(z.cell_counts(), n.cell_counts());
        match z.cell(CellId(0)) {
            Cell::Bram { init, .. } => assert!(init.iter().all(|&w| w == 0)),
            other => panic!("expected a BRAM, got {other:?}"),
        }
        // A second, differently-initialized member of the same class
        // collapses onto the same skeleton.
        let mut m = n.clone();
        m.replace_bram_init(0, vec![7u64; 512]).unwrap();
        assert_eq!(
            format!("{:?}", m.with_zeroed_bram_init()),
            format!("{:?}", z)
        );
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let n = counter();
        let order = n.validate().unwrap();
        // All combinational cells appear exactly once.
        let mut seen = std::collections::HashSet::new();
        for id in &order {
            assert!(seen.insert(*id));
            assert!(!n.cell(*id).is_sequential());
        }
    }

    #[test]
    fn wide_truth_rejected() {
        let mut n = Netlist::new("w");
        let a = n.add_net("a");
        let y = n.add_net("y");
        n.add_input("a", a);
        n.add_output("y", y);
        n.add_cell(Cell::Lut {
            inputs: vec![a],
            output: y,
            truth: 0b100,
        });
        assert!(matches!(n.validate(), Err(NetlistError::Malformed { .. })));
    }
}
