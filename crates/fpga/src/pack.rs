//! Packing: netlist cells → placeable entities (CLBs, BRAMs, IOBs).
//!
//! Virtex-II slices hold two LUT4/FF pairs and a CLB holds four slices.
//! The packer pairs each flip-flop with the LUT that exclusively drives its
//! D pin (the free LUT→FF path inside a logic element), then clusters logic
//! elements into CLBs greedily by shared nets — a light-weight stand-in for
//! ISE's `map` step that preserves the area accounting the paper's Table 1
//! reports (LUTs, FFs, slices, block RAMs).

use crate::device::{LUTS_PER_SLICE, SLICES_PER_CLB};
use crate::netlist::{Cell, CellId, NetId, Netlist};
use std::collections::{HashMap, HashSet};

/// Logic elements per CLB.
pub const LES_PER_CLB: usize = SLICES_PER_CLB * LUTS_PER_SLICE;

/// A logic element: one LUT site and one FF site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicElement {
    /// The LUT occupying this element, if any.
    pub lut: Option<CellId>,
    /// The FF occupying this element, if any.
    pub ff: Option<CellId>,
}

/// A packed CLB (up to [`LES_PER_CLB`] logic elements).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clb {
    /// The logic elements packed into this CLB.
    pub les: Vec<LogicElement>,
}

impl Clb {
    /// Slices occupied (each slice hosts two logic elements).
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.les.len().div_ceil(LUTS_PER_SLICE)
    }
}

/// An I/O block for one top-level port bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Iob {
    /// Port name.
    pub name: String,
    /// The net at the pad.
    pub net: NetId,
    /// Direction.
    pub is_input: bool,
}

/// The packed design.
#[derive(Debug, Clone, Default)]
pub struct PackedDesign {
    /// Packed CLBs.
    pub clbs: Vec<Clb>,
    /// BRAM cells (one placeable entity each).
    pub brams: Vec<CellId>,
    /// IOBs, inputs first then outputs, in port order.
    pub iobs: Vec<Iob>,
    /// For each cell, the entity it was packed into (constants: `None`).
    pub entity_of_cell: Vec<Option<EntityId>>,
}

/// A placeable entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityId {
    /// CLB by index into [`PackedDesign::clbs`].
    Clb(usize),
    /// BRAM by index into [`PackedDesign::brams`].
    Bram(usize),
    /// IOB by index into [`PackedDesign::iobs`].
    Iob(usize),
}

/// Area totals of a packed design (the paper's Table 1 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaReport {
    /// LUTs used.
    pub luts: usize,
    /// Flip-flops used.
    pub ffs: usize,
    /// Slices occupied.
    pub slices: usize,
    /// Block RAMs used.
    pub brams: usize,
}

impl std::fmt::Display for AreaReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} slice / {} BRAM",
            self.luts, self.ffs, self.slices, self.brams
        )
    }
}

impl PackedDesign {
    /// Area totals.
    #[must_use]
    pub fn area(&self, netlist: &Netlist) -> AreaReport {
        let counts = netlist.cell_counts();
        AreaReport {
            luts: counts.luts,
            ffs: counts.ffs,
            slices: self.clbs.iter().map(Clb::num_slices).sum(),
            brams: counts.brams,
        }
    }

    /// Total placeable entities.
    #[must_use]
    pub fn num_entities(&self) -> usize {
        self.clbs.len() + self.brams.len() + self.iobs.len()
    }
}

/// Packs a netlist.
///
/// Constants are absorbed (not placed); they contribute no area, matching
/// how FPGA tools tie constants off inside the fabric.
#[must_use]
pub fn pack(netlist: &Netlist) -> PackedDesign {
    let fanout = netlist.fanout_map();
    let exported: HashSet<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();

    // 1. Pair FFs with their exclusive driving LUT.
    let driver = netlist.driver_map();
    let mut paired_with: HashMap<CellId, CellId> = HashMap::new(); // lut -> ff
    let mut ff_paired: HashSet<CellId> = HashSet::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        let ff_id = CellId(i as u32);
        if let Cell::Ff { d, .. } = cell {
            if exported.contains(d) {
                continue;
            }
            if let Some(&lut_id) = driver.get(d) {
                if matches!(netlist.cell(lut_id), Cell::Lut { .. })
                    && fanout[d.index()].len() == 1
                    && !paired_with.contains_key(&lut_id)
                {
                    paired_with.insert(lut_id, ff_id);
                    ff_paired.insert(ff_id);
                }
            }
        }
    }

    // 2. Build logic elements.
    let mut les: Vec<LogicElement> = Vec::new();
    let mut le_of_cell: HashMap<CellId, usize> = HashMap::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        let id = CellId(i as u32);
        match cell {
            Cell::Lut { .. } => {
                let ff = paired_with.get(&id).copied();
                les.push(LogicElement { lut: Some(id), ff });
                le_of_cell.insert(id, les.len() - 1);
                if let Some(ff_id) = ff {
                    le_of_cell.insert(ff_id, les.len() - 1);
                }
            }
            Cell::Ff { .. } if !ff_paired.contains(&id) => {
                les.push(LogicElement {
                    lut: None,
                    ff: Some(id),
                });
                le_of_cell.insert(id, les.len() - 1);
            }
            _ => {}
        }
    }

    // 3. Per-LE net signature for connectivity clustering.
    let le_nets: Vec<HashSet<NetId>> = les
        .iter()
        .map(|le| {
            let mut nets = HashSet::new();
            for id in [le.lut, le.ff].into_iter().flatten() {
                let cell = netlist.cell(id);
                nets.extend(cell.inputs());
                nets.extend(cell.outputs());
            }
            nets
        })
        .collect();

    // 4. Greedy clustering of LEs into CLBs.
    let mut assigned = vec![false; les.len()];
    let mut clbs: Vec<Clb> = Vec::new();
    let mut clb_of_le: Vec<usize> = vec![0; les.len()];
    for seed in 0..les.len() {
        if assigned[seed] {
            continue;
        }
        let mut clb = Clb::default();
        let mut clb_nets: HashSet<NetId> = HashSet::new();
        let add = |idx: usize,
                   clb: &mut Clb,
                   clb_nets: &mut HashSet<NetId>,
                   assigned: &mut Vec<bool>,
                   clb_of_le: &mut Vec<usize>| {
            assigned[idx] = true;
            clb_of_le[idx] = clbs.len();
            clb.les.push(les[idx]);
            clb_nets.extend(le_nets[idx].iter().copied());
        };
        add(seed, &mut clb, &mut clb_nets, &mut assigned, &mut clb_of_le);
        while clb.les.len() < LES_PER_CLB {
            // Find the unassigned LE sharing the most nets.
            let mut best: Option<(usize, usize)> = None; // (shared, idx)
            for (idx, done) in assigned.iter().enumerate() {
                if *done {
                    continue;
                }
                let shared = le_nets[idx].intersection(&clb_nets).count();
                if shared == 0 {
                    continue;
                }
                if best.is_none_or(|(s, _)| shared > s) {
                    best = Some((shared, idx));
                }
            }
            match best {
                Some((_, idx)) => {
                    add(idx, &mut clb, &mut clb_nets, &mut assigned, &mut clb_of_le);
                }
                None => break,
            }
        }
        clbs.push(clb);
    }

    // 5. BRAMs and IOBs.
    let mut brams: Vec<CellId> = Vec::new();
    let mut bram_index: HashMap<CellId, usize> = HashMap::new();
    for (i, cell) in netlist.cells().iter().enumerate() {
        if matches!(cell, Cell::Bram { .. }) {
            bram_index.insert(CellId(i as u32), brams.len());
            brams.push(CellId(i as u32));
        }
    }
    let mut iobs: Vec<Iob> = Vec::new();
    for (name, net) in netlist.inputs() {
        iobs.push(Iob {
            name: name.clone(),
            net: *net,
            is_input: true,
        });
    }
    for (name, net) in netlist.outputs() {
        iobs.push(Iob {
            name: name.clone(),
            net: *net,
            is_input: false,
        });
    }

    // 6. Cell -> entity map.
    let entity_of_cell: Vec<Option<EntityId>> = (0..netlist.cells().len())
        .map(|i| {
            let id = CellId(i as u32);
            match netlist.cell(id) {
                Cell::Lut { .. } | Cell::Ff { .. } => {
                    le_of_cell.get(&id).map(|&le| EntityId::Clb(clb_of_le[le]))
                }
                Cell::Bram { .. } => bram_index.get(&id).map(|&b| EntityId::Bram(b)),
                Cell::Const { .. } => None,
            }
        })
        .collect();

    PackedDesign {
        clbs,
        brams,
        iobs,
        entity_of_cell,
    }
}

/// Errors from [`pack_partitioned`]: the claimed base prefix does not
/// correspond to the base packing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The base prefix is longer than the netlist.
    BaseTooLarge {
        /// Claimed base-prefix cell count.
        base_cells: usize,
        /// Cells actually in the netlist.
        cells: usize,
    },
    /// The base packing's cell→entity map covers a different cell count.
    EntityMapLength {
        /// Expected length (the base prefix).
        expected: usize,
        /// The base packing's actual map length.
        got: usize,
    },
    /// A base entity references a cell beyond the base prefix.
    CellOutOfRange {
        /// The offending cell index.
        cell: usize,
        /// The base prefix length.
        base_cells: usize,
    },
    /// A base entity's cell has a different kind in this netlist.
    CellKindMismatch {
        /// The offending cell index.
        cell: usize,
        /// Kind the base packing put at that slot.
        expected: &'static str,
        /// Kind the netlist actually has there.
        got: &'static str,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::BaseTooLarge { base_cells, cells } => {
                write!(f, "base prefix of {base_cells} cells exceeds netlist ({cells} cells)")
            }
            PartitionError::EntityMapLength { expected, got } => {
                write!(f, "base entity map covers {got} cells, prefix is {expected}")
            }
            PartitionError::CellOutOfRange { cell, base_cells } => {
                write!(f, "base entity uses cell {cell} beyond the {base_cells}-cell prefix")
            }
            PartitionError::CellKindMismatch {
                cell,
                expected,
                got,
            } => write!(f, "cell {cell} is a {got} here but a {expected} in the base packing"),
        }
    }
}

impl std::error::Error for PartitionError {}

fn kind_name(cell: &Cell) -> &'static str {
    match cell {
        Cell::Lut { .. } => "LUT",
        Cell::Ff { .. } => "FF",
        Cell::Bram { .. } => "BRAM",
        Cell::Const { .. } => "constant",
    }
}

/// Packs a netlist whose first `base_cells` cells are exactly the cells of
/// an already-packed base design (same kinds, same order), reusing the
/// base packing verbatim for that prefix and clustering only the appended
/// delta cells into new CLBs.
///
/// This is the packing half of the ECO contract: the clock-control rewrite
/// appends its enable cone strictly after the plain design's cells, so the
/// gated design's entity list is the plain design's entity list (same CLB
/// membership, same indices) followed by fresh delta CLBs — base-entity
/// correspondence holds by construction rather than by hoping the
/// full-netlist clustering tie-breaks identically. IOBs are rebuilt from
/// this netlist's ports (net ids may differ from the base netlist's);
/// delta pairing and clustering never mix base and delta cells.
///
/// # Errors
///
/// A typed [`PartitionError`] when the base packing does not actually
/// describe the claimed prefix.
pub fn pack_partitioned(
    netlist: &Netlist,
    base: &PackedDesign,
    base_cells: usize,
) -> Result<PackedDesign, PartitionError> {
    let cells = netlist.cells().len();
    if base_cells > cells {
        return Err(PartitionError::BaseTooLarge { base_cells, cells });
    }
    if base.entity_of_cell.len() != base_cells {
        return Err(PartitionError::EntityMapLength {
            expected: base_cells,
            got: base.entity_of_cell.len(),
        });
    }
    // Every cell the base packing placed must exist in the prefix with the
    // same kind.
    let check = |id: CellId, expected: &'static str| -> Result<(), PartitionError> {
        if id.index() >= base_cells {
            return Err(PartitionError::CellOutOfRange {
                cell: id.index(),
                base_cells,
            });
        }
        let got = kind_name(netlist.cell(id));
        if got != expected {
            return Err(PartitionError::CellKindMismatch {
                cell: id.index(),
                expected,
                got,
            });
        }
        Ok(())
    };
    for clb in &base.clbs {
        for le in &clb.les {
            if let Some(lut) = le.lut {
                check(lut, "LUT")?;
            }
            if let Some(ff) = le.ff {
                check(ff, "FF")?;
            }
        }
    }
    for &bram in &base.brams {
        check(bram, "BRAM")?;
    }

    let mut clbs = base.clbs.clone();
    let mut brams = base.brams.clone();
    let mut entity_of_cell = base.entity_of_cell.clone();

    // Delta pairing: an FF pairs with its exclusive driving LUT only when
    // both live in the delta (a base LUT already occupies a base LE).
    let fanout = netlist.fanout_map();
    let exported: HashSet<NetId> = netlist.outputs().iter().map(|(_, n)| *n).collect();
    let driver = netlist.driver_map();
    let mut paired_with: HashMap<CellId, CellId> = HashMap::new(); // lut -> ff
    let mut ff_paired: HashSet<CellId> = HashSet::new();
    for i in base_cells..cells {
        let ff_id = CellId(i as u32);
        if let Cell::Ff { d, .. } = netlist.cell(ff_id) {
            if exported.contains(d) {
                continue;
            }
            if let Some(&lut_id) = driver.get(d) {
                if lut_id.index() >= base_cells
                    && matches!(netlist.cell(lut_id), Cell::Lut { .. })
                    && fanout[d.index()].len() == 1
                    && !paired_with.contains_key(&lut_id)
                {
                    paired_with.insert(lut_id, ff_id);
                    ff_paired.insert(ff_id);
                }
            }
        }
    }

    // Delta logic elements, then greedy clustering among them only.
    let mut les: Vec<LogicElement> = Vec::new();
    let mut le_of_cell: HashMap<CellId, usize> = HashMap::new();
    let mut bram_index: HashMap<CellId, usize> = HashMap::new();
    for i in base_cells..cells {
        let id = CellId(i as u32);
        match netlist.cell(id) {
            Cell::Lut { .. } => {
                let ff = paired_with.get(&id).copied();
                les.push(LogicElement { lut: Some(id), ff });
                le_of_cell.insert(id, les.len() - 1);
                if let Some(ff_id) = ff {
                    le_of_cell.insert(ff_id, les.len() - 1);
                }
            }
            Cell::Ff { .. } if !ff_paired.contains(&id) => {
                les.push(LogicElement {
                    lut: None,
                    ff: Some(id),
                });
                le_of_cell.insert(id, les.len() - 1);
            }
            Cell::Bram { .. } => {
                bram_index.insert(id, brams.len());
                brams.push(id);
            }
            _ => {}
        }
    }
    let le_nets: Vec<HashSet<NetId>> = les
        .iter()
        .map(|le| {
            let mut nets = HashSet::new();
            for id in [le.lut, le.ff].into_iter().flatten() {
                let cell = netlist.cell(id);
                nets.extend(cell.inputs());
                nets.extend(cell.outputs());
            }
            nets
        })
        .collect();
    let mut assigned = vec![false; les.len()];
    let mut clb_of_le: Vec<usize> = vec![0; les.len()];
    for seed in 0..les.len() {
        if assigned[seed] {
            continue;
        }
        let mut clb = Clb::default();
        let mut clb_nets: HashSet<NetId> = HashSet::new();
        let add = |idx: usize,
                   clb: &mut Clb,
                   clb_nets: &mut HashSet<NetId>,
                   assigned: &mut Vec<bool>,
                   clb_of_le: &mut Vec<usize>| {
            assigned[idx] = true;
            clb_of_le[idx] = clbs.len();
            clb.les.push(les[idx]);
            clb_nets.extend(le_nets[idx].iter().copied());
        };
        add(seed, &mut clb, &mut clb_nets, &mut assigned, &mut clb_of_le);
        while clb.les.len() < LES_PER_CLB {
            let mut best: Option<(usize, usize)> = None; // (shared, idx)
            for (idx, done) in assigned.iter().enumerate() {
                if *done {
                    continue;
                }
                let shared = le_nets[idx].intersection(&clb_nets).count();
                if shared == 0 {
                    continue;
                }
                if best.is_none_or(|(s, _)| shared > s) {
                    best = Some((shared, idx));
                }
            }
            match best {
                Some((_, idx)) => {
                    add(idx, &mut clb, &mut clb_nets, &mut assigned, &mut clb_of_le);
                }
                None => break,
            }
        }
        clbs.push(clb);
    }

    // Delta cell → entity map, in cell order (constants stay unplaced).
    for i in base_cells..cells {
        let id = CellId(i as u32);
        entity_of_cell.push(match netlist.cell(id) {
            Cell::Lut { .. } | Cell::Ff { .. } => {
                le_of_cell.get(&id).map(|&le| EntityId::Clb(clb_of_le[le]))
            }
            Cell::Bram { .. } => bram_index.get(&id).map(|&b| EntityId::Bram(b)),
            Cell::Const { .. } => None,
        });
    }

    // IOBs from this netlist's ports (net ids shift across the rewrite,
    // so the base's IOB list cannot be reused verbatim).
    let mut iobs: Vec<Iob> = Vec::new();
    for (name, net) in netlist.inputs() {
        iobs.push(Iob {
            name: name.clone(),
            net: *net,
            is_input: true,
        });
    }
    for (name, net) in netlist.outputs() {
        iobs.push(Iob {
            name: name.clone(),
            net: *net,
            is_input: false,
        });
    }

    Ok(PackedDesign {
        clbs,
        brams,
        iobs,
        entity_of_cell,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BramShape;
    use crate::netlist::Cell;

    /// Shift register: in -> ff0 -> lut -> ff1 -> out.
    fn shiftreg() -> Netlist {
        let mut n = Netlist::new("sr");
        let input = n.add_net("in");
        let q0 = n.add_net("q0");
        let l = n.add_net("l");
        let q1 = n.add_net("q1");
        n.add_input("in", input);
        n.add_output("out", q1);
        n.add_cell(Cell::Ff {
            d: input,
            q: q0,
            ce: None,
            init: false,
        });
        n.add_cell(Cell::Lut {
            inputs: vec![q0],
            output: l,
            truth: 0b01,
        });
        n.add_cell(Cell::Ff {
            d: l,
            q: q1,
            ce: None,
            init: false,
        });
        n
    }

    #[test]
    fn lut_ff_pairing() {
        let n = shiftreg();
        let p = pack(&n);
        // ff1's D is exclusively driven by the LUT -> one LE holds both;
        // ff0 gets its own LE; total 2 LEs -> 1 CLB (connectivity links them).
        let total_les: usize = p.clbs.iter().map(|c| c.les.len()).sum();
        assert_eq!(total_les, 2);
        let paired = p
            .clbs
            .iter()
            .flat_map(|c| &c.les)
            .filter(|le| le.lut.is_some() && le.ff.is_some())
            .count();
        assert_eq!(paired, 1);
        let area = p.area(&n);
        assert_eq!(area.luts, 1);
        assert_eq!(area.ffs, 2);
        assert_eq!(area.slices, 1);
    }

    #[test]
    fn exported_lut_output_prevents_pairing() {
        let mut n = Netlist::new("x");
        let a = n.add_net("a");
        let l = n.add_net("l");
        let q = n.add_net("q");
        n.add_input("a", a);
        n.add_output("l_out", l); // LUT output visible at a pad
        n.add_output("q_out", q);
        n.add_cell(Cell::Lut {
            inputs: vec![a],
            output: l,
            truth: 0b10,
        });
        n.add_cell(Cell::Ff {
            d: l,
            q,
            ce: None,
            init: false,
        });
        let p = pack(&n);
        let paired = p
            .clbs
            .iter()
            .flat_map(|c| &c.les)
            .filter(|le| le.lut.is_some() && le.ff.is_some())
            .count();
        assert_eq!(paired, 0, "pad-visible LUT output cannot be absorbed");
    }

    #[test]
    fn clb_capacity_respected() {
        // 20 independent LUTs -> ceil(20/8) = 3 CLBs minimum; disconnected
        // LUTs never cluster, but capacity still caps CLB size.
        let mut n = Netlist::new("many");
        let a = n.add_net("a");
        n.add_input("a", a);
        for i in 0..20 {
            let o = n.add_net(format!("o{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![a],
                output: o,
                truth: 0b10,
            });
            n.add_output(format!("o{i}"), o);
        }
        let p = pack(&n);
        for clb in &p.clbs {
            assert!(clb.les.len() <= LES_PER_CLB);
        }
        let total: usize = p.clbs.iter().map(|c| c.les.len()).sum();
        assert_eq!(total, 20);
        // They all share net `a`, so they cluster tightly: 3 CLBs.
        assert_eq!(p.clbs.len(), 3);
    }

    #[test]
    fn brams_and_iobs_are_entities() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("b");
        let a: Vec<_> = (0..9).map(|i| n.add_net(format!("a{i}"))).collect();
        let d = n.add_net("d0");
        for (i, net) in a.iter().enumerate() {
            n.add_input(format!("a{i}"), *net);
        }
        n.add_output("d0", d);
        n.add_cell(Cell::Bram {
            shape,
            addr: a,
            dout: vec![d],
            en: None,
            init: vec![0; 512],
            output_init: 0,
            write: None,
        });
        let p = pack(&n);
        assert_eq!(p.brams.len(), 1);
        assert_eq!(p.iobs.len(), 10);
        assert_eq!(p.entity_of_cell[0], Some(EntityId::Bram(0)));
        assert_eq!(p.area(&n).brams, 1);
    }

    /// Builds a netlist, optionally extending `base` with `extra` more
    /// chained LUT stages appended after all base cells.
    fn chain_plus(base_stages: usize, extra: usize) -> Netlist {
        let mut n = Netlist::new("cp");
        let input = n.add_net("in");
        n.add_input("in", input);
        let mut prev = input;
        for i in 0..base_stages {
            let l = n.add_net(format!("l{i}"));
            let q = n.add_net(format!("q{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![prev],
                output: l,
                truth: 0b01,
            });
            n.add_cell(Cell::Ff {
                d: l,
                q,
                ce: None,
                init: false,
            });
            prev = q;
        }
        n.add_output("out", prev);
        for i in 0..extra {
            let o = n.add_net(format!("x{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![prev],
                output: o,
                truth: 0b10,
            });
            n.add_output(format!("x{i}"), o);
            prev = o;
        }
        n
    }

    #[test]
    fn partitioned_pack_reuses_the_base_verbatim() {
        let base_netlist = chain_plus(10, 0);
        let base = pack(&base_netlist);
        let base_cells = base_netlist.cells().len();
        let gated = chain_plus(10, 3);
        let p = pack_partitioned(&gated, &base, base_cells).expect("partitioned pack");
        // Base prefix: identical CLB membership and entity map.
        assert_eq!(&p.clbs[..base.clbs.len()], &base.clbs[..]);
        assert_eq!(p.brams, base.brams);
        assert_eq!(&p.entity_of_cell[..base_cells], &base.entity_of_cell[..]);
        // The three extra LUTs all land in appended CLBs.
        for i in base_cells..gated.cells().len() {
            match p.entity_of_cell[i] {
                Some(EntityId::Clb(c)) => {
                    assert!(c >= base.clbs.len(), "delta cell {i} packed into base CLB {c}")
                }
                other => panic!("delta cell {i} not in a CLB: {other:?}"),
            }
        }
        // IOBs follow the gated netlist's ports.
        assert_eq!(p.iobs.len(), gated.inputs().len() + gated.outputs().len());
        // Entity map covers every cell.
        assert_eq!(p.entity_of_cell.len(), gated.cells().len());
    }

    #[test]
    fn partitioned_pack_rejects_mismatched_bases() {
        let base_netlist = chain_plus(4, 0);
        let base = pack(&base_netlist);
        let base_cells = base_netlist.cells().len();
        let gated = chain_plus(4, 2);

        let err = pack_partitioned(&gated, &base, gated.cells().len() + 1);
        assert!(matches!(err, Err(PartitionError::BaseTooLarge { .. })), "{err:?}");

        let err = pack_partitioned(&gated, &base, base_cells - 1);
        assert!(
            matches!(
                err,
                Err(PartitionError::EntityMapLength { .. } | PartitionError::CellOutOfRange { .. })
            ),
            "{err:?}"
        );

        // A base whose first cell kind disagrees with the netlist.
        let mut other = Netlist::new("o");
        let a = other.add_net("a");
        other.add_input("a", a);
        let q = other.add_net("q");
        other.add_cell(Cell::Ff {
            d: a,
            q,
            ce: None,
            init: false,
        });
        other.add_output("q", q);
        let other_packed = pack(&other);
        let err = pack_partitioned(&gated, &other_packed, 1);
        assert!(
            matches!(err, Err(PartitionError::CellKindMismatch { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn constants_are_not_placed() {
        let mut n = Netlist::new("k");
        let one = n.add_net("one");
        n.add_cell(Cell::Const {
            output: one,
            value: true,
        });
        n.add_output("one", one);
        let p = pack(&n);
        assert_eq!(p.entity_of_cell[0], None);
        assert!(p.clbs.is_empty());
    }
}
