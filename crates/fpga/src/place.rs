//! Simulated-annealing placement.
//!
//! Assigns packed entities (CLBs, BRAMs, IOBs) to device sites minimizing
//! total half-perimeter wirelength (HPWL). The schedule is a classic
//! VPR-style anneal scaled by an effort knob. Placement quality feeds
//! directly into routed wirelength and therefore interconnect power — the
//! dominant FPGA power component (paper Sec. 2) — and is one of the
//! paper's implicit arguments: the BRAM FSM has so few nets that placement
//! barely matters for it, while the FF FSM's power degrades with poor
//! placement (Sec. 4.1).

use crate::device::Device;
use crate::netlist::{Netlist, NetId};
use crate::pack::{EntityId, PackedDesign};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Placement options.
#[derive(Debug, Clone, Copy)]
pub struct PlaceOptions {
    /// RNG seed (placement is deterministic given the seed).
    pub seed: u64,
    /// Effort multiplier: moves per temperature ≈ `effort · entities^{4/3}`.
    pub effort: f64,
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            effort: 10.0,
        }
    }
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The design does not fit the device.
    DoesNotFit {
        /// What overflowed ("CLBs", "BRAMs" or "IOBs").
        what: &'static str,
        /// Required count.
        need: usize,
        /// Available sites.
        have: usize,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::DoesNotFit { what, need, have } => {
                write!(f, "design needs {need} {what}, device has {have}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// A placement: entity → site coordinates.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The target device.
    pub device: Device,
    /// CLB locations (indexed like `PackedDesign::clbs`).
    pub clb_loc: Vec<(usize, usize)>,
    /// BRAM locations.
    pub bram_loc: Vec<(usize, usize)>,
    /// IOB locations.
    pub iob_loc: Vec<(usize, usize)>,
    /// Final HPWL cost.
    pub hpwl: f64,
}

impl Placement {
    /// The site of an entity.
    #[must_use]
    pub fn location(&self, e: EntityId) -> (usize, usize) {
        match e {
            EntityId::Clb(i) => self.clb_loc[i],
            EntityId::Bram(i) => self.bram_loc[i],
            EntityId::Iob(i) => self.iob_loc[i],
        }
    }
}

/// Net pin model used for cost: the entities touching each net.
fn build_net_pins(netlist: &Netlist, packed: &PackedDesign) -> Vec<Vec<EntityId>> {
    let mut pins: Vec<Vec<EntityId>> = vec![Vec::new(); netlist.num_nets()];
    for (i, cell) in netlist.cells().iter().enumerate() {
        let Some(entity) = packed.entity_of_cell[i] else {
            continue;
        };
        for net in cell.inputs().into_iter().chain(cell.outputs()) {
            if !pins[net.index()].contains(&entity) {
                pins[net.index()].push(entity);
            }
        }
    }
    for (i, iob) in packed.iobs.iter().enumerate() {
        let e = EntityId::Iob(i);
        if !pins[iob.net.index()].contains(&e) {
            pins[iob.net.index()].push(e);
        }
    }
    pins
}

fn hpwl_of_net(pins: &[EntityId], loc: &dyn Fn(EntityId) -> (usize, usize)) -> f64 {
    if pins.len() < 2 {
        return 0.0;
    }
    let mut min_x = usize::MAX;
    let mut max_x = 0;
    let mut min_y = usize::MAX;
    let mut max_y = 0;
    for &p in pins {
        let (x, y) = loc(p);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    ((max_x - min_x) + (max_y - min_y)) as f64
}

/// Places a packed design on a device.
///
/// # Errors
///
/// Fails with [`PlaceError::DoesNotFit`] if any resource is exhausted.
pub fn place(
    netlist: &Netlist,
    packed: &PackedDesign,
    device: Device,
    opts: PlaceOptions,
) -> Result<Placement, PlaceError> {
    let clb_sites = device.clb_sites();
    let bram_sites = device.bram_sites();
    let iob_sites = device.iob_sites();
    if packed.clbs.len() > clb_sites.len() {
        return Err(PlaceError::DoesNotFit {
            what: "CLBs",
            need: packed.clbs.len(),
            have: clb_sites.len(),
        });
    }
    if packed.brams.len() > bram_sites.len() {
        return Err(PlaceError::DoesNotFit {
            what: "BRAMs",
            need: packed.brams.len(),
            have: bram_sites.len(),
        });
    }
    if packed.iobs.len() > iob_sites.len() {
        return Err(PlaceError::DoesNotFit {
            what: "IOBs",
            need: packed.iobs.len(),
            have: iob_sites.len(),
        });
    }

    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x9e37_79b9_7f4a_7c15);

    // Initial assignment: entities on the first sites, then anneal.
    let mut clb_loc: Vec<(usize, usize)> = clb_sites[..packed.clbs.len()].to_vec();
    let mut bram_loc: Vec<(usize, usize)> = bram_sites[..packed.brams.len()].to_vec();
    let mut iob_loc: Vec<(usize, usize)> = iob_sites[..packed.iobs.len()].to_vec();

    let pins = build_net_pins(netlist, packed);
    // Nets worth costing (≥ 2 pins).
    let active_nets: Vec<NetId> = (0..netlist.num_nets())
        .map(|i| NetId(i as u32))
        .filter(|n| pins[n.index()].len() >= 2)
        .collect();
    // Entity -> nets touching it (for incremental cost).
    let mut nets_of_entity: HashMap<EntityId, Vec<NetId>> = HashMap::new();
    for &net in &active_nets {
        for &e in &pins[net.index()] {
            nets_of_entity.entry(e).or_default().push(net);
        }
    }

    let num_entities = packed.num_entities();
    if num_entities == 0 || active_nets.is_empty() {
        return Ok(Placement {
            device,
            clb_loc,
            bram_loc,
            iob_loc,
            hpwl: 0.0,
        });
    }

    // Free-site pools per type.
    let mut free_clb: Vec<(usize, usize)> = clb_sites[packed.clbs.len()..].to_vec();
    let mut free_bram: Vec<(usize, usize)> = bram_sites[packed.brams.len()..].to_vec();
    let mut free_iob: Vec<(usize, usize)> = iob_sites[packed.iobs.len()..].to_vec();

    let cost_all = |clb_loc: &Vec<(usize, usize)>,
                    bram_loc: &Vec<(usize, usize)>,
                    iob_loc: &Vec<(usize, usize)>|
     -> f64 {
        let loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        active_nets
            .iter()
            .map(|n| hpwl_of_net(&pins[n.index()], &loc))
            .sum()
    };

    let cost = cost_all(&clb_loc, &bram_loc, &iob_loc);

    // Anneal.
    let moves_per_t = ((num_entities as f64).powf(4.0 / 3.0) * opts.effort).ceil() as usize;
    let mut temperature = (cost / active_nets.len().max(1) as f64).max(1.0) * 2.0;
    let min_t = 0.005;
    while temperature > min_t {
        for _ in 0..moves_per_t {
            // Pick an entity class weighted by population.
            let pick = rng.random_range(0..num_entities);
            let (kind, idx) = if pick < packed.clbs.len() {
                (0, pick)
            } else if pick < packed.clbs.len() + packed.brams.len() {
                (1, pick - packed.clbs.len())
            } else {
                (2, pick - packed.clbs.len() - packed.brams.len())
            };
            let entity = match kind {
                0 => EntityId::Clb(idx),
                1 => EntityId::Bram(idx),
                _ => EntityId::Iob(idx),
            };
            type SitePools<'a> = (&'a mut Vec<(usize, usize)>, &'a mut Vec<(usize, usize)>, usize);
            let (locs, free, count): SitePools<'_> =
                match kind {
                    0 => (&mut clb_loc, &mut free_clb, packed.clbs.len()),
                    1 => (&mut bram_loc, &mut free_bram, packed.brams.len()),
                    _ => (&mut iob_loc, &mut free_iob, packed.iobs.len()),
                };

            // Candidate: swap with a sibling entity, or move to a free site.
            let use_free = !free.is_empty() && (count < 2 || rng.random_bool(0.5));
            let (other_idx, new_site) = if use_free {
                let f = rng.random_range(0..free.len());
                (None, free[f])
            } else if count >= 2 {
                let mut o = rng.random_range(0..count);
                if o == idx {
                    o = (o + 1) % count;
                }
                (Some(o), locs[o])
            } else {
                continue;
            };

            // Delta cost over affected nets only.
            let affected: Vec<NetId> = {
                let mut v: Vec<NetId> = nets_of_entity.get(&entity).cloned().unwrap_or_default();
                if let Some(o) = other_idx {
                    let other_entity = match kind {
                        0 => EntityId::Clb(o),
                        1 => EntityId::Bram(o),
                        _ => EntityId::Iob(o),
                    };
                    v.extend(nets_of_entity.get(&other_entity).cloned().unwrap_or_default());
                    v.sort_unstable_by_key(|n| n.0);
                    v.dedup();
                }
                v
            };
            let old_site = locs[idx];
            let before: f64 = {
                let loc = |e: EntityId| match e {
                    EntityId::Clb(i) => clb_loc[i],
                    EntityId::Bram(i) => bram_loc[i],
                    EntityId::Iob(i) => iob_loc[i],
                };
                affected
                    .iter()
                    .map(|n| hpwl_of_net(&pins[n.index()], &loc))
                    .sum()
            };
            // Apply tentatively.
            {
                let locs: &mut Vec<(usize, usize)> = match kind {
                    0 => &mut clb_loc,
                    1 => &mut bram_loc,
                    _ => &mut iob_loc,
                };
                locs[idx] = new_site;
                if let Some(o) = other_idx {
                    locs[o] = old_site;
                }
            }
            let after: f64 = {
                let loc = |e: EntityId| match e {
                    EntityId::Clb(i) => clb_loc[i],
                    EntityId::Bram(i) => bram_loc[i],
                    EntityId::Iob(i) => iob_loc[i],
                };
                affected
                    .iter()
                    .map(|n| hpwl_of_net(&pins[n.index()], &loc))
                    .sum()
            };
            let delta = after - before;
            let accept = delta <= 0.0 || rng.random_bool((-delta / temperature).exp().min(1.0));
            if accept {
                if use_free {
                    // The vacated site becomes free.
                    let free: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut free_clb,
                        1 => &mut free_bram,
                        _ => &mut free_iob,
                    };
                    let pos = free
                        .iter()
                        .position(|s| *s == new_site)
                        .expect("site came from the free pool");
                    free.swap_remove(pos);
                    free.push(old_site);
                }
            } else {
                // Revert.
                let locs: &mut Vec<(usize, usize)> = match kind {
                    0 => &mut clb_loc,
                    1 => &mut bram_loc,
                    _ => &mut iob_loc,
                };
                locs[idx] = old_site;
                if let Some(o) = other_idx {
                    locs[o] = new_site;
                }
            }
        }
        temperature *= 0.85;
    }

    let final_cost = cost_all(&clb_loc, &bram_loc, &iob_loc);
    Ok(Placement {
        device,
        clb_loc,
        bram_loc,
        iob_loc,
        hpwl: final_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::netlist::Cell;
    use crate::pack::pack;

    /// Chain of LUT+FF stages; plenty of connectivity for the annealer.
    fn chain(n_stages: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let input = n.add_net("in");
        n.add_input("in", input);
        let mut prev = input;
        for i in 0..n_stages {
            let l = n.add_net(format!("l{i}"));
            let q = n.add_net(format!("q{i}"));
            n.add_cell(Cell::Lut { inputs: vec![prev], output: l, truth: 0b01 });
            n.add_cell(Cell::Ff { d: l, q, ce: None, init: false });
            prev = q;
        }
        n.add_output("out", prev);
        n
    }

    #[test]
    fn placement_is_legal() {
        let n = chain(40);
        let p = pack(&n);
        let device = Device::xc2v250();
        let pl = place(&n, &p, device, PlaceOptions::default()).unwrap();
        // All CLBs on distinct legal CLB sites.
        let sites = device.clb_sites();
        let mut used = std::collections::HashSet::new();
        for loc in &pl.clb_loc {
            assert!(sites.contains(loc), "illegal CLB site {loc:?}");
            assert!(used.insert(*loc), "site reuse at {loc:?}");
        }
        let iob_sites = device.iob_sites();
        let mut used = std::collections::HashSet::new();
        for loc in &pl.iob_loc {
            assert!(iob_sites.contains(loc));
            assert!(used.insert(*loc), "IOB site reuse");
        }
    }

    #[test]
    fn annealing_improves_over_initial() {
        let n = chain(60);
        let p = pack(&n);
        let device = Device::xc2v250();
        // Initial cost = cost of sites in order; effort 0 approximates it by
        // freezing immediately (temperature decays but moves still run);
        // compare low vs high effort instead.
        let lo = place(&n, &p, device, PlaceOptions { seed: 3, effort: 0.05 }).unwrap();
        let hi = place(&n, &p, device, PlaceOptions { seed: 3, effort: 12.0 }).unwrap();
        assert!(
            hi.hpwl <= lo.hpwl * 1.05,
            "more effort should not be much worse: lo={} hi={}",
            lo.hpwl,
            hi.hpwl
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let n = chain(20);
        let p = pack(&n);
        let device = Device::xc2v250();
        let a = place(&n, &p, device, PlaceOptions::default()).unwrap();
        let b = place(&n, &p, device, PlaceOptions::default()).unwrap();
        assert_eq!(a.clb_loc, b.clb_loc);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn does_not_fit_reported() {
        let n = chain(10);
        let p = pack(&n);
        // XC2V40 has 4 BRAM sites; fabricate an overflow by device choice:
        // 10 stages fit easily, so instead check IOB overflow on a tiny fake
        // device is impossible with FAMILY; check CLB overflow with a big
        // chain on the smallest device.
        let big = chain(2000);
        let pb = pack(&big);
        let err = place(&big, &pb, Device::by_name("XC2V40").unwrap(), PlaceOptions::default());
        assert!(matches!(err, Err(PlaceError::DoesNotFit { .. })));
        // Sanity: the small one fits.
        assert!(place(&n, &p, Device::by_name("XC2V40").unwrap(), PlaceOptions::default()).is_ok());
    }

    #[test]
    fn empty_design_places() {
        let n = Netlist::new("empty");
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        assert_eq!(pl.hpwl, 0.0);
    }
}
