//! Simulated-annealing placement.
//!
//! Assigns packed entities (CLBs, BRAMs, IOBs) to device sites minimizing
//! total half-perimeter wirelength (HPWL), blended with a VPR-style
//! criticality-weighted timing term (see [`PlaceOptions::timing_weight`]).
//! The schedule is a classic VPR-style anneal scaled by an effort knob.
//! Placement quality feeds directly into routed wirelength and therefore
//! interconnect power — the dominant FPGA power component (paper Sec. 2) —
//! and, through the timing term, into fmax: since the paper's power
//! numbers scale with clock frequency, a placement that shortens the
//! critical path (the BRAM address/enable setup loop for EMB FSMs) moves
//! the bottom-line tables directly.

use crate::device::Device;
use crate::netlist::{NetId, Netlist};
use crate::pack::{EntityId, PackedDesign};
use crate::sta::TimingKernel;
use crate::timing::DelayModel;
use std::collections::HashMap;
use std::fmt;
use xrand::SmallRng;

/// Bumped whenever [`place`] can produce a different placement for the
/// same (netlist, device, options) input — the flow-artifact cache mixes
/// it into placement keys so stale artifacts from an older algorithm are
/// never returned. Version 2: adaptive VPR schedule (T0 from sampled
/// move-delta stddev, acceptance-keyed cooling, dynamic exit). Version 3:
/// criticality-weighted timing cost (frozen per-level criticalities from
/// the incremental STA kernel, timing-aware quench, early-exit move
/// rejection) — wirelength-only behavior at `timing_weight = 0` is
/// byte-identical to version 2. Version 4 added the guarded two-arm
/// selection ([`pick_guarded`]): with the timing term on, the blind and
/// criticality-weighted anneals both run and the better STA estimate
/// wins, so timing-driven placement is never worse than wirelength-only.
pub const ALGORITHM_VERSION: u32 = 4;

/// Placement options.
#[derive(Debug, Clone, Copy)]
pub struct PlaceOptions {
    /// RNG seed (placement is deterministic given the seed).
    pub seed: u64,
    /// Effort multiplier: moves per temperature ≈ `effort · entities^{4/3}`.
    pub effort: f64,
    /// Hard cap on annealing moves. When the cap is hit the anneal stops
    /// where it is, the best-seen configuration is polished and returned,
    /// and [`Placement::budget`] is flagged [`BudgetOutcome::Exhausted`] —
    /// so no effort setting can hang the experiment harness. The default
    /// is far above what any paper benchmark spends (~200k moves), so
    /// results are unchanged unless a caller tightens it.
    pub max_moves: u64,
    /// Weight `w ∈ [0, 1]` of the timing term in the annealing cost:
    /// `(1−w)·Σ hpwl + w·scale·Σ crit^exp·net_per_hop·hpwl`, with `scale`
    /// re-normalizing the timing term onto the wirelength scale at every
    /// criticality refresh (VPR's self-normalizing trade-off). `0.0`
    /// disables the timing machinery entirely and reproduces the
    /// wirelength-only placement byte-for-byte.
    pub timing_weight: f64,
    /// Criticality sharpening exponent (VPR's `criticality_exp`): the
    /// per-net weight is `criticality^crit_exp`, so large exponents focus
    /// the timing term on the near-critical cone only.
    pub crit_exp: f64,
    /// Every `retime_interval`-th per-level criticality refresh is backed
    /// by a from-scratch recompute of the timing kernel (debug-asserted
    /// bit-identical to the incremental state — the drift bound). `0`
    /// disables the periodic full re-time.
    pub retime_interval: u32,
    /// Delay model the timing term anneals against (wire delay per net is
    /// `net_base + net_per_hop · hpwl`). Flows pass their own model so
    /// placement and post-route analysis agree.
    pub delay: DelayModel,
}

impl PlaceOptions {
    /// Default annealing-move cap (see [`PlaceOptions::max_moves`]).
    pub const DEFAULT_MAX_MOVES: u64 = 50_000_000;
}

impl Default for PlaceOptions {
    fn default() -> Self {
        PlaceOptions {
            seed: 1,
            effort: 10.0,
            max_moves: Self::DEFAULT_MAX_MOVES,
            timing_weight: 0.5,
            crit_exp: 8.0,
            retime_interval: 8,
            delay: DelayModel::default(),
        }
    }
}

/// Whether an iterative optimization ran to its natural end or was cut
/// off by its move/iteration budget (in which case the best state seen
/// so far is returned, flagged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetOutcome {
    /// The optimization converged (or exhausted its schedule) normally.
    #[default]
    Completed,
    /// The budget ran out first; the result is the best seen so far.
    Exhausted {
        /// Moves/iterations spent when the budget cut in.
        spent: u64,
    },
}

impl BudgetOutcome {
    /// True when the budget ran out.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        matches!(self, BudgetOutcome::Exhausted { .. })
    }
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The design does not fit the device.
    DoesNotFit {
        /// What overflowed ("CLBs", "BRAMs" or "IOBs").
        what: &'static str,
        /// Required count.
        need: usize,
        /// Available sites.
        have: usize,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::DoesNotFit { what, need, have } => {
                write!(f, "design needs {need} {what}, device has {have}")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// A placement: entity → site coordinates.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The target device.
    pub device: Device,
    /// CLB locations (indexed like `PackedDesign::clbs`).
    pub clb_loc: Vec<(usize, usize)>,
    /// BRAM locations.
    pub bram_loc: Vec<(usize, usize)>,
    /// IOB locations.
    pub iob_loc: Vec<(usize, usize)>,
    /// Final HPWL cost.
    pub hpwl: f64,
    /// Final Σ hpwl² over the same nets — the quadratic tie-breaker the
    /// descent phases optimize (a cheap timing proxy; see [`quench`]).
    pub hpwl_sq: f64,
    /// Annealing moves attempted (excludes the T0 calibration samples
    /// and the deterministic quench passes).
    pub moves: u64,
    /// Whether the anneal ran its full schedule or hit
    /// [`PlaceOptions::max_moves`] (best-seen returned either way).
    pub budget: BudgetOutcome,
}

impl Placement {
    /// The site of an entity.
    #[must_use]
    pub fn location(&self, e: EntityId) -> (usize, usize) {
        match e {
            EntityId::Clb(i) => self.clb_loc[i],
            EntityId::Bram(i) => self.bram_loc[i],
            EntityId::Iob(i) => self.iob_loc[i],
        }
    }
}

/// Net pin model used for cost: the entities touching each net. Shared
/// with [`crate::sta::estimate_critical_ns`] so the placer's cost model
/// and the post-place fmax estimate see the same pins.
pub(crate) fn build_net_pins(netlist: &Netlist, packed: &PackedDesign) -> Vec<Vec<EntityId>> {
    let mut pins: Vec<Vec<EntityId>> = vec![Vec::new(); netlist.num_nets()];
    for (i, cell) in netlist.cells().iter().enumerate() {
        let Some(entity) = packed.entity_of_cell[i] else {
            continue;
        };
        for net in cell.inputs().into_iter().chain(cell.outputs()) {
            if !pins[net.index()].contains(&entity) {
                pins[net.index()].push(entity);
            }
        }
    }
    for (i, iob) in packed.iobs.iter().enumerate() {
        let e = EntityId::Iob(i);
        if !pins[iob.net.index()].contains(&e) {
            pins[iob.net.index()].push(e);
        }
    }
    pins
}

/// Cached bounding box of one net's pins, plus the HPWL derived from it.
/// The anneal keeps one `NetBox` per active net so the cost of a layout
/// *before* a move is a table lookup instead of a rescan of every pin;
/// only the *after* side of a proposal recomputes boxes (a move can shrink
/// a box, so the moved pin must be rescanned against its net anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
struct NetBox {
    min_x: usize,
    max_x: usize,
    min_y: usize,
    max_y: usize,
    /// `((max_x - min_x) + (max_y - min_y)) as f64`; 0.0 for nets with
    /// fewer than two pins (same convention as the historical scan).
    hpwl: f64,
}

impl NetBox {
    /// Placeholder for nets the cost function never looks at (< 2 pins).
    const EMPTY: NetBox = NetBox {
        min_x: 0,
        max_x: 0,
        min_y: 0,
        max_y: 0,
        hpwl: 0.0,
    };

    fn compute(pins: &[EntityId], loc: &dyn Fn(EntityId) -> (usize, usize)) -> NetBox {
        if pins.len() < 2 {
            return NetBox::EMPTY;
        }
        let mut min_x = usize::MAX;
        let mut max_x = 0;
        let mut min_y = usize::MAX;
        let mut max_y = 0;
        for &p in pins {
            let (x, y) = loc(p);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        NetBox {
            min_x,
            max_x,
            min_y,
            max_y,
            hpwl: ((max_x - min_x) + (max_y - min_y)) as f64,
        }
    }
}

pub(crate) fn hpwl_of_net(pins: &[EntityId], loc: &dyn Fn(EntityId) -> (usize, usize)) -> f64 {
    NetBox::compute(pins, loc).hpwl
}

/// Frozen-criticality timing context for the annealers, built only when
/// `timing_weight > 0` (and the netlist validates — otherwise the walk
/// silently degrades to pure wirelength, which `place` historically never
/// errored on). VPR-style: per-net criticalities are read from the
/// incremental [`TimingKernel`] and *frozen* into one effective-cost
/// coefficient per net, `coef = (1−w) + w·t_scale·crit^exp·net_per_hop`,
/// so a move's effective delta is `Σ coef·Δhpwl` — one multiply-add per
/// affected net on top of the wirelength delta the walk already computes.
/// Coefficients are re-frozen once per temperature level ([`Self::refresh`]),
/// and every `retime_interval`-th refresh is backed by a from-scratch
/// recompute that must be bit-identical to the incremental state (the
/// committed drift bound, debug-asserted).
struct TimingCtx {
    kernel: TimingKernel,
    w: f64,
    crit_exp: f64,
    retime_interval: u32,
    net_base: f64,
    per_hop: f64,
    /// Raw criticality per net as of the last refresh; the skip-re-time
    /// threshold (flush only when a touched net is ≥ 0.5 critical) reads
    /// this.
    crit_raw: Vec<f64>,
    /// `crit_raw^crit_exp` per net (scratch kept for the normalizer).
    crit_w: Vec<f64>,
    /// Per-net effective-cost coefficient (see above); `Σ coef·hpwl` over
    /// active nets is the cost the walk optimizes.
    coef: Vec<f64>,
    /// Normalizer putting the timing term on the wirelength scale:
    /// `Σ hpwl / Σ crit_w·per_hop·hpwl` at the last refresh.
    t_scale: f64,
    refreshes: u32,
}

impl TimingCtx {
    fn build(netlist: &Netlist, opts: &PlaceOptions) -> Option<TimingCtx> {
        let kernel = TimingKernel::new(netlist, &opts.delay).ok()?;
        let n = netlist.num_nets();
        Some(TimingCtx {
            kernel,
            w: opts.timing_weight.clamp(0.0, 1.0),
            crit_exp: opts.crit_exp,
            retime_interval: opts.retime_interval,
            net_base: opts.delay.net_base,
            per_hop: opts.delay.net_per_hop,
            crit_raw: vec![0.0; n],
            crit_w: vec![0.0; n],
            coef: vec![1.0; n],
            t_scale: 0.0,
            refreshes: 0,
        })
    }

    /// Syncs the kernel's wire delays to the current bounding boxes,
    /// flushes the incremental wavefronts (with the periodic full-re-time
    /// drift check), and re-freezes the per-net coefficients.
    fn refresh(&mut self, active_nets: &[NetId], net_box: &[NetBox]) {
        for &n in active_nets {
            let i = n.index();
            self.kernel
                .set_wire_delay(n, self.net_base + self.per_hop * net_box[i].hpwl);
        }
        self.kernel.flush();
        self.refreshes += 1;
        if self.retime_interval > 0 && self.refreshes % self.retime_interval == 0 {
            let matched = self.kernel.full_retime();
            debug_assert!(
                matched,
                "incremental timing drifted from the full recompute"
            );
        }
        let mut wl_anchor = 0.0;
        let mut t_anchor = 0.0;
        for &n in active_nets {
            let i = n.index();
            let raw = self.kernel.criticality(n);
            let c = raw.powf(self.crit_exp);
            self.crit_raw[i] = raw;
            self.crit_w[i] = c;
            wl_anchor += net_box[i].hpwl;
            t_anchor += c * self.per_hop * net_box[i].hpwl;
        }
        self.t_scale = if t_anchor > 0.0 {
            wl_anchor / t_anchor
        } else {
            0.0
        };
        for &n in active_nets {
            let i = n.index();
            self.coef[i] = (1.0 - self.w) + self.w * self.t_scale * self.per_hop * self.crit_w[i];
        }
    }

    /// Marks the kernel's wire delays of `nets` dirty from the (already
    /// updated) boxes, and flushes immediately only when one of them was
    /// near-critical at the last refresh — moves touching only
    /// non-critical nets skip the re-time entirely (the deferred dirt is
    /// absorbed by the next [`Self::refresh`]).
    fn note_moved(&mut self, nets: &[NetId], net_box: &[NetBox]) {
        let mut hot = false;
        for &n in nets {
            let i = n.index();
            self.kernel
                .set_wire_delay(n, self.net_base + self.per_hop * net_box[i].hpwl);
            hot |= self.crit_raw[i] >= 0.5;
        }
        if hot {
            self.kernel.flush();
        }
    }

    /// The frozen effective cost, read from the bounding-box cache.
    fn eff_from_boxes(&self, active_nets: &[NetId], net_box: &[NetBox]) -> f64 {
        active_nets
            .iter()
            .map(|n| self.coef[n.index()] * net_box[n.index()].hpwl)
            .sum()
    }

    /// The frozen effective cost, recomputed from coordinates (used to
    /// re-score the best-seen snapshot after a coefficient refresh).
    fn eff_from_locs(
        &self,
        active_nets: &[NetId],
        pins: &[Vec<EntityId>],
        loc: &dyn Fn(EntityId) -> (usize, usize),
    ) -> f64 {
        active_nets
            .iter()
            .map(|n| self.coef[n.index()] * hpwl_of_net(&pins[n.index()], loc))
            .sum()
    }
}

/// Deterministic greedy descent over the full single-move neighborhood
/// (every free site and every same-type swap, best improvement per
/// entity), repeated until a full pass finds no improving move. Used
/// twice by [`place`]: to turn the ordered seed layout into a baseline
/// local optimum before annealing, and to polish the anneal's winner —
/// so the returned placement can never be worse than plain descent,
/// whatever the effort. (The first real run of the suite caught a
/// high-effort anneal freezing at HPWL 17 on a layout where low effort
/// reached 8; this phase is the in-source fix.)
///
/// Moves are ranked lexicographically by (Σ hpwl, Σ hpwl²): the linear
/// term is the cost [`place`] reports, and the quadratic term breaks the
/// abundant integer-HPWL ties toward layouts without individually long
/// nets — a cheap timing proxy, since the critical path is hostage to
/// its longest hops. Total HPWL never increases, so the effort-
/// monotonicity argument above is unaffected.
/// When `movable` is given (ECO mode), only entities whose mask entry is
/// `true` are relocated, and swap partners are restricted to movable
/// siblings — pinned entities keep their exact coordinates.
/// When `timing` is given, the linear term is the frozen effective cost
/// `Σ coef·hpwl` instead of raw HPWL, so the descent pulls critical nets
/// in harder than don't-care ones; `None` reproduces the historical
/// wirelength-only descent exactly.
#[allow(clippy::too_many_arguments)]
fn quench(
    pins: &[Vec<EntityId>],
    nets_of_entity: &HashMap<EntityId, Vec<NetId>>,
    clb_sites: &[(usize, usize)],
    bram_sites: &[(usize, usize)],
    iob_sites: &[(usize, usize)],
    clb_loc: &mut Vec<(usize, usize)>,
    bram_loc: &mut Vec<(usize, usize)>,
    iob_loc: &mut Vec<(usize, usize)>,
    movable: Option<[&[bool]; 3]>,
    timing: Option<&TimingCtx>,
) {
    let free_of = |locs: &[(usize, usize)], sites: &[(usize, usize)]| -> Vec<(usize, usize)> {
        let used: std::collections::HashSet<(usize, usize)> = locs.iter().copied().collect();
        sites
            .iter()
            .copied()
            .filter(|s| !used.contains(s))
            .collect()
    };
    let mut free_clb = free_of(clb_loc, clb_sites);
    let mut free_bram = free_of(bram_loc, bram_sites);
    let mut free_iob = free_of(iob_loc, iob_sites);
    let counts = [clb_loc.len(), bram_loc.len(), iob_loc.len()];
    let may_move = |kind: usize, idx: usize| movable.is_none_or(|m| m[kind][idx]);
    for _ in 0..16 {
        let mut improved = false;
        for kind in 0..3usize {
            for idx in 0..counts[kind] {
                if !may_move(kind, idx) {
                    continue;
                }
                let entity = match kind {
                    0 => EntityId::Clb(idx),
                    1 => EntityId::Bram(idx),
                    _ => EntityId::Iob(idx),
                };
                let Some(my_nets) = nets_of_entity.get(&entity) else {
                    continue;
                };
                let cur_site = match kind {
                    0 => clb_loc[idx],
                    1 => bram_loc[idx],
                    _ => iob_loc[idx],
                };
                // Evaluate candidate relocations with an override closure
                // (no mutation until the winning move is known); returns
                // (Σ hpwl, Σ hpwl²) over the given nets.
                let eval = |a: EntityId,
                            sa: (usize, usize),
                            b: Option<(EntityId, (usize, usize))>,
                            nets: &[NetId]|
                 -> (f64, f64) {
                    let loc = |e: EntityId| {
                        if e == a {
                            return sa;
                        }
                        if let Some((be, bs)) = b {
                            if e == be {
                                return bs;
                            }
                        }
                        match e {
                            EntityId::Clb(i) => clb_loc[i],
                            EntityId::Bram(i) => bram_loc[i],
                            EntityId::Iob(i) => iob_loc[i],
                        }
                    };
                    nets.iter().fold((0.0, 0.0), |(lin, sq), n| {
                        let h = hpwl_of_net(&pins[n.index()], &loc);
                        let lin_term = match timing {
                            Some(t) => t.coef[n.index()] * h,
                            None => h,
                        };
                        (lin + lin_term, sq + h * h)
                    })
                };
                // `beats` implements the lexicographic (Δlin, Δsq) order
                // with a small epsilon so f64 noise cannot masquerade as
                // progress (deltas are integer-valued in exact arithmetic).
                let beats = |cand: (f64, f64), incumbent: (f64, f64)| -> bool {
                    cand.0 < incumbent.0 - 1e-9
                        || (cand.0 < incumbent.0 + 1e-9 && cand.1 < incumbent.1 - 1e-9)
                };
                let before = eval(entity, cur_site, None, my_nets);
                let mut best_delta = (0.0f64, 0.0f64);
                let mut best_move: Option<(Option<usize>, (usize, usize))> = None;
                let free = match kind {
                    0 => &free_clb,
                    1 => &free_bram,
                    _ => &free_iob,
                };
                for (f, &site) in free.iter().enumerate() {
                    let after = eval(entity, site, None, my_nets);
                    let delta = (after.0 - before.0, after.1 - before.1);
                    if beats(delta, best_delta) {
                        best_delta = delta;
                        best_move = Some((Some(f), site));
                    }
                }
                for o in 0..counts[kind] {
                    if o == idx || !may_move(kind, o) {
                        continue;
                    }
                    let other = match kind {
                        0 => EntityId::Clb(o),
                        1 => EntityId::Bram(o),
                        _ => EntityId::Iob(o),
                    };
                    let other_site = match kind {
                        0 => clb_loc[o],
                        1 => bram_loc[o],
                        _ => iob_loc[o],
                    };
                    let mut nets: Vec<NetId> = my_nets.clone();
                    nets.extend(nets_of_entity.get(&other).cloned().unwrap_or_default());
                    nets.sort_unstable_by_key(|n| n.0);
                    nets.dedup();
                    let b0 = eval(entity, cur_site, Some((other, other_site)), &nets);
                    let a0 = eval(entity, other_site, Some((other, cur_site)), &nets);
                    let delta = (a0.0 - b0.0, a0.1 - b0.1);
                    if beats(delta, best_delta) {
                        best_delta = delta;
                        best_move = Some((None, other_site));
                    }
                }
                if let Some((free_pos, site)) = best_move {
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut *clb_loc,
                        1 => &mut *bram_loc,
                        _ => &mut *iob_loc,
                    };
                    if let Some(f) = free_pos {
                        locs[idx] = site;
                        let free = match kind {
                            0 => &mut free_clb,
                            1 => &mut free_bram,
                            _ => &mut free_iob,
                        };
                        free.swap_remove(f);
                        free.push(cur_site);
                    } else {
                        let o = locs.iter().position(|&s| s == site).expect("swap target");
                        locs[o] = cur_site;
                        locs[idx] = site;
                    }
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

/// Picks the winner of a guarded two-arm placement: the candidate with
/// the smaller STA estimate ([`crate::sta::estimate_critical_ns`] over
/// HPWL-derived wire delays) wins; an exact tie falls to the better
/// `(hpwl, hpwl_sq)` pair, then to the blind arm. Because the blind arm
/// is bit-identical to a `timing_weight = 0` run, the chosen estimate is
/// never worse than wirelength-only placement — deterministically, per
/// design, not just in expectation. `moves` and `budget` report the
/// combined spend of both arms.
fn pick_guarded(
    netlist: &Netlist,
    packed: &PackedDesign,
    opts: &PlaceOptions,
    blind: Placement,
    timed: Placement,
) -> Placement {
    let estimate = |p: &Placement| {
        crate::sta::estimate_critical_ns(netlist, packed, p, &opts.delay).unwrap_or(f64::INFINITY)
    };
    let (blind_ns, timed_ns) = (estimate(&blind), estimate(&timed));
    let moves = blind.moves + timed.moves;
    let exhausted = blind.budget.is_exhausted() || timed.budget.is_exhausted();
    let timed_wins = timed_ns < blind_ns
        || (timed_ns == blind_ns && (timed.hpwl, timed.hpwl_sq) < (blind.hpwl, blind.hpwl_sq));
    let mut chosen = if timed_wins { timed } else { blind };
    chosen.moves = moves;
    chosen.budget = if exhausted {
        BudgetOutcome::Exhausted { spent: moves }
    } else {
        BudgetOutcome::Completed
    };
    chosen
}

/// Places a packed design on a device.
///
/// With the timing term enabled (`timing_weight > 0`) this is a *guarded
/// pair* of anneals: the wirelength-only arm (bit-identical to a
/// `timing_weight = 0` run) and the criticality-weighted arm both run,
/// and [`pick_guarded`] keeps whichever ends with the better STA
/// estimate. The guard is what lets `scripts/verify.sh` require the
/// placer's fmax estimate to be no worse than wirelength-only placement
/// on every paper benchmark, not merely in geomean; [`Placement::moves`]
/// then reports the combined spend of both arms (so the effective move
/// budget is up to `2 · max_moves`).
///
/// # Errors
///
/// Fails with [`PlaceError::DoesNotFit`] if any resource is exhausted.
pub fn place(
    netlist: &Netlist,
    packed: &PackedDesign,
    device: Device,
    opts: PlaceOptions,
) -> Result<Placement, PlaceError> {
    if opts.timing_weight > 0.0 {
        let blind = place_core(
            netlist,
            packed,
            device,
            PlaceOptions {
                timing_weight: 0.0,
                ..opts
            },
        )?;
        let timed = place_core(netlist, packed, device, opts)?;
        return Ok(pick_guarded(netlist, packed, &opts, blind, timed));
    }
    place_core(netlist, packed, device, opts)
}

/// One arm of [`place`]: the annealing core, wirelength-only at
/// `timing_weight = 0`, criticality-weighted otherwise.
fn place_core(
    netlist: &Netlist,
    packed: &PackedDesign,
    device: Device,
    opts: PlaceOptions,
) -> Result<Placement, PlaceError> {
    let clb_sites = device.clb_sites();
    let bram_sites = device.bram_sites();
    let iob_sites = device.iob_sites();
    if packed.clbs.len() > clb_sites.len() {
        return Err(PlaceError::DoesNotFit {
            what: "CLBs",
            need: packed.clbs.len(),
            have: clb_sites.len(),
        });
    }
    if packed.brams.len() > bram_sites.len() {
        return Err(PlaceError::DoesNotFit {
            what: "BRAMs",
            need: packed.brams.len(),
            have: bram_sites.len(),
        });
    }
    if packed.iobs.len() > iob_sites.len() {
        return Err(PlaceError::DoesNotFit {
            what: "IOBs",
            need: packed.iobs.len(),
            have: iob_sites.len(),
        });
    }

    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x9e37_79b9_7f4a_7c15);

    // Initial assignment: entities on the first sites, then anneal.
    let mut clb_loc: Vec<(usize, usize)> = clb_sites[..packed.clbs.len()].to_vec();
    let mut bram_loc: Vec<(usize, usize)> = bram_sites[..packed.brams.len()].to_vec();
    let mut iob_loc: Vec<(usize, usize)> = iob_sites[..packed.iobs.len()].to_vec();

    let pins = build_net_pins(netlist, packed);
    // Nets worth costing (≥ 2 pins).
    let active_nets: Vec<NetId> = (0..netlist.num_nets())
        .map(|i| NetId(i as u32))
        .filter(|n| pins[n.index()].len() >= 2)
        .collect();
    // Entity -> nets touching it (for incremental cost).
    let mut nets_of_entity: HashMap<EntityId, Vec<NetId>> = HashMap::new();
    for &net in &active_nets {
        for &e in &pins[net.index()] {
            nets_of_entity.entry(e).or_default().push(net);
        }
    }

    let num_entities = packed.num_entities();
    if num_entities == 0 || active_nets.is_empty() {
        return Ok(Placement {
            device,
            clb_loc,
            bram_loc,
            iob_loc,
            hpwl: 0.0,
            hpwl_sq: 0.0,
            moves: 0,
            budget: BudgetOutcome::Completed,
        });
    }

    // Timing-driven mode: one incremental STA kernel for the whole anneal
    // (built here, refreshed per level, delta-updated per accepted move).
    // `timing_weight = 0` skips all of it and the walk below is
    // byte-identical to the wirelength-only placer.
    let mut timing = if opts.timing_weight > 0.0 {
        TimingCtx::build(netlist, &opts)
    } else {
        None
    };

    let cost_all = |clb_loc: &Vec<(usize, usize)>,
                    bram_loc: &Vec<(usize, usize)>,
                    iob_loc: &Vec<(usize, usize)>|
     -> f64 {
        let loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        active_nets
            .iter()
            .map(|n| hpwl_of_net(&pins[n.index()], &loc))
            .sum()
    };
    // Full rebuild of the per-net bounding-box cache from coordinates;
    // used to seed the anneal and to refresh after each reheat quench
    // (the quench moves entities without maintaining the cache).
    let cache_of = |clb_loc: &Vec<(usize, usize)>,
                    bram_loc: &Vec<(usize, usize)>,
                    iob_loc: &Vec<(usize, usize)>|
     -> Vec<NetBox> {
        let loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        let mut boxes = vec![NetBox::EMPTY; pins.len()];
        for &n in &active_nets {
            boxes[n.index()] = NetBox::compute(&pins[n.index()], &loc);
        }
        boxes
    };

    let cost = cost_all(&clb_loc, &bram_loc, &iob_loc);

    // Deterministic descent baseline: quench the ordered seed layout
    // into a local optimum. The anneal explores FROM this quenched
    // layout — the fixed-T0 schedule this replaces had to start from the
    // raw seed (its hand-picked T0 was calibrated against the seed's
    // average net cost; starting it quenched left the walk too cold to
    // escape the baseline's basin), burning more than half its moves
    // re-descending to costs the quench had already reached. With T0
    // *measured* at the quenched layout (below), the walk starts exactly
    // warm enough to hop between nearby basins without losing what the
    // descent already won — and best-seen tracking starts at the
    // baseline, so no effort level can return anything worse than plain
    // greedy descent.
    quench(
        &pins,
        &nets_of_entity,
        &clb_sites,
        &bram_sites,
        &iob_sites,
        &mut clb_loc,
        &mut bram_loc,
        &mut iob_loc,
        None,
        None,
    );
    let base_cost = cost_all(&clb_loc, &bram_loc, &iob_loc);
    let base_clb = clb_loc.clone();
    let base_bram = bram_loc.clone();
    let base_iob = iob_loc.clone();

    // Free-site pools per type (the quench may have moved entities onto
    // any site, so derive the pools from actual occupancy).
    let free_of = |locs: &[(usize, usize)], sites: &[(usize, usize)]| -> Vec<(usize, usize)> {
        let used: std::collections::HashSet<(usize, usize)> = locs.iter().copied().collect();
        sites
            .iter()
            .copied()
            .filter(|s| !used.contains(s))
            .collect()
    };
    let mut free_clb = free_of(&clb_loc, &clb_sites);
    let mut free_bram = free_of(&bram_loc, &bram_sites);
    let mut free_iob = free_of(&iob_loc, &iob_sites);

    // Anneal. The walk returns the BEST configuration it visits, not the
    // final one: at nonzero temperature the walk may drift uphill just
    // before freezing, which made high-effort runs occasionally finish
    // worse than low-effort ones (caught by
    // `annealing_improves_over_initial` the first time the suite ran).
    // VPR-style range limiting: moves are confined to a window of radius
    // `rlim` around the entity, and the window shrinks as the acceptance
    // rate drops (target ~44%, Betz & Rose). Without it, low-temperature
    // proposals are device-wide jumps that are almost always rejected, so
    // a high-effort walk freezes wherever the hot phase left it instead of
    // refining locally — `annealing_improves_over_initial` caught exactly
    // that on its first real run (high effort froze at HPWL 17 on a
    // configuration where low effort reached 8).
    let span = clb_sites
        .iter()
        .chain(bram_sites.iter())
        .chain(iob_sites.iter())
        .map(|&(x, y)| x.max(y))
        .max()
        .unwrap_or(1) as f64;
    let in_window = |a: (usize, usize), b: (usize, usize), r: f64| -> bool {
        let dx = a.0.abs_diff(b.0);
        let dy = a.1.abs_diff(b.1);
        (dx.max(dy) as f64) <= r
    };
    // The walk starts from a local optimum, so it opens with a *basin
    // hop* window — a few sites wide — rather than the device-wide
    // window a melt would use (rlim can re-grow if the acceptance rate
    // says the reheat overshot).
    let w0 = (span / 4.0).clamp(2.0, span);

    // Adaptive initial temperature (VPR, after Betz & Rose): probe the
    // move distribution by evaluating — not applying — a batch of random
    // moves from the quenched layout *within the starting window*, and
    // set T0 to the stddev of the sampled deltas: a typical local
    // perturbation is accepted with fair odds — a reheat, not a melt.
    // The previous hand-picked T0 (proportional to the seed layout's
    // average net cost) over-heated small designs and under-heated
    // congested ones, and forced the walk to re-descend from a
    // temperature where device-wide jumps were routinely accepted —
    // re-randomizing what the quench had already won, then spending more
    // than half of every run's moves climbing back down.
    let t0 = {
        let mut deltas: Vec<f64> = Vec::new();
        let samples = (num_entities * 2).clamp(64, 1024);
        for _ in 0..samples {
            let pick = rng.random_range(0..num_entities);
            let (kind, idx) = if pick < packed.clbs.len() {
                (0usize, pick)
            } else if pick < packed.clbs.len() + packed.brams.len() {
                (1, pick - packed.clbs.len())
            } else {
                (2, pick - packed.clbs.len() - packed.brams.len())
            };
            let entity = match kind {
                0 => EntityId::Clb(idx),
                1 => EntityId::Bram(idx),
                _ => EntityId::Iob(idx),
            };
            let (locs, free, count) = match kind {
                0 => (&clb_loc, &free_clb, packed.clbs.len()),
                1 => (&bram_loc, &free_bram, packed.brams.len()),
                _ => (&iob_loc, &free_iob, packed.iobs.len()),
            };
            let here = locs[idx];
            let free_cands: Vec<usize> = free
                .iter()
                .enumerate()
                .filter(|&(_, &s)| in_window(here, s, w0))
                .map(|(f, _)| f)
                .collect();
            let swap_cands: Vec<usize> = (0..count)
                .filter(|&o| o != idx && in_window(here, locs[o], w0))
                .collect();
            let use_free =
                !free_cands.is_empty() && (swap_cands.is_empty() || rng.random_bool(0.5));
            let (other, new_site) = if use_free {
                (
                    None,
                    free[free_cands[rng.random_range(0..free_cands.len())]],
                )
            } else if !swap_cands.is_empty() {
                let o = swap_cands[rng.random_range(0..swap_cands.len())];
                let oe = match kind {
                    0 => EntityId::Clb(o),
                    1 => EntityId::Bram(o),
                    _ => EntityId::Iob(o),
                };
                (Some(oe), locs[o])
            } else {
                continue;
            };
            let mut affected: Vec<NetId> = nets_of_entity.get(&entity).cloned().unwrap_or_default();
            if let Some(oe) = other {
                affected.extend(nets_of_entity.get(&oe).cloned().unwrap_or_default());
                affected.sort_unstable_by_key(|n| n.0);
                affected.dedup();
            }
            let eval = |moved: bool| -> f64 {
                let loc = |e: EntityId| {
                    if moved {
                        if e == entity {
                            return new_site;
                        }
                        if other == Some(e) {
                            return here;
                        }
                    }
                    match e {
                        EntityId::Clb(i) => clb_loc[i],
                        EntityId::Bram(i) => bram_loc[i],
                        EntityId::Iob(i) => iob_loc[i],
                    }
                };
                affected
                    .iter()
                    .map(|n| hpwl_of_net(&pins[n.index()], &loc))
                    .sum()
            };
            deltas.push(eval(true) - eval(false));
        }
        let n = deltas.len() as f64;
        let sd = if deltas.is_empty() {
            0.0
        } else {
            let mean = deltas.iter().sum::<f64>() / n;
            (deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n).sqrt()
        };
        if sd > 0.0 {
            // A third of a standard deviation accepts a typical uphill
            // step with modest odds — a reheat, not a melt. The textbook
            // 20σ (99% acceptance) buys nothing here: it re-randomizes
            // the quenched layout into a random walk whose whole descent
            // best-seen tracking then ignores, and even 1σ was measured
            // to climb hundreds of cost units before cooling caught up.
            sd / 3.0
        } else {
            // Degenerate spread (e.g. a single movable entity): fall
            // back to the old average-net-cost heuristic.
            (cost / active_nets.len().max(1) as f64).max(1.0) * 2.0
        }
    };

    let mut cur_cost = base_cost;
    let mut best_cost = base_cost;
    let mut best = (base_clb, base_bram, base_iob);
    // Per-net bounding-box cache: the walk's layout-before cost is read
    // from here; accepted moves write the recomputed boxes of their
    // affected nets back, so the cache tracks the layout exactly.
    let mut net_box = cache_of(&clb_loc, &bram_loc, &iob_loc);
    let mut box_scratch: Vec<NetBox> = Vec::new();
    // Effective (timing-blended) costs the walk actually optimizes; at
    // `timing_weight = 0` they mirror the HPWL costs exactly.
    let mut cur_eff = cur_cost;
    let mut best_eff = best_cost;
    if let Some(t) = timing.as_mut() {
        t.refresh(&active_nets, &net_box);
        cur_eff = t.eff_from_boxes(&active_nets, &net_box);
        best_eff = cur_eff;
    }
    // Per-level move budget. Most bands get a third of the classic
    // effort·N^{4/3} budget: the adaptive cooling visits ~3× more,
    // finer-grained, levels over the same temperature span than the old
    // fixed 0.85 rate did. The plateau-diffusion band (acceptance
    // 5–15%) keeps the full budget: rlim has shrunk to 1 there,
    // zero-cost sideways steps drift across equal-cost shelves into
    // valleys the deterministic quench cannot see, and the trace shows
    // that is where the final quality is actually won. Below 5% the
    // walk is frozen and gets the small budget again.
    //
    // Effort beyond 2.0 is spent on additional reheat cycles, not on
    // longer levels: per-level budgets past ~2·N^{4/3} adapt the
    // temperature and window so slowly (both update once per level)
    // that the walk drifts device-wide before it cools, while extra
    // quench-polished restarts are independent draws from the basin-hop
    // distribution — min over draws keeps improving where one long
    // cooldown stalls.
    let effort_per_cycle = opts.effort.min(2.0);
    let full_moves =
        (((num_entities as f64).powf(4.0 / 3.0) * effort_per_cycle).ceil() as usize).max(1);
    let mid_moves = (full_moves / 3).max(1);
    let mut moves_per_t = mid_moves;
    let mut temperature = t0;
    // VPR exit test: stop once T falls below a small fraction of the
    // *current* average net cost — past that point even unit-sized
    // uphill steps are essentially never accepted, so further levels are
    // pure descent, which the closing quench performs exactly. The
    // threshold tracks cur_cost as the layout improves, so a walk that
    // finds a much better layout also earns an earlier exit.
    let exit_t = |cur: f64| (0.005 * cur / active_nets.len() as f64).max(1e-6);
    let mut rlim = w0;
    let mut moves_spent = 0u64;
    let mut budget = BudgetOutcome::Completed;
    // Iterated reheats (basin hopping): each cycle reheats the best-seen
    // layout to t0 and cools back to the exit temperature. A single
    // reheat is a coin flip — it either tunnels to a better basin or
    // drifts somewhere unhelpful and gets discarded by best-seen
    // tracking — so splitting the move budget across independent cycles
    // from the incumbent buys a second (and third) draw at the cost of
    // none.
    let reheat_cycles: u32 = (opts.effort / effort_per_cycle.max(f64::MIN_POSITIVE)).round() as u32;
    let mut cycle = 0u32;
    'outer: loop {
        while temperature > exit_t(cur_cost) {
            let mut accepted = 0usize;
            for _ in 0..moves_per_t {
                if moves_spent >= opts.max_moves {
                    budget = BudgetOutcome::Exhausted { spent: moves_spent };
                    break 'outer;
                }
                moves_spent += 1;
                // Pick an entity class weighted by population.
                let pick = rng.random_range(0..num_entities);
                let (kind, idx) = if pick < packed.clbs.len() {
                    (0, pick)
                } else if pick < packed.clbs.len() + packed.brams.len() {
                    (1, pick - packed.clbs.len())
                } else {
                    (2, pick - packed.clbs.len() - packed.brams.len())
                };
                let entity = match kind {
                    0 => EntityId::Clb(idx),
                    1 => EntityId::Bram(idx),
                    _ => EntityId::Iob(idx),
                };
                type SitePools<'a> = (
                    &'a mut Vec<(usize, usize)>,
                    &'a mut Vec<(usize, usize)>,
                    usize,
                );
                let (locs, free, count): SitePools<'_> = match kind {
                    0 => (&mut clb_loc, &mut free_clb, packed.clbs.len()),
                    1 => (&mut bram_loc, &mut free_bram, packed.brams.len()),
                    _ => (&mut iob_loc, &mut free_iob, packed.iobs.len()),
                };

                // Candidate: swap with a sibling entity, or move to a free
                // site — in either case within `rlim` of the current site.
                let here = locs[idx];
                let free_cands: Vec<usize> = free
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| in_window(here, s, rlim))
                    .map(|(f, _)| f)
                    .collect();
                let swap_cands: Vec<usize> = (0..count)
                    .filter(|&o| o != idx && in_window(here, locs[o], rlim))
                    .collect();
                let use_free =
                    !free_cands.is_empty() && (swap_cands.is_empty() || rng.random_bool(0.5));
                let (other_idx, new_site) = if use_free {
                    let f = free_cands[rng.random_range(0..free_cands.len())];
                    (None, free[f])
                } else if !swap_cands.is_empty() {
                    let o = swap_cands[rng.random_range(0..swap_cands.len())];
                    (Some(o), locs[o])
                } else {
                    continue;
                };

                // Delta cost over affected nets only.
                let affected: Vec<NetId> = {
                    let mut v: Vec<NetId> =
                        nets_of_entity.get(&entity).cloned().unwrap_or_default();
                    if let Some(o) = other_idx {
                        let other_entity = match kind {
                            0 => EntityId::Clb(o),
                            1 => EntityId::Bram(o),
                            _ => EntityId::Iob(o),
                        };
                        v.extend(
                            nets_of_entity
                                .get(&other_entity)
                                .cloned()
                                .unwrap_or_default(),
                        );
                        v.sort_unstable_by_key(|n| n.0);
                        v.dedup();
                    }
                    v
                };
                let old_site = locs[idx];
                // Layout-before cost from the bounding-box cache: one
                // lookup per affected net instead of a rescan of every
                // pin. Every HPWL is an integer-valued f64 and the fold
                // order matches the historical rescan, so the sums are
                // bit-identical; debug builds recompute the boxes from
                // coordinates and insist on exact equality.
                let before: (f64, f64) = affected.iter().fold((0.0, 0.0), |(lin, sq), n| {
                    let h = net_box[n.index()].hpwl;
                    (lin + h, sq + h * h)
                });
                debug_assert!(
                    {
                        let loc = |e: EntityId| match e {
                            EntityId::Clb(i) => clb_loc[i],
                            EntityId::Bram(i) => bram_loc[i],
                            EntityId::Iob(i) => iob_loc[i],
                        };
                        affected
                            .iter()
                            .all(|n| net_box[n.index()] == NetBox::compute(&pins[n.index()], &loc))
                    },
                    "stale bounding-box cache on nets {affected:?}"
                );
                // Apply tentatively.
                {
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut clb_loc,
                        1 => &mut bram_loc,
                        _ => &mut iob_loc,
                    };
                    locs[idx] = new_site;
                    if let Some(o) = other_idx {
                        locs[o] = old_site;
                    }
                }
                // Layout-after cost must rescan the affected nets (a move
                // can shrink a box, so the cache cannot answer it); the
                // fresh boxes land in a scratch so an accepted move
                // installs them without a second scan.
                box_scratch.clear();
                let mut early_reject = false;
                let after: (f64, f64) = {
                    let loc = |e: EntityId| match e {
                        EntityId::Clb(i) => clb_loc[i],
                        EntityId::Bram(i) => bram_loc[i],
                        EntityId::Iob(i) => iob_loc[i],
                    };
                    if let Some(t) = timing.as_ref() {
                        // Early-exit rejection: Σ coef·after_hpwl only grows
                        // as nets are rescanned (coef ≥ 0, hpwl ≥ 0), so once
                        // it clears Σ coef·before_hpwl + 20·T the effective
                        // delta is ≥ 20·T and Metropolis acceptance is ~e⁻²⁰ —
                        // abandon the rescan and the RNG draw. (Timing mode
                        // only: skipping draws would shift the wirelength-only
                        // RNG stream.)
                        let before_eff: f64 = affected
                            .iter()
                            .map(|n| t.coef[n.index()] * net_box[n.index()].hpwl)
                            .sum();
                        let bar = before_eff + 20.0 * temperature;
                        let mut lin = 0.0;
                        let mut sq = 0.0;
                        let mut eff = 0.0;
                        for n in &affected {
                            let b = NetBox::compute(&pins[n.index()], &loc);
                            box_scratch.push(b);
                            lin += b.hpwl;
                            sq += b.hpwl * b.hpwl;
                            eff += t.coef[n.index()] * b.hpwl;
                            if eff > bar {
                                early_reject = true;
                                break;
                            }
                        }
                        (lin, sq)
                    } else {
                        affected.iter().fold((0.0, 0.0), |(lin, sq), n| {
                            let b = NetBox::compute(&pins[n.index()], &loc);
                            box_scratch.push(b);
                            (lin + b.hpwl, sq + b.hpwl * b.hpwl)
                        })
                    }
                };
                if early_reject {
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut clb_loc,
                        1 => &mut bram_loc,
                        _ => &mut iob_loc,
                    };
                    locs[idx] = old_site;
                    if let Some(o) = other_idx {
                        locs[o] = new_site;
                    }
                    continue;
                }
                let delta = after.0 - before.0;
                // Zero-linear-cost moves are plateau diffusion; bias them by
                // the quadratic tie-breaker the quench optimizes, so shelf
                // drift trades equal-HPWL configurations toward ones without
                // individually long nets (better Σhpwl² for free, and more
                // descent openings for the closing quench). Strictly
                // sq-worsening sideways steps face the same Metropolis test
                // the linear cost uses, scaled down so the quadratic term
                // stays a tie-breaker rather than a second objective.
                let delta_sq = after.1 - before.1;
                // The Metropolis test runs on the effective (timing-blended)
                // delta; without a timing context it IS the wirelength delta,
                // so the `timing_weight = 0` decision stream is untouched.
                let delta_eff = match timing.as_ref() {
                    Some(t) => affected
                        .iter()
                        .zip(&box_scratch)
                        .map(|(n, b)| t.coef[n.index()] * (b.hpwl - net_box[n.index()].hpwl))
                        .sum(),
                    None => delta,
                };
                let accept = if delta_eff < -1e-9 {
                    true
                } else if delta_eff < 1e-9 {
                    delta_sq < 1e-9
                        || rng.random_bool((-delta_sq / (8.0 * temperature)).exp().min(1.0))
                } else {
                    rng.random_bool((-delta_eff / temperature).exp().min(1.0))
                };
                if accept {
                    accepted += 1;
                    cur_cost += delta;
                    for (&n, &b) in affected.iter().zip(&box_scratch) {
                        net_box[n.index()] = b;
                    }
                    if let Some(t) = timing.as_mut() {
                        cur_eff += delta_eff;
                        t.note_moved(&affected, &net_box);
                        if cur_eff < best_eff {
                            best_eff = cur_eff;
                            best_cost = cur_cost;
                            best = (clb_loc.clone(), bram_loc.clone(), iob_loc.clone());
                        }
                    } else if cur_cost < best_cost {
                        best_cost = cur_cost;
                        best = (clb_loc.clone(), bram_loc.clone(), iob_loc.clone());
                    }
                    if use_free {
                        // The vacated site becomes free.
                        let free: &mut Vec<(usize, usize)> = match kind {
                            0 => &mut free_clb,
                            1 => &mut free_bram,
                            _ => &mut free_iob,
                        };
                        let pos = free
                            .iter()
                            .position(|s| *s == new_site)
                            .expect("site came from the free pool");
                        free.swap_remove(pos);
                        free.push(old_site);
                    }
                } else {
                    // Revert.
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut clb_loc,
                        1 => &mut bram_loc,
                        _ => &mut iob_loc,
                    };
                    locs[idx] = old_site;
                    if let Some(o) = other_idx {
                        locs[o] = new_site;
                    }
                }
            }
            // Acceptance-keyed cooling (VPR): linger where moves are being
            // usefully sorted (mid-range acceptance), sprint through the
            // too-hot (α ≈ 1: a random walk) and too-cold (α ≈ 0: frozen)
            // ends that the fixed 0.85 rate used to spend moves on.
            let success = accepted as f64 / moves_per_t.max(1) as f64;
            temperature *= if success > 0.96 {
                0.5
            } else if success > 0.8 {
                0.9
            } else if success > 0.15 {
                0.95
            } else if success > 0.05 {
                0.8
            } else {
                // Frozen (α ≤ 5%): the walk is down to rare unit
                // perturbations; sprint to the exit temperature.
                0.5
            };
            // Shrink (or re-grow) the window toward the 44% acceptance sweet
            // spot: rlim_new = rlim · (0.56 + success_rate), clamped.
            rlim = (rlim * (0.56 + success)).clamp(1.0, span);
            moves_per_t = if success > 0.05 && success <= 0.15 {
                full_moves
            } else {
                mid_moves
            };
            if std::env::var("PLACE_DEBUG").is_ok() {
                eprintln!(
                "level T={temperature:.4} alpha={success:.3} rlim={rlim:.2} cur={cur_cost:.0} best={best_cost:.0} spent={moves_spent}"
            );
            }
            // Re-anchor the incremental cost per level so f64 drift cannot
            // accumulate across tens of thousands of accepted deltas. The
            // cached boxes carry exact integer-valued HPWLs summed in the
            // same net order as a full recompute, so the anchor is
            // bit-identical to `cost_all` — debug builds check exactly
            // that, equal-cost to the last bit.
            cur_cost = active_nets.iter().map(|n| net_box[n.index()].hpwl).sum();
            debug_assert!(
                cur_cost == cost_all(&clb_loc, &bram_loc, &iob_loc),
                "bounding-box cache re-anchor diverged from recomputed HPWL"
            );
            // Re-freeze the criticality coefficients once per level and
            // re-anchor both effective costs under them (the best-seen
            // snapshot is re-scored so the comparison stays like-for-like).
            if let Some(t) = timing.as_mut() {
                t.refresh(&active_nets, &net_box);
                cur_eff = t.eff_from_boxes(&active_nets, &net_box);
                let loc = |e: EntityId| match e {
                    EntityId::Clb(i) => best.0[i],
                    EntityId::Bram(i) => best.1[i],
                    EntityId::Iob(i) => best.2[i],
                };
                best_eff = t.eff_from_locs(&active_nets, &pins, &loc);
            }
        }

        cycle += 1;
        if cycle > reheat_cycles {
            break;
        }
        // Reheat (basin hopping with local search): quench the best-seen
        // layout into its local optimum — the walk's winner is usually
        // still a few greedy steps above its basin floor — then restart
        // the walk from that polished incumbent at the measured t0 with
        // the opening window. Each cycle therefore launches from a layout
        // at least as good as the previous cycle's polished result, and
        // best-seen tracking keeps whichever basin floor was deepest.
        clb_loc = best.0.clone();
        bram_loc = best.1.clone();
        iob_loc = best.2.clone();
        quench(
            &pins,
            &nets_of_entity,
            &clb_sites,
            &bram_sites,
            &iob_sites,
            &mut clb_loc,
            &mut bram_loc,
            &mut iob_loc,
            None,
            timing.as_ref(),
        );
        free_clb = free_of(&clb_loc, &clb_sites);
        free_bram = free_of(&bram_loc, &bram_sites);
        free_iob = free_of(&iob_loc, &iob_sites);
        // The quench moved entities without maintaining the cache.
        net_box = cache_of(&clb_loc, &bram_loc, &iob_loc);
        cur_cost = cost_all(&clb_loc, &bram_loc, &iob_loc);
        best_cost = cur_cost;
        best = (clb_loc.clone(), bram_loc.clone(), iob_loc.clone());
        if let Some(t) = timing.as_mut() {
            t.refresh(&active_nets, &net_box);
            cur_eff = t.eff_from_boxes(&active_nets, &net_box);
            best_eff = cur_eff;
        }
        // The reheat is gentle — a fraction of the first cycle's t0.
        // Re-melting all the way destroys the incumbent (the walk climbs
        // hundreds of cost units and rarely finds its way back down to a
        // deeper basin); a low reheat does extended plateau exploration
        // around the incumbent, which is where deeper basins actually
        // get found at this problem scale.
        temperature = t0 / 8.0;
        rlim = w0;
        moves_per_t = mid_moves;
    }

    // Exact costs decide between the walk's end point and its best-seen
    // snapshot (the incremental tracker is only a heuristic trigger). In
    // timing mode the comparison runs on the effective cost under the
    // final frozen coefficients — the objective the walk was pursuing.
    let (b_clb, b_bram, b_iob) = best;
    let restore_best = if let Some(t) = timing.as_ref() {
        let cur_loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        let best_loc = |e: EntityId| match e {
            EntityId::Clb(i) => b_clb[i],
            EntityId::Bram(i) => b_bram[i],
            EntityId::Iob(i) => b_iob[i],
        };
        t.eff_from_locs(&active_nets, &pins, &best_loc)
            < t.eff_from_locs(&active_nets, &pins, &cur_loc)
    } else {
        cost_all(&b_clb, &b_bram, &b_iob) < cost_all(&clb_loc, &bram_loc, &iob_loc)
    };
    if restore_best {
        clb_loc = b_clb;
        bram_loc = b_bram;
        iob_loc = b_iob;
    }

    // Polish the winner with the same deterministic descent (criticality-
    // weighted in timing mode, under the final frozen coefficients).
    quench(
        &pins,
        &nets_of_entity,
        &clb_sites,
        &bram_sites,
        &iob_sites,
        &mut clb_loc,
        &mut bram_loc,
        &mut iob_loc,
        None,
        timing.as_ref(),
    );
    let polished = cost_all(&clb_loc, &bram_loc, &iob_loc);
    let polished_sq: f64 = {
        let loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        active_nets
            .iter()
            .map(|n| {
                let h = hpwl_of_net(&pins[n.index()], &loc);
                h * h
            })
            .sum()
    };
    Ok(Placement {
        device,
        clb_loc,
        bram_loc,
        iob_loc,
        hpwl: polished,
        hpwl_sq: polished_sq,
        moves: moves_spent,
        budget,
    })
}

/// Per-entity pin map for ECO placement: `Some(site)` pins the entity at
/// that exact coordinate, `None` leaves it movable. Vectors are indexed
/// like the corresponding `PackedDesign` entity lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinnedEntities {
    /// CLB pins (indexed like `PackedDesign::clbs`).
    pub clb: Vec<Option<(usize, usize)>>,
    /// BRAM pins.
    pub bram: Vec<Option<(usize, usize)>>,
    /// IOB pins.
    pub iob: Vec<Option<(usize, usize)>>,
}

impl PinnedEntities {
    /// Pins every entity of `packed` that exists in the base placement at
    /// the base's coordinates, leaving entities beyond the base prefix
    /// movable. This is the ECO contract for the clock-control rewrite:
    /// the gated design's packed entities are the plain design's entities
    /// followed by the appended enable-cone CLBs, so the base prefix pins
    /// verbatim and only the cone is placed.
    #[must_use]
    pub fn pin_base(base: &Placement, packed: &PackedDesign) -> PinnedEntities {
        let prefix = |locs: &[(usize, usize)], n: usize| -> Vec<Option<(usize, usize)>> {
            (0..n)
                .map(|i| if i < locs.len() { Some(locs[i]) } else { None })
                .collect()
        };
        PinnedEntities {
            clb: prefix(&base.clb_loc, packed.clbs.len()),
            bram: prefix(&base.bram_loc, packed.brams.len()),
            iob: prefix(&base.iob_loc, packed.iobs.len()),
        }
    }

    /// Number of pinned entities across all kinds.
    #[must_use]
    pub fn pinned_count(&self) -> usize {
        [&self.clb, &self.bram, &self.iob]
            .into_iter()
            .map(|v| v.iter().filter(|p| p.is_some()).count())
            .sum()
    }

    /// Number of movable (unpinned) entities across all kinds.
    #[must_use]
    pub fn movable_count(&self) -> usize {
        self.clb.len() + self.bram.len() + self.iob.len() - self.pinned_count()
    }
}

/// Errors from incremental (ECO) placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoPlaceError {
    /// The design does not fit the device.
    DoesNotFit {
        /// What overflowed ("CLBs", "BRAMs" or "IOBs").
        what: &'static str,
        /// Required count.
        need: usize,
        /// Available sites.
        have: usize,
    },
    /// The pin map's length disagrees with the packed design.
    PinCount {
        /// Which entity kind disagreed.
        what: &'static str,
        /// Pin-map entries for that kind.
        pins: usize,
        /// Packed entities of that kind.
        entities: usize,
    },
    /// A pinned coordinate is not a legal site of that kind on the device.
    IllegalPin {
        /// Which entity kind.
        what: &'static str,
        /// Entity index within the kind.
        index: usize,
        /// The offending coordinate.
        site: (usize, usize),
    },
    /// Two entities of the same kind are pinned (or placed) on one site.
    DuplicatePin {
        /// Which entity kind.
        what: &'static str,
        /// Entity index of the second occupant.
        index: usize,
        /// The contested site.
        site: (usize, usize),
    },
    /// Post-placement self-check: a pinned entity is not at its pin.
    PinMoved {
        /// Which entity kind.
        what: &'static str,
        /// Entity index within the kind.
        index: usize,
        /// Where the pin says the entity must be.
        expected: (usize, usize),
        /// Where the placement actually put it.
        got: (usize, usize),
    },
}

impl fmt::Display for EcoPlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoPlaceError::DoesNotFit { what, need, have } => {
                write!(f, "eco: design needs {need} {what}, device has {have}")
            }
            EcoPlaceError::PinCount {
                what,
                pins,
                entities,
            } => write!(
                f,
                "eco: pin map has {pins} {what} entries for {entities} entities"
            ),
            EcoPlaceError::IllegalPin { what, index, site } => {
                write!(f, "eco: {what} {index} pinned at illegal site {site:?}")
            }
            EcoPlaceError::DuplicatePin { what, index, site } => {
                write!(f, "eco: {what} {index} duplicates occupied site {site:?}")
            }
            EcoPlaceError::PinMoved {
                what,
                index,
                expected,
                got,
            } => write!(
                f,
                "eco: {what} {index} pinned at {expected:?} but placed at {got:?}"
            ),
        }
    }
}

impl std::error::Error for EcoPlaceError {}

/// Result of an incremental (ECO) placement: the full placement plus the
/// ECO accounting the flow report surfaces.
#[derive(Debug, Clone)]
pub struct EcoPlacement {
    /// The complete placement (pinned entities at their pins, movable
    /// entities wherever the delta anneal left them).
    pub placement: Placement,
    /// How many entities were pinned.
    pub pinned_entities: usize,
    /// How many entities the delta anneal placed.
    pub delta_entities: usize,
    /// Σ HPWL over the nets touching at least one movable entity — the
    /// wirelength actually decided by the ECO pass.
    pub delta_hpwl: f64,
}

/// Checks a placement against a pin map: lengths agree, every pinned
/// entity sits exactly at its pin, every location is a legal site of its
/// kind, and no two entities of a kind share a site.
///
/// # Errors
///
/// The first violated invariant, as a typed [`EcoPlaceError`].
pub fn verify_eco_placement(
    placement: &Placement,
    pins: &PinnedEntities,
) -> Result<(), EcoPlaceError> {
    let kinds: [(&'static str, &[Option<(usize, usize)>], &[(usize, usize)], Vec<(usize, usize)>);
        3] = [
        ("CLBs", &pins.clb, &placement.clb_loc, placement.device.clb_sites()),
        (
            "BRAMs",
            &pins.bram,
            &placement.bram_loc,
            placement.device.bram_sites(),
        ),
        ("IOBs", &pins.iob, &placement.iob_loc, placement.device.iob_sites()),
    ];
    for (what, pin, loc, sites) in kinds {
        if pin.len() != loc.len() {
            return Err(EcoPlaceError::PinCount {
                what,
                pins: pin.len(),
                entities: loc.len(),
            });
        }
        let legal: std::collections::HashSet<(usize, usize)> = sites.iter().copied().collect();
        let mut used: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for (index, &site) in loc.iter().enumerate() {
            if !legal.contains(&site) {
                return Err(EcoPlaceError::IllegalPin { what, index, site });
            }
            if !used.insert(site) {
                return Err(EcoPlaceError::DuplicatePin { what, index, site });
            }
            if let Some(expected) = pin[index] {
                if site != expected {
                    return Err(EcoPlaceError::PinMoved {
                        what,
                        index,
                        expected,
                        got: site,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Incremental (ECO) placement: pinned entities keep their exact
/// coordinates; only the movable delta is placed, by a short range-limited
/// local anneal bracketed by the same deterministic quench [`place`] uses
/// (restricted to movable entities). The returned placement is self-checked
/// with [`verify_eco_placement`] before it leaves this function.
///
/// With the timing term enabled (`timing_weight > 0`) the delta anneal is
/// a *guarded pair*, exactly like [`place`]: the blind arm (bit-identical
/// to a `timing_weight = 0` run) and the criticality-weighted arm both
/// run against the same pin map, and the arm with the better STA estimate
/// wins (ties fall to the better wirelength pair, then to the blind arm).
/// The gated design's fmax estimate is therefore never worse than the
/// blind-ECO baseline, per benchmark, by construction —
/// `tests/timing_quality.rs` pins that property over the paper suite.
///
/// # Errors
///
/// Typed [`EcoPlaceError`] on capacity overflow, a malformed pin map, or a
/// failed post-placement self-check.
pub fn place_incremental(
    netlist: &Netlist,
    packed: &PackedDesign,
    device: Device,
    opts: PlaceOptions,
    pins_map: &PinnedEntities,
) -> Result<EcoPlacement, EcoPlaceError> {
    if opts.timing_weight > 0.0 {
        let blind = place_incremental_core(
            netlist,
            packed,
            device,
            PlaceOptions {
                timing_weight: 0.0,
                ..opts
            },
            pins_map,
        )?;
        let timed = place_incremental_core(netlist, packed, device, opts, pins_map)?;
        let estimate = |e: &EcoPlacement| {
            crate::sta::estimate_critical_ns(netlist, packed, &e.placement, &opts.delay)
                .unwrap_or(f64::INFINITY)
        };
        let (blind_ns, timed_ns) = (estimate(&blind), estimate(&timed));
        let moves = blind.placement.moves + timed.placement.moves;
        let exhausted =
            blind.placement.budget.is_exhausted() || timed.placement.budget.is_exhausted();
        let timed_wins = timed_ns < blind_ns
            || (timed_ns == blind_ns
                && (timed.placement.hpwl, timed.placement.hpwl_sq)
                    < (blind.placement.hpwl, blind.placement.hpwl_sq));
        let mut chosen = if timed_wins { timed } else { blind };
        chosen.placement.moves = moves;
        chosen.placement.budget = if exhausted {
            BudgetOutcome::Exhausted { spent: moves }
        } else {
            BudgetOutcome::Completed
        };
        return Ok(chosen);
    }
    place_incremental_core(netlist, packed, device, opts, pins_map)
}

/// One arm of [`place_incremental`]: the masked delta anneal, blind at
/// `timing_weight = 0`, criticality-weighted otherwise.
fn place_incremental_core(
    netlist: &Netlist,
    packed: &PackedDesign,
    device: Device,
    opts: PlaceOptions,
    pins_map: &PinnedEntities,
) -> Result<EcoPlacement, EcoPlaceError> {
    let clb_sites = device.clb_sites();
    let bram_sites = device.bram_sites();
    let iob_sites = device.iob_sites();
    let caps = [
        ("CLBs", packed.clbs.len(), clb_sites.len()),
        ("BRAMs", packed.brams.len(), bram_sites.len()),
        ("IOBs", packed.iobs.len(), iob_sites.len()),
    ];
    for (what, need, have) in caps {
        if need > have {
            return Err(EcoPlaceError::DoesNotFit { what, need, have });
        }
    }
    let counts = [
        ("CLBs", pins_map.clb.len(), packed.clbs.len()),
        ("BRAMs", pins_map.bram.len(), packed.brams.len()),
        ("IOBs", pins_map.iob.len(), packed.iobs.len()),
    ];
    for (what, pins, entities) in counts {
        if pins != entities {
            return Err(EcoPlaceError::PinCount {
                what,
                pins,
                entities,
            });
        }
    }

    // Validate the pins and seed locations: pinned entities at their pins,
    // movable entities on the first free sites (the quench below turns the
    // seed into a baseline local optimum).
    let seed_kind = |pin: &[Option<(usize, usize)>],
                     sites: &[(usize, usize)],
                     what: &'static str|
     -> Result<(Vec<(usize, usize)>, Vec<bool>), EcoPlaceError> {
        let legal: std::collections::HashSet<(usize, usize)> = sites.iter().copied().collect();
        let mut used: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        for (index, p) in pin.iter().enumerate() {
            if let Some(site) = *p {
                if !legal.contains(&site) {
                    return Err(EcoPlaceError::IllegalPin { what, index, site });
                }
                if !used.insert(site) {
                    return Err(EcoPlaceError::DuplicatePin { what, index, site });
                }
            }
        }
        let mut free = sites.iter().copied().filter(|s| !used.contains(s));
        let mut loc = Vec::with_capacity(pin.len());
        let mut movable = Vec::with_capacity(pin.len());
        for p in pin {
            match *p {
                Some(site) => {
                    loc.push(site);
                    movable.push(false);
                }
                None => {
                    // Capacity was checked above, so a free site exists.
                    let site = free.next().ok_or(EcoPlaceError::DoesNotFit {
                        what,
                        need: pin.len(),
                        have: sites.len(),
                    })?;
                    loc.push(site);
                    movable.push(true);
                }
            }
        }
        Ok((loc, movable))
    };
    let (mut clb_loc, clb_mov) = seed_kind(&pins_map.clb, &clb_sites, "CLBs")?;
    let (mut bram_loc, bram_mov) = seed_kind(&pins_map.bram, &bram_sites, "BRAMs")?;
    let (mut iob_loc, iob_mov) = seed_kind(&pins_map.iob, &iob_sites, "IOBs")?;
    let movable_mask: [&[bool]; 3] = [&clb_mov, &bram_mov, &iob_mov];

    let pins = build_net_pins(netlist, packed);
    let active_nets: Vec<NetId> = (0..netlist.num_nets())
        .map(|i| NetId(i as u32))
        .filter(|n| pins[n.index()].len() >= 2)
        .collect();
    let mut nets_of_entity: HashMap<EntityId, Vec<NetId>> = HashMap::new();
    for &net in &active_nets {
        for &e in &pins[net.index()] {
            nets_of_entity.entry(e).or_default().push(net);
        }
    }
    let is_movable = |e: EntityId| match e {
        EntityId::Clb(i) => clb_mov[i],
        EntityId::Bram(i) => bram_mov[i],
        EntityId::Iob(i) => iob_mov[i],
    };
    // Indices of movable entities, flattened for uniform random picks.
    let movable_entities: Vec<(usize, usize)> = (0..clb_mov.len())
        .filter(|&i| clb_mov[i])
        .map(|i| (0usize, i))
        .chain((0..bram_mov.len()).filter(|&i| bram_mov[i]).map(|i| (1, i)))
        .chain((0..iob_mov.len()).filter(|&i| iob_mov[i]).map(|i| (2, i)))
        .collect();

    let cost_all = |clb_loc: &Vec<(usize, usize)>,
                    bram_loc: &Vec<(usize, usize)>,
                    iob_loc: &Vec<(usize, usize)>|
     -> (f64, f64) {
        let loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        active_nets.iter().fold((0.0, 0.0), |(lin, sq), n| {
            let h = hpwl_of_net(&pins[n.index()], &loc);
            (lin + h, sq + h * h)
        })
    };

    let mut moves_spent = 0u64;
    let mut budget = BudgetOutcome::Completed;
    if !movable_entities.is_empty() && !active_nets.is_empty() {
        // Baseline: deterministic descent over the movable delta only.
        quench(
            &pins,
            &nets_of_entity,
            &clb_sites,
            &bram_sites,
            &iob_sites,
            &mut clb_loc,
            &mut bram_loc,
            &mut iob_loc,
            Some(movable_mask),
            None,
        );

        // Criticality-aware ECO: the delta anneal prices the enable cone's
        // nets by the same frozen criticalities as the full anneal, so the
        // cone is placed aware of the BRAM setup path it feeds instead of
        // blind on wirelength. `timing_weight = 0` reproduces the blind
        // ECO byte-for-byte.
        let mut timing = if opts.timing_weight > 0.0 {
            TimingCtx::build(netlist, &opts)
        } else {
            None
        };

        let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x0ec0_5eed_ba5e_11f7);
        let span = clb_sites
            .iter()
            .chain(bram_sites.iter())
            .chain(iob_sites.iter())
            .map(|&(x, y)| x.max(y))
            .max()
            .unwrap_or(1) as f64;
        let in_window = |a: (usize, usize), b: (usize, usize), r: f64| -> bool {
            (a.0.abs_diff(b.0).max(a.1.abs_diff(b.1)) as f64) <= r
        };
        let w0 = (span / 4.0).clamp(2.0, span);
        let free_of =
            |locs: &[(usize, usize)], sites: &[(usize, usize)]| -> Vec<(usize, usize)> {
                let used: std::collections::HashSet<(usize, usize)> =
                    locs.iter().copied().collect();
                sites.iter().copied().filter(|s| !used.contains(s)).collect()
            };
        let mut free_clb = free_of(&clb_loc, &clb_sites);
        let mut free_bram = free_of(&bram_loc, &bram_sites);
        let mut free_iob = free_of(&iob_loc, &iob_sites);

        // Proposal generator shared by the T0 probe and the walk: a random
        // movable entity, moved to a free site or swapped with a movable
        // sibling, within the window. Returns (kind, idx, other, new_site).
        #[allow(clippy::type_complexity)]
        let propose = |rng: &mut SmallRng,
                           clb_loc: &[(usize, usize)],
                           bram_loc: &[(usize, usize)],
                           iob_loc: &[(usize, usize)],
                           free: [&Vec<(usize, usize)>; 3],
                           r: f64|
         -> Option<(usize, usize, Option<usize>, (usize, usize))> {
            let (kind, idx) = movable_entities[rng.random_range(0..movable_entities.len())];
            let locs: &[(usize, usize)] = match kind {
                0 => clb_loc,
                1 => bram_loc,
                _ => iob_loc,
            };
            let mov: &[bool] = movable_mask[kind];
            let here = locs[idx];
            let free_cands: Vec<usize> = free[kind]
                .iter()
                .enumerate()
                .filter(|&(_, &s)| in_window(here, s, r))
                .map(|(f, _)| f)
                .collect();
            let swap_cands: Vec<usize> = (0..locs.len())
                .filter(|&o| o != idx && mov[o] && in_window(here, locs[o], r))
                .collect();
            let use_free = !free_cands.is_empty() && (swap_cands.is_empty() || rng.random_bool(0.5));
            if use_free {
                let f = free_cands[rng.random_range(0..free_cands.len())];
                Some((kind, idx, None, free[kind][f]))
            } else if !swap_cands.is_empty() {
                let o = swap_cands[rng.random_range(0..swap_cands.len())];
                Some((kind, idx, Some(o), locs[o]))
            } else {
                None
            }
        };
        let entity_of = |kind: usize, idx: usize| match kind {
            0 => EntityId::Clb(idx),
            1 => EntityId::Bram(idx),
            _ => EntityId::Iob(idx),
        };
        let affected_nets = |kind: usize, idx: usize, other: Option<usize>| -> Vec<NetId> {
            let mut v: Vec<NetId> = nets_of_entity
                .get(&entity_of(kind, idx))
                .cloned()
                .unwrap_or_default();
            if let Some(o) = other {
                v.extend(
                    nets_of_entity
                        .get(&entity_of(kind, o))
                        .cloned()
                        .unwrap_or_default(),
                );
                v.sort_unstable_by_key(|n| n.0);
                v.dedup();
            }
            v
        };

        // T0 probe: stddev/3 of sampled in-window move deltas (see `place`).
        let t0 = {
            let mut deltas = Vec::new();
            let samples = (movable_entities.len() * 4).clamp(32, 256);
            for _ in 0..samples {
                let Some((kind, idx, other, new_site)) = propose(
                    &mut rng,
                    &clb_loc,
                    &bram_loc,
                    &iob_loc,
                    [&free_clb, &free_bram, &free_iob],
                    w0,
                ) else {
                    continue;
                };
                let here = match kind {
                    0 => clb_loc[idx],
                    1 => bram_loc[idx],
                    _ => iob_loc[idx],
                };
                let nets = affected_nets(kind, idx, other);
                let entity = entity_of(kind, idx);
                let other_entity = other.map(|o| entity_of(kind, o));
                let eval = |moved: bool| -> f64 {
                    let loc = |e: EntityId| {
                        if moved {
                            if e == entity {
                                return new_site;
                            }
                            if other_entity == Some(e) {
                                return here;
                            }
                        }
                        match e {
                            EntityId::Clb(i) => clb_loc[i],
                            EntityId::Bram(i) => bram_loc[i],
                            EntityId::Iob(i) => iob_loc[i],
                        }
                    };
                    nets.iter().map(|n| hpwl_of_net(&pins[n.index()], &loc)).sum()
                };
                deltas.push(eval(true) - eval(false));
            }
            let n = deltas.len() as f64;
            let sd = if deltas.is_empty() {
                0.0
            } else {
                let mean = deltas.iter().sum::<f64>() / n;
                (deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n).sqrt()
            };
            if sd > 0.0 {
                sd / 3.0
            } else {
                1.0
            }
        };

        let (mut cur_cost, _) = cost_all(&clb_loc, &bram_loc, &iob_loc);
        let mut best_cost = cur_cost;
        let mut best = (clb_loc.clone(), bram_loc.clone(), iob_loc.clone());
        // Per-net bounding-box cache (see `place`): layout-before costs
        // are lookups, accepted moves write their rescanned boxes back.
        let mut net_box: Vec<NetBox> = {
            let loc = |e: EntityId| match e {
                EntityId::Clb(i) => clb_loc[i],
                EntityId::Bram(i) => bram_loc[i],
                EntityId::Iob(i) => iob_loc[i],
            };
            let mut boxes = vec![NetBox::EMPTY; pins.len()];
            for &n in &active_nets {
                boxes[n.index()] = NetBox::compute(&pins[n.index()], &loc);
            }
            boxes
        };
        let mut box_scratch: Vec<NetBox> = Vec::new();
        let mut cur_eff = cur_cost;
        let mut best_eff = best_cost;
        if let Some(t) = timing.as_mut() {
            t.refresh(&active_nets, &net_box);
            cur_eff = t.eff_from_boxes(&active_nets, &net_box);
            best_eff = cur_eff;
        }
        let m = movable_entities.len() as f64;
        let moves_per_t = ((m.powf(4.0 / 3.0) * opts.effort.max(0.1)).ceil() as usize).max(16);
        let mut temperature = t0;
        let mut rlim = w0;
        let exit_t = (0.005 * cur_cost / active_nets.len() as f64).max(1e-6);
        'anneal: while temperature > exit_t {
            let mut accepted = 0usize;
            for _ in 0..moves_per_t {
                if moves_spent >= opts.max_moves {
                    budget = BudgetOutcome::Exhausted { spent: moves_spent };
                    break 'anneal;
                }
                moves_spent += 1;
                let Some((kind, idx, other, new_site)) = propose(
                    &mut rng,
                    &clb_loc,
                    &bram_loc,
                    &iob_loc,
                    [&free_clb, &free_bram, &free_iob],
                    rlim,
                ) else {
                    continue;
                };
                let nets = affected_nets(kind, idx, other);
                let old_site = match kind {
                    0 => clb_loc[idx],
                    1 => bram_loc[idx],
                    _ => iob_loc[idx],
                };
                // Layout-before from the cache, layout-after by rescan —
                // same scheme and same bit-identity argument as `place`.
                let before: f64 = nets.iter().map(|n| net_box[n.index()].hpwl).sum();
                debug_assert!(
                    {
                        let loc = |e: EntityId| match e {
                            EntityId::Clb(i) => clb_loc[i],
                            EntityId::Bram(i) => bram_loc[i],
                            EntityId::Iob(i) => iob_loc[i],
                        };
                        nets.iter()
                            .all(|n| net_box[n.index()] == NetBox::compute(&pins[n.index()], &loc))
                    },
                    "stale bounding-box cache on nets {nets:?}"
                );
                {
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut clb_loc,
                        1 => &mut bram_loc,
                        _ => &mut iob_loc,
                    };
                    locs[idx] = new_site;
                    if let Some(o) = other {
                        locs[o] = old_site;
                    }
                }
                box_scratch.clear();
                let mut early_reject = false;
                let after: f64 = {
                    let loc = |e: EntityId| match e {
                        EntityId::Clb(i) => clb_loc[i],
                        EntityId::Bram(i) => bram_loc[i],
                        EntityId::Iob(i) => iob_loc[i],
                    };
                    if let Some(t) = timing.as_ref() {
                        // Same early-exit bound as `place`: abandon the
                        // rescan once the move is hopeless (timing mode
                        // only, so the blind-ECO RNG stream is untouched).
                        let before_eff: f64 = nets
                            .iter()
                            .map(|n| t.coef[n.index()] * net_box[n.index()].hpwl)
                            .sum();
                        let bar = before_eff + 20.0 * temperature;
                        let mut lin = 0.0;
                        let mut eff = 0.0;
                        for n in &nets {
                            let b = NetBox::compute(&pins[n.index()], &loc);
                            box_scratch.push(b);
                            lin += b.hpwl;
                            eff += t.coef[n.index()] * b.hpwl;
                            if eff > bar {
                                early_reject = true;
                                break;
                            }
                        }
                        lin
                    } else {
                        nets.iter()
                            .map(|n| {
                                let b = NetBox::compute(&pins[n.index()], &loc);
                                box_scratch.push(b);
                                b.hpwl
                            })
                            .sum()
                    }
                };
                if early_reject {
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut clb_loc,
                        1 => &mut bram_loc,
                        _ => &mut iob_loc,
                    };
                    locs[idx] = old_site;
                    if let Some(o) = other {
                        locs[o] = new_site;
                    }
                    continue;
                }
                let delta = after - before;
                let delta_eff = match timing.as_ref() {
                    Some(t) => nets
                        .iter()
                        .zip(&box_scratch)
                        .map(|(n, b)| t.coef[n.index()] * (b.hpwl - net_box[n.index()].hpwl))
                        .sum(),
                    None => delta,
                };
                let accept = delta_eff < 1e-9
                    || rng.random_bool((-delta_eff / temperature).exp().min(1.0));
                if accept {
                    accepted += 1;
                    cur_cost += delta;
                    for (&n, &b) in nets.iter().zip(&box_scratch) {
                        net_box[n.index()] = b;
                    }
                    if let Some(t) = timing.as_mut() {
                        cur_eff += delta_eff;
                        t.note_moved(&nets, &net_box);
                        if cur_eff < best_eff {
                            best_eff = cur_eff;
                            best_cost = cur_cost;
                            best = (clb_loc.clone(), bram_loc.clone(), iob_loc.clone());
                        }
                    } else if cur_cost < best_cost {
                        best_cost = cur_cost;
                        best = (clb_loc.clone(), bram_loc.clone(), iob_loc.clone());
                    }
                    if other.is_none() {
                        let free: &mut Vec<(usize, usize)> = match kind {
                            0 => &mut free_clb,
                            1 => &mut free_bram,
                            _ => &mut free_iob,
                        };
                        if let Some(pos) = free.iter().position(|s| *s == new_site) {
                            free.swap_remove(pos);
                            free.push(old_site);
                        }
                    }
                } else {
                    let locs: &mut Vec<(usize, usize)> = match kind {
                        0 => &mut clb_loc,
                        1 => &mut bram_loc,
                        _ => &mut iob_loc,
                    };
                    locs[idx] = old_site;
                    if let Some(o) = other {
                        locs[o] = new_site;
                    }
                }
            }
            let success = accepted as f64 / moves_per_t.max(1) as f64;
            temperature *= if success > 0.8 { 0.7 } else { 0.85 };
            rlim = (rlim * (0.56 + success)).clamp(1.0, span);
            // Cache-summed re-anchor, bit-identical to a recompute (see
            // the matching comment in `place`).
            cur_cost = active_nets.iter().map(|n| net_box[n.index()].hpwl).sum();
            debug_assert!(
                cur_cost == cost_all(&clb_loc, &bram_loc, &iob_loc).0,
                "bounding-box cache re-anchor diverged from recomputed HPWL"
            );
            if let Some(t) = timing.as_mut() {
                t.refresh(&active_nets, &net_box);
                cur_eff = t.eff_from_boxes(&active_nets, &net_box);
                let loc = |e: EntityId| match e {
                    EntityId::Clb(i) => best.0[i],
                    EntityId::Bram(i) => best.1[i],
                    EntityId::Iob(i) => best.2[i],
                };
                best_eff = t.eff_from_locs(&active_nets, &pins, &loc);
            }
        }
        let restore_best = if let Some(t) = timing.as_ref() {
            let cur_loc = |e: EntityId| match e {
                EntityId::Clb(i) => clb_loc[i],
                EntityId::Bram(i) => bram_loc[i],
                EntityId::Iob(i) => iob_loc[i],
            };
            let best_loc = |e: EntityId| match e {
                EntityId::Clb(i) => best.0[i],
                EntityId::Bram(i) => best.1[i],
                EntityId::Iob(i) => best.2[i],
            };
            t.eff_from_locs(&active_nets, &pins, &best_loc)
                < t.eff_from_locs(&active_nets, &pins, &cur_loc)
        } else {
            best_cost < cost_all(&clb_loc, &bram_loc, &iob_loc).0
        };
        if restore_best {
            clb_loc = best.0;
            bram_loc = best.1;
            iob_loc = best.2;
        }
        // Polish the delta with the masked deterministic descent
        // (criticality-weighted in timing mode).
        quench(
            &pins,
            &nets_of_entity,
            &clb_sites,
            &bram_sites,
            &iob_sites,
            &mut clb_loc,
            &mut bram_loc,
            &mut iob_loc,
            Some(movable_mask),
            timing.as_ref(),
        );
    }

    let (hpwl, hpwl_sq) = cost_all(&clb_loc, &bram_loc, &iob_loc);
    // The wirelength actually decided by this pass: nets touching at
    // least one movable entity.
    let delta_hpwl: f64 = {
        let loc = |e: EntityId| match e {
            EntityId::Clb(i) => clb_loc[i],
            EntityId::Bram(i) => bram_loc[i],
            EntityId::Iob(i) => iob_loc[i],
        };
        active_nets
            .iter()
            .filter(|n| pins[n.index()].iter().any(|&e| is_movable(e)))
            .map(|n| hpwl_of_net(&pins[n.index()], &loc))
            .sum()
    };
    let placement = Placement {
        device,
        clb_loc,
        bram_loc,
        iob_loc,
        hpwl,
        hpwl_sq,
        moves: moves_spent,
        budget,
    };
    verify_eco_placement(&placement, pins_map)?;
    Ok(EcoPlacement {
        placement,
        pinned_entities: pins_map.pinned_count(),
        delta_entities: pins_map.movable_count(),
        delta_hpwl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::netlist::Cell;
    use crate::pack::pack;

    /// Chain of LUT+FF stages; plenty of connectivity for the annealer.
    fn chain(n_stages: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let input = n.add_net("in");
        n.add_input("in", input);
        let mut prev = input;
        for i in 0..n_stages {
            let l = n.add_net(format!("l{i}"));
            let q = n.add_net(format!("q{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![prev],
                output: l,
                truth: 0b01,
            });
            n.add_cell(Cell::Ff {
                d: l,
                q,
                ce: None,
                init: false,
            });
            prev = q;
        }
        n.add_output("out", prev);
        n
    }

    #[test]
    fn placement_is_legal() {
        let n = chain(40);
        let p = pack(&n);
        let device = Device::xc2v250();
        let pl = place(&n, &p, device, PlaceOptions::default()).unwrap();
        // All CLBs on distinct legal CLB sites.
        let sites = device.clb_sites();
        let mut used = std::collections::HashSet::new();
        for loc in &pl.clb_loc {
            assert!(sites.contains(loc), "illegal CLB site {loc:?}");
            assert!(used.insert(*loc), "site reuse at {loc:?}");
        }
        let iob_sites = device.iob_sites();
        let mut used = std::collections::HashSet::new();
        for loc in &pl.iob_loc {
            assert!(iob_sites.contains(loc));
            assert!(used.insert(*loc), "IOB site reuse");
        }
    }

    #[test]
    fn annealing_improves_over_initial() {
        let n = chain(60);
        let p = pack(&n);
        let device = Device::xc2v250();
        // Initial cost = cost of sites in order; effort 0 approximates it by
        // freezing immediately (temperature decays but moves still run);
        // compare low vs high effort instead.
        let lo = place(
            &n,
            &p,
            device,
            PlaceOptions {
                seed: 3,
                effort: 0.05,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        let hi = place(
            &n,
            &p,
            device,
            PlaceOptions {
                seed: 3,
                effort: 12.0,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        assert!(
            hi.hpwl <= lo.hpwl * 1.05,
            "more effort should not be much worse: lo={} hi={}",
            lo.hpwl,
            hi.hpwl
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let n = chain(20);
        let p = pack(&n);
        let device = Device::xc2v250();
        let a = place(&n, &p, device, PlaceOptions::default()).unwrap();
        let b = place(&n, &p, device, PlaceOptions::default()).unwrap();
        assert_eq!(a.clb_loc, b.clb_loc);
        assert_eq!(a.hpwl, b.hpwl);
    }

    #[test]
    fn does_not_fit_reported() {
        let n = chain(10);
        let p = pack(&n);
        // XC2V40 has 4 BRAM sites; fabricate an overflow by device choice:
        // 10 stages fit easily, so instead check IOB overflow on a tiny fake
        // device is impossible with FAMILY; check CLB overflow with a big
        // chain on the smallest device.
        let big = chain(2000);
        let pb = pack(&big);
        let err = place(
            &big,
            &pb,
            Device::by_name("XC2V40").unwrap(),
            PlaceOptions::default(),
        );
        assert!(matches!(err, Err(PlaceError::DoesNotFit { .. })));
        // Sanity: the small one fits.
        assert!(place(
            &n,
            &p,
            Device::by_name("XC2V40").unwrap(),
            PlaceOptions::default()
        )
        .is_ok());
    }

    #[test]
    fn empty_design_places() {
        let n = Netlist::new("empty");
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        assert_eq!(pl.hpwl, 0.0);
        assert_eq!(pl.budget, BudgetOutcome::Completed);
    }

    #[test]
    fn move_budget_returns_best_seen_flagged() {
        let n = chain(60);
        let p = pack(&n);
        let device = Device::xc2v250();
        let full = place(
            &n,
            &p,
            device,
            PlaceOptions {
                seed: 3,
                effort: 8.0,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(full.budget, BudgetOutcome::Completed);
        let capped = place(
            &n,
            &p,
            device,
            PlaceOptions {
                seed: 3,
                effort: 8.0,
                max_moves: 500,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        assert!(capped.budget.is_exhausted(), "tiny budget must be flagged");
        // Still a legal, quench-polished placement: never worse than the
        // deterministic descent baseline alone would be (sanity: finite).
        assert!(capped.hpwl.is_finite());
        let sites = device.clb_sites();
        for loc in &capped.clb_loc {
            assert!(sites.contains(loc));
        }
        // Determinism under a budget.
        let again = place(
            &n,
            &p,
            device,
            PlaceOptions {
                seed: 3,
                effort: 8.0,
                max_moves: 500,
                ..PlaceOptions::default()
            },
        )
        .unwrap();
        assert_eq!(capped.clb_loc, again.clb_loc);
        assert_eq!(capped.budget, again.budget);
    }

    #[test]
    fn eco_all_pinned_reproduces_the_base_exactly() {
        let n = chain(30);
        let p = pack(&n);
        let device = Device::xc2v250();
        let base = place(&n, &p, device, PlaceOptions::default()).unwrap();
        let pins = PinnedEntities::pin_base(&base, &p);
        assert_eq!(pins.movable_count(), 0);
        let eco = place_incremental(&n, &p, device, PlaceOptions::default(), &pins).unwrap();
        assert_eq!(eco.placement.clb_loc, base.clb_loc);
        assert_eq!(eco.placement.bram_loc, base.bram_loc);
        assert_eq!(eco.placement.iob_loc, base.iob_loc);
        assert_eq!(eco.delta_entities, 0);
        assert_eq!(eco.delta_hpwl, 0.0);
        assert_eq!(eco.pinned_entities, p.num_entities());
    }

    #[test]
    fn eco_moves_only_the_unpinned_delta() {
        let n = chain(30);
        let p = pack(&n);
        let device = Device::xc2v250();
        let base = place(&n, &p, device, PlaceOptions::default()).unwrap();
        let mut pins = PinnedEntities::pin_base(&base, &p);
        // Release the last two CLBs: the ECO pass may move them, nothing
        // else.
        let k = pins.clb.len();
        assert!(k >= 2, "chain(30) packs into at least two CLBs");
        pins.clb[k - 1] = None;
        pins.clb[k - 2] = None;
        let eco = place_incremental(&n, &p, device, PlaceOptions::default(), &pins).unwrap();
        assert_eq!(eco.delta_entities, 2);
        assert_eq!(eco.pinned_entities, p.num_entities() - 2);
        for i in 0..k - 2 {
            assert_eq!(eco.placement.clb_loc[i], base.clb_loc[i], "pinned CLB {i} moved");
        }
        assert_eq!(eco.placement.bram_loc, base.bram_loc);
        assert_eq!(eco.placement.iob_loc, base.iob_loc);
        assert!(eco.delta_hpwl.is_finite());
        assert!(eco.delta_hpwl <= eco.placement.hpwl + 1e-9);
        // Legality of the delta sites, including no collision with pins.
        verify_eco_placement(&eco.placement, &pins).unwrap();
        // Determinism.
        let again = place_incremental(&n, &p, device, PlaceOptions::default(), &pins).unwrap();
        assert_eq!(eco.placement.clb_loc, again.placement.clb_loc);
        assert_eq!(eco.delta_hpwl, again.delta_hpwl);
    }

    #[test]
    fn eco_rejects_malformed_pin_maps() {
        let n = chain(10);
        let p = pack(&n);
        let device = Device::xc2v250();
        let base = place(&n, &p, device, PlaceOptions::default()).unwrap();
        let good = PinnedEntities::pin_base(&base, &p);

        let mut short = good.clone();
        short.clb.pop();
        let err = place_incremental(&n, &p, device, PlaceOptions::default(), &short);
        assert!(matches!(err, Err(EcoPlaceError::PinCount { .. })), "{err:?}");

        let mut illegal = good.clone();
        illegal.clb[0] = Some((usize::MAX, usize::MAX));
        let err = place_incremental(&n, &p, device, PlaceOptions::default(), &illegal);
        assert!(matches!(err, Err(EcoPlaceError::IllegalPin { .. })), "{err:?}");

        let mut dup = good.clone();
        if dup.clb.len() >= 2 {
            dup.clb[1] = dup.clb[0];
            let err = place_incremental(&n, &p, device, PlaceOptions::default(), &dup);
            assert!(
                matches!(err, Err(EcoPlaceError::DuplicatePin { .. })),
                "{err:?}"
            );
        }
    }

    #[test]
    fn eco_self_check_catches_a_moved_pin() {
        let n = chain(10);
        let p = pack(&n);
        let device = Device::xc2v250();
        let base = place(&n, &p, device, PlaceOptions::default()).unwrap();
        let pins = PinnedEntities::pin_base(&base, &p);
        let mut bad = base.clone();
        // Teleport the first CLB to a free legal site.
        let used: std::collections::HashSet<(usize, usize)> =
            bad.clb_loc.iter().copied().collect();
        let free = device
            .clb_sites()
            .into_iter()
            .find(|s| !used.contains(s))
            .expect("free CLB site");
        bad.clb_loc[0] = free;
        let err = verify_eco_placement(&bad, &pins);
        assert!(matches!(err, Err(EcoPlaceError::PinMoved { .. })), "{err:?}");
        // And the untouched base passes.
        verify_eco_placement(&base, &pins).unwrap();
    }
}
