//! Congestion-aware grid routing.
//!
//! A deliberately simple PathFinder-style router over the device tile grid:
//! every tile has a switch matrix of bounded capacity; each net is routed
//! as a Steiner tree by repeated shortest-path searches from the already-
//! routed tree to the next sink, with costs inflated on congested tiles.
//! A few rip-up-and-reroute rounds clear residual overflow.
//!
//! The router's outputs — per-net **wirelength** (tile hops) and
//! **programmable switch count** — are exactly the quantities the power
//! model needs: a routed FPGA signal "may have to pass through a number of
//! programmable switches before reaching its destination" (paper Sec. 2),
//! and each switch and wire segment adds capacitance.

use crate::netlist::{NetId, Netlist};
use crate::pack::{EntityId, PackedDesign};
use crate::place::Placement;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;

/// Routing options.
#[derive(Debug, Clone, Copy)]
pub struct RouteOptions {
    /// Wires available per tile switch matrix.
    pub tile_capacity: usize,
    /// Maximum rip-up-and-reroute rounds.
    pub max_rounds: usize,
    /// Hard cap on total search expansions (heap pops) across the whole
    /// route, so no rip-up loop can hang the harness. Exceeding it
    /// returns [`RouteError::BudgetExhausted`]. The default is orders of
    /// magnitude above what the paper benchmarks spend (~2M on the
    /// largest), so results are unchanged unless a caller tightens it.
    pub max_expansions: u64,
}

impl RouteOptions {
    /// Default search-expansion cap (see [`RouteOptions::max_expansions`]).
    pub const DEFAULT_MAX_EXPANSIONS: u64 = 100_000_000;
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            tile_capacity: 160,
            max_rounds: 4,
            max_expansions: Self::DEFAULT_MAX_EXPANSIONS,
        }
    }
}

/// Errors from routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Some net could not reach a sink (disconnected grid — impossible on
    /// rectangular devices, kept for API honesty).
    Unroutable(NetId),
    /// Congestion never cleared within the round budget.
    CongestionUnresolved {
        /// Tiles still over capacity.
        overflowed_tiles: usize,
    },
    /// The search-expansion budget ran out mid-route. Unlike placement
    /// there is no legal partial result to return, so this is an error.
    BudgetExhausted {
        /// Expansions spent when the budget cut in.
        spent: u64,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable(n) => write!(f, "net {} is unroutable", n.0),
            RouteError::CongestionUnresolved { overflowed_tiles } => {
                write!(f, "congestion unresolved on {overflowed_tiles} tiles")
            }
            RouteError::BudgetExhausted { spent } => {
                write!(f, "search budget exhausted after {spent} expansions")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The routed tree of one net.
#[derive(Debug, Clone, Default)]
pub struct NetRoute {
    /// Tiles used by the net's tree (including source and sinks).
    pub tiles: Vec<(usize, usize)>,
    /// Wirelength in tile hops (tree edges).
    pub wirelength: usize,
    /// Programmable switches crossed (one per tile entered).
    pub switches: usize,
}

/// The routed design.
#[derive(Debug, Clone)]
pub struct RoutedDesign {
    /// Per-net routes (`None` for nets with fewer than 2 distinct tiles —
    /// those stay inside one entity and use no general routing).
    pub routes: Vec<Option<NetRoute>>,
    /// Sum of all net wirelengths.
    pub total_wirelength: usize,
    /// Peak tile usage observed.
    pub peak_usage: usize,
}

impl RoutedDesign {
    /// Wirelength of one net (0 when unrouted/local).
    #[must_use]
    pub fn wirelength(&self, net: NetId) -> usize {
        self.routes[net.index()]
            .as_ref()
            .map_or(0, |r| r.wirelength)
    }

    /// Switches crossed by one net (0 when local).
    #[must_use]
    pub fn switches(&self, net: NetId) -> usize {
        self.routes[net.index()].as_ref().map_or(0, |r| r.switches)
    }
}

/// Gathers, for every net, the distinct tiles its pins occupy; index 0 is
/// the driver tile.
fn net_terminals(
    netlist: &Netlist,
    packed: &PackedDesign,
    placement: &Placement,
) -> Vec<Vec<(usize, usize)>> {
    let mut terminals: Vec<Vec<(usize, usize)>> = vec![Vec::new(); netlist.num_nets()];
    let push =
        |net: NetId, tile: (usize, usize), is_driver: bool, t: &mut Vec<Vec<(usize, usize)>>| {
            let v = &mut t[net.index()];
            if is_driver {
                if v.first() != Some(&tile) {
                    v.retain(|x| *x != tile);
                    v.insert(0, tile);
                }
            } else if !v.contains(&tile) {
                v.push(tile);
            }
        };
    // Cell pins.
    for (i, cell) in netlist.cells().iter().enumerate() {
        let Some(entity) = packed.entity_of_cell[i] else {
            continue;
        };
        let tile = placement.location(entity);
        for net in cell.outputs() {
            push(net, tile, true, &mut terminals);
        }
        for net in cell.inputs() {
            push(net, tile, false, &mut terminals);
        }
    }
    // IOB pins: input pads drive, output pads sink.
    for (i, iob) in packed.iobs.iter().enumerate() {
        let tile = placement.location(EntityId::Iob(i));
        push(iob.net, tile, iob.is_input, &mut terminals);
    }
    terminals
}

/// Routes all nets of a placed design.
///
/// # Errors
///
/// Fails if congestion cannot be resolved within `opts.max_rounds`.
pub fn route(
    netlist: &Netlist,
    packed: &PackedDesign,
    placement: &Placement,
    opts: RouteOptions,
) -> Result<RoutedDesign, RouteError> {
    let device = placement.device;
    let w = device.grid_width();
    let h = device.grid_height();
    let terminals = net_terminals(netlist, packed, placement);

    let routable: Vec<NetId> = (0..netlist.num_nets())
        .map(|i| NetId(i as u32))
        .filter(|n| terminals[n.index()].len() >= 2)
        .collect();

    let mut usage = vec![0usize; w * h];
    let mut history = vec![0.0f64; w * h];
    let mut routes: Vec<Option<NetRoute>> = vec![None; netlist.num_nets()];
    let mut expansions = 0u64;

    for round in 0..opts.max_rounds {
        // (Re)route every net against current congestion costs.
        for &net in &routable {
            // Rip up the previous route.
            if let Some(old) = routes[net.index()].take() {
                for t in &old.tiles {
                    usage[t.1 * w + t.0] -= 1;
                }
            }
            let tree = route_net(
                &terminals[net.index()],
                w,
                h,
                &usage,
                &history,
                opts.tile_capacity,
                round,
                opts.max_expansions,
                &mut expansions,
            )
            .map_err(|stop| match stop {
                RouteStop::Unreachable => RouteError::Unroutable(net),
                RouteStop::Budget => RouteError::BudgetExhausted { spent: expansions },
            })?;
            for t in &tree {
                usage[t.1 * w + t.0] += 1;
            }
            let wirelength = tree.len().saturating_sub(1);
            routes[net.index()] = Some(NetRoute {
                switches: wirelength,
                wirelength,
                tiles: tree,
            });
        }
        let overflowed = usage.iter().filter(|&&u| u > opts.tile_capacity).count();
        if overflowed == 0 {
            let total_wirelength = routes.iter().flatten().map(|r| r.wirelength).sum();
            let peak_usage = usage.iter().copied().max().unwrap_or(0);
            return Ok(RoutedDesign {
                routes,
                total_wirelength,
                peak_usage,
            });
        }
        // Strengthen history costs on overflowed tiles for the next round.
        for (i, &u) in usage.iter().enumerate() {
            if u > opts.tile_capacity {
                history[i] += (u - opts.tile_capacity) as f64;
            }
        }
    }
    let overflowed_tiles = usage.iter().filter(|&&u| u > opts.tile_capacity).count();
    Err(RouteError::CongestionUnresolved { overflowed_tiles })
}

/// Why [`route_net`] stopped without a tree.
enum RouteStop {
    /// A sink is unreachable (disconnected grid).
    Unreachable,
    /// The global expansion budget ran out.
    Budget,
}

/// Routes one net: grows a Steiner tree with Dijkstra searches from the
/// current tree to each remaining sink.
#[allow(clippy::too_many_arguments)]
fn route_net(
    terminals: &[(usize, usize)],
    w: usize,
    h: usize,
    usage: &[usize],
    history: &[f64],
    capacity: usize,
    round: usize,
    max_expansions: u64,
    expansions: &mut u64,
) -> Result<Vec<(usize, usize)>, RouteStop> {
    let tile_cost = |x: usize, y: usize| -> f64 {
        let i = y * w + x;
        let u = usage[i];
        // Base + congestion: sharply penalize over-capacity in later rounds.
        let over = u.saturating_sub(capacity) as f64;
        1.0 + history[i] + over * (1.0 + round as f64 * 4.0) + u as f64 * 0.02
    };

    let mut tree: HashSet<(usize, usize)> = HashSet::new();
    tree.insert(terminals[0]);
    let mut remaining: Vec<(usize, usize)> = terminals[1..]
        .iter()
        .copied()
        .filter(|t| !tree.contains(t))
        .collect();

    while !remaining.is_empty() {
        // Dijkstra from all tree tiles.
        let mut dist: HashMap<(usize, usize), f64> = HashMap::new();
        let mut prev: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        let mut heap: BinaryHeap<(std::cmp::Reverse<ordered::F64>, (usize, usize))> =
            BinaryHeap::new();
        for &t in &tree {
            dist.insert(t, 0.0);
            heap.push((std::cmp::Reverse(ordered::F64(0.0)), t));
        }
        let mut reached: Option<(usize, usize)> = None;
        while let Some((std::cmp::Reverse(ordered::F64(d)), (x, y))) = heap.pop() {
            *expansions += 1;
            if *expansions > max_expansions {
                return Err(RouteStop::Budget);
            }
            if dist.get(&(x, y)).copied().unwrap_or(f64::INFINITY) < d {
                continue;
            }
            if let Some(pos) = remaining.iter().position(|&s| s == (x, y)) {
                remaining.swap_remove(pos);
                reached = Some((x, y));
                break;
            }
            let neighbors = [
                (x.wrapping_sub(1), y),
                (x + 1, y),
                (x, y.wrapping_sub(1)),
                (x, y + 1),
            ];
            for (nx, ny) in neighbors {
                if nx >= w || ny >= h {
                    continue;
                }
                let nd = d + tile_cost(nx, ny);
                if nd < dist.get(&(nx, ny)).copied().unwrap_or(f64::INFINITY) {
                    dist.insert((nx, ny), nd);
                    prev.insert((nx, ny), (x, y));
                    heap.push((std::cmp::Reverse(ordered::F64(nd)), (nx, ny)));
                }
            }
        }
        let sink = reached.ok_or(RouteStop::Unreachable)?;
        // Back-trace into the tree.
        let mut cur = sink;
        while !tree.contains(&cur) {
            tree.insert(cur);
            match prev.get(&cur) {
                Some(&p) => cur = p,
                None => break, // cur was a tree seed
            }
        }
    }
    let mut tiles: Vec<(usize, usize)> = tree.into_iter().collect();
    tiles.sort_unstable();
    Ok(tiles)
}

/// Total-order wrapper for f64 path costs (never NaN).
mod ordered {
    /// f64 with `Ord` (costs are finite and non-NaN by construction).
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .expect("routing costs are never NaN")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::netlist::Cell;
    use crate::pack::pack;
    use crate::place::{place, PlaceOptions};

    fn routed_chain(stages: usize) -> (Netlist, RoutedDesign) {
        let mut n = Netlist::new("chain");
        let input = n.add_net("in");
        n.add_input("in", input);
        let mut prev = input;
        for i in 0..stages {
            let l = n.add_net(format!("l{i}"));
            let q = n.add_net(format!("q{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![prev],
                output: l,
                truth: 0b01,
            });
            n.add_cell(Cell::Ff {
                d: l,
                q,
                ce: None,
                init: false,
            });
            prev = q;
        }
        n.add_output("out", prev);
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let r = route(&n, &p, &pl, RouteOptions::default()).unwrap();
        (n, r)
    }

    #[test]
    fn multi_clb_design_uses_routing() {
        // 30 stages = 60 logic elements > one CLB, so inter-CLB nets exist
        // and must be routed. (Pad nets may be local if the IOB lands on
        // the same perimeter tile as its sink CLB.)
        let (_, r) = routed_chain(30);
        assert!(r.total_wirelength > 0);
        assert!(r.routes.iter().flatten().count() > 0);
        assert!(r.peak_usage >= 1);
    }

    #[test]
    fn route_trees_are_connected_and_cover_terminals() {
        let (n, r) = routed_chain(20);
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let terms = net_terminals(&n, &p, &pl);
        for (i, route) in r.routes.iter().enumerate() {
            let Some(route) = route else { continue };
            let tiles: HashSet<(usize, usize)> = route.tiles.iter().copied().collect();
            for t in &terms[i] {
                assert!(tiles.contains(t), "net {i} misses terminal {t:?}");
            }
            // Connectivity: BFS within the tile set from the first terminal.
            let mut seen = HashSet::new();
            let mut stack = vec![terms[i][0]];
            seen.insert(terms[i][0]);
            while let Some((x, y)) = stack.pop() {
                for (nx, ny) in [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ] {
                    if tiles.contains(&(nx, ny)) && seen.insert((nx, ny)) {
                        stack.push((nx, ny));
                    }
                }
            }
            assert_eq!(seen.len(), tiles.len(), "net {i} tree is disconnected");
        }
    }

    #[test]
    fn local_nets_use_no_routing() {
        // A LUT and its paired FF share an entity: the connecting net is
        // single-tile and needs no general routing.
        let mut n = Netlist::new("pair");
        let a = n.add_net("a");
        let l = n.add_net("l");
        let q = n.add_net("q");
        n.add_input("a", a);
        n.add_output("q", q);
        n.add_cell(Cell::Lut {
            inputs: vec![a],
            output: l,
            truth: 0b01,
        });
        n.add_cell(Cell::Ff {
            d: l,
            q,
            ce: None,
            init: false,
        });
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let r = route(&n, &p, &pl, RouteOptions::default()).unwrap();
        assert!(
            r.routes[l.index()].is_none(),
            "intra-LE net routed globally"
        );
        assert_eq!(r.wirelength(l), 0);
        assert_eq!(r.switches(l), 0);
    }

    #[test]
    fn wirelength_tracks_distance() {
        let (_, r) = routed_chain(10);
        for route in r.routes.iter().flatten() {
            assert_eq!(route.wirelength + 1, route.tiles.len());
            assert_eq!(route.switches, route.wirelength);
        }
    }

    #[test]
    fn congestion_forces_ripup_or_reports() {
        // A dense design with capacity 1 per tile: either the router
        // resolves it through rip-up rounds or reports the overflow —
        // never panics or silently overcommits.
        let mut n = Netlist::new("dense");
        let a = n.add_net("a");
        n.add_input("a", a);
        for i in 0..40 {
            let o = n.add_net(format!("o{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![a],
                output: o,
                truth: 0b10,
            });
            n.add_output(format!("o{i}"), o);
        }
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let opts = RouteOptions {
            tile_capacity: 1,
            max_rounds: 3,
            ..RouteOptions::default()
        };
        match route(&n, &p, &pl, opts) {
            Ok(r) => assert!(r.peak_usage <= 1, "capacity respected"),
            Err(RouteError::CongestionUnresolved { overflowed_tiles }) => {
                assert!(overflowed_tiles > 0);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn deterministic_routing() {
        let (_, r1) = routed_chain(15);
        let (_, r2) = routed_chain(15);
        assert_eq!(r1.total_wirelength, r2.total_wirelength);
    }

    #[test]
    fn expansion_budget_exhaustion_is_typed() {
        let mut n = Netlist::new("chain");
        let input = n.add_net("in");
        n.add_input("in", input);
        let mut prev = input;
        for i in 0..30 {
            let l = n.add_net(format!("l{i}"));
            let q = n.add_net(format!("q{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![prev],
                output: l,
                truth: 0b01,
            });
            n.add_cell(Cell::Ff {
                d: l,
                q,
                ce: None,
                init: false,
            });
            prev = q;
        }
        n.add_output("out", prev);
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let opts = RouteOptions {
            max_expansions: 1,
            ..RouteOptions::default()
        };
        match route(&n, &p, &pl, opts) {
            Err(RouteError::BudgetExhausted { spent }) => assert!(spent > 1),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // An ample budget routes identically to the default.
        let ample = RouteOptions {
            max_expansions: RouteOptions::DEFAULT_MAX_EXPANSIONS,
            ..RouteOptions::default()
        };
        let r = route(&n, &p, &pl, ample).unwrap();
        assert!(r.total_wirelength > 0);
    }
}
