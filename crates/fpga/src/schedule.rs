//! The levelized evaluation schedule shared by the simulation engines and
//! the incremental static-timing kernel.
//!
//! `netsim`'s scalar and bit-parallel engines evaluate a netlist the same
//! way: combinational cells in one fixed topological order, then the
//! sequential cells (FFs, then BRAMs) in cell order at each clock edge.
//! The same levelization is the traversal order of [`crate::sta`]'s
//! arrival/required propagation. This module computes that schedule once
//! per netlist so the consumers cannot drift apart structurally — the
//! evaluation *order*, the set of sequential cells, and the definition of
//! the architectural state (the sequential nets) all come from here. It
//! lives in `fpga_fabric` (the netlist's home crate) and is re-exported as
//! `netsim::schedule` for the simulation engines.

use crate::netlist::{Cell, CellId, NetId, Netlist, NetlistError};

/// The one-time levelization of a netlist: the topological order of its
/// combinational cone plus the sequential cell and state-net inventory.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Topological order of combinational cells (LUTs and constants).
    pub comb_order: Vec<CellId>,
    /// Flip-flop cells, in netlist cell order.
    pub ffs: Vec<CellId>,
    /// Block-RAM cells, in netlist cell order.
    pub brams: Vec<CellId>,
    /// The architectural state nets: every FF `q` and BRAM `dout` net, in
    /// netlist cell order. Restoring these values fully determines the
    /// machine state of a write-port-free design — combinational nets are
    /// recomputed from them (and the primary inputs) by the next settle.
    pub seq_nets: Vec<NetId>,
    /// True when any BRAM has a write port (its memory contents are then
    /// part of the architectural state too, beyond [`Self::seq_nets`]).
    pub has_write_ports: bool,
}

impl Schedule {
    /// Validates `netlist` and builds its evaluation schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation.
    pub fn build(netlist: &Netlist) -> Result<Self, NetlistError> {
        let comb_order = netlist.validate()?;
        let mut ffs = Vec::new();
        let mut brams = Vec::new();
        let mut seq_nets = Vec::new();
        let mut has_write_ports = false;
        for (i, cell) in netlist.cells().iter().enumerate() {
            match cell {
                Cell::Ff { q, .. } => {
                    ffs.push(CellId(i as u32));
                    seq_nets.push(*q);
                }
                Cell::Bram { dout, write, .. } => {
                    brams.push(CellId(i as u32));
                    seq_nets.extend(dout.iter().copied());
                    has_write_ports |= write.is_some();
                }
                _ => {}
            }
        }
        Ok(Schedule {
            comb_order,
            ffs,
            brams,
            seq_nets,
            has_write_ports,
        })
    }
}

/// The write-port data mask for a BRAM write of `data_len` wired bits —
/// bits beyond the wired width are preserved on a write. Shared by both
/// engines so the collision semantics stay identical.
#[must_use]
pub fn write_data_mask(data_len: usize) -> u64 {
    if data_len >= 64 {
        u64::MAX
    } else {
        (1u64 << data_len) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BramShape;

    #[test]
    fn schedule_inventories_sequential_state() {
        let mut n = Netlist::new("s");
        let d = n.add_net("d");
        let q = n.add_net("q");
        let a: Vec<NetId> = (0..9).map(|i| n.add_net(format!("a{i}"))).collect();
        let o = n.add_net("o");
        n.add_input("d", d);
        for (i, net) in a.iter().enumerate() {
            n.add_input(format!("a{i}"), *net);
        }
        n.add_output("q", q);
        n.add_output("o", o);
        n.add_cell(Cell::Ff {
            d,
            q,
            ce: None,
            init: false,
        });
        n.add_cell(Cell::Bram {
            shape: BramShape {
                addr_bits: 9,
                data_bits: 36,
            },
            addr: a,
            dout: vec![o],
            en: None,
            init: vec![0; 512],
            output_init: 0,
            write: None,
        });
        let s = Schedule::build(&n).unwrap();
        assert_eq!(s.ffs.len(), 1);
        assert_eq!(s.brams.len(), 1);
        assert_eq!(s.seq_nets, vec![q, o]);
        assert!(!s.has_write_ports);
    }

    #[test]
    fn write_mask_widths() {
        assert_eq!(write_data_mask(1), 0b1);
        assert_eq!(write_data_mask(8), 0xFF);
        assert_eq!(write_data_mask(64), u64::MAX);
    }
}
