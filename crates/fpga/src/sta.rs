//! Incremental static-timing kernel for the placer.
//!
//! [`crate::timing::analyze`] runs once, post-route, over routed
//! wirelengths. The annealer needs the same quantities *millions of times*
//! while nets are still bounding boxes, and each move disturbs only a
//! handful of nets — so this module keeps per-net arrival and downstream
//! times live under wire-delay edits, NetBox-cache style: a
//! [`TimingKernel::set_wire_delay`] call dirties only the disturbed
//! fan-out (forward) and fan-in (backward) cones, and
//! [`TimingKernel::flush`] re-propagates just those, stopping as soon as a
//! recomputed value is bit-identical to the stored one.
//!
//! The delay semantics mirror `analyze` exactly — same launch edges
//! (pad, FF clk→q, BRAM clk→out, constants at 0), same LUT propagation,
//! same capture endpoints (FF d/ce + setup, BRAM addr/en + setup, output
//! pads; BRAM *write*-port pins are not endpoints, matching `analyze`) —
//! except that the wire delay of each net is whatever the caller last set
//! (the placer uses `net_base + net_per_hop · hpwl`; the differential
//! tests use routed wirelengths, under which the kernel reproduces
//! `analyze` exactly).
//!
//! The committed invariant: after a `flush`, the incremental state is
//! **bit-identical** to a from-scratch recompute. [`TimingKernel::full_retime`]
//! performs that recompute, reports whether the invariant held, and
//! re-anchors the state — the placer calls it periodically to bound any
//! drift, and asserts the report under `debug_assertions`. Identity holds
//! by construction: both paths evaluate the same pure per-net expressions
//! over the same operands in the same reduction order.

use crate::netlist::{Cell, NetId, Netlist, NetlistError};
use crate::pack::PackedDesign;
use crate::place::Placement;
use crate::schedule::Schedule;
use crate::timing::DelayModel;
use std::collections::BTreeSet;

/// What launches a net (determines its arrival-time formula).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Launch {
    /// Top-level input pad.
    Input,
    /// FF `q` output.
    FfQ,
    /// BRAM `dout` bit.
    BramDout,
    /// Constant driver (arrival 0, no wire).
    Const,
    /// LUT output; the index points into the kernel's LUT table.
    Lut(u32),
    /// No driver and not an input (arrival 0, like `analyze`'s default).
    Undriven,
}

/// A timing sink of a net (contributes to its downstream delay).
#[derive(Debug, Clone, Copy)]
enum Sink {
    /// Fans into a LUT; the index points into the kernel's LUT table.
    Lut(u32),
    /// Capture endpoint with the given setup/pad margin.
    Setup(f64),
}

/// Live arrival/downstream times over a techmapped netlist under
/// caller-controlled per-net wire delays.
///
/// See the [module docs](self) for the model and the incremental-update
/// contract. All nets start with a zero-hop wire delay
/// (`model.net_base`); `criticality`/`slack` read the state as of the
/// last [`flush`](Self::flush).
#[derive(Debug, Clone)]
pub struct TimingKernel {
    model: DelayModel,
    /// Per-net launch kind.
    launch: Vec<Launch>,
    /// Per-net propagation rank: 0 for launch/const/undriven nets,
    /// `1 + comb_order position` for LUT-driven nets (unique per net).
    rank: Vec<u32>,
    /// Per-net timing sinks.
    sinks: Vec<Vec<Sink>>,
    /// Input nets of each LUT, indexed by the `Launch::Lut`/`Sink::Lut` id.
    lut_inputs: Vec<Vec<NetId>>,
    /// Output net of each LUT.
    lut_output: Vec<NetId>,
    /// Capture endpoints: `(net, setup_or_pad_margin)`.
    endpoints: Vec<(NetId, f64)>,
    /// Caller-set wire delay per net.
    wire: Vec<f64>,
    /// Arrival time at each net's sinks (includes the net's own wire).
    arrival: Vec<f64>,
    /// Longest remaining delay from a net's sinks to any endpoint;
    /// `f64::NEG_INFINITY` for nets with no timing sinks.
    downstream: Vec<f64>,
    /// Worst endpoint arrival (`0.0` floor, like `analyze`).
    dmax: f64,
    /// Nets whose arrival must be recomputed, ordered by ascending rank.
    dirty_fwd: BTreeSet<(u32, u32)>,
    /// Nets whose downstream must be recomputed, drained by descending rank.
    dirty_bwd: BTreeSet<(u32, u32)>,
}

impl TimingKernel {
    /// Builds the kernel over a validated netlist. Every net starts at the
    /// zero-hop wire delay `model.net_base`; call
    /// [`set_wire_delay`](Self::set_wire_delay) + [`flush`](Self::flush)
    /// to load real wirelengths.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation (via [`Schedule::build`]).
    pub fn new(netlist: &Netlist, model: &DelayModel) -> Result<Self, NetlistError> {
        let schedule = Schedule::build(netlist)?;
        let n = netlist.num_nets();

        let mut launch = vec![Launch::Undriven; n];
        let mut rank = vec![0u32; n];
        let mut sinks: Vec<Vec<Sink>> = vec![Vec::new(); n];
        let mut lut_inputs = Vec::new();
        let mut lut_output = Vec::new();
        let mut endpoints = Vec::new();

        for (_, net) in netlist.inputs() {
            launch[net.index()] = Launch::Input;
        }
        // LUT table in comb_order (the shared levelized traversal); the
        // position fixes each LUT-driven net's unique propagation rank.
        for (pos, id) in schedule.comb_order.iter().enumerate() {
            if let Cell::Lut { inputs, output, .. } = netlist.cell(*id) {
                let li = lut_inputs.len() as u32;
                launch[output.index()] = Launch::Lut(li);
                rank[output.index()] = pos as u32 + 1;
                for i in inputs {
                    sinks[i.index()].push(Sink::Lut(li));
                }
                lut_inputs.push(inputs.clone());
                lut_output.push(*output);
            }
        }
        for cell in netlist.cells() {
            match cell {
                Cell::Ff { d, q, ce, .. } => {
                    launch[q.index()] = Launch::FfQ;
                    endpoints.push((*d, model.ff_setup));
                    sinks[d.index()].push(Sink::Setup(model.ff_setup));
                    if let Some(ce) = ce {
                        endpoints.push((*ce, model.ff_setup));
                        sinks[ce.index()].push(Sink::Setup(model.ff_setup));
                    }
                }
                Cell::Bram { addr, dout, en, .. } => {
                    for d in dout {
                        launch[d.index()] = Launch::BramDout;
                    }
                    for a in addr {
                        endpoints.push((*a, model.bram_setup));
                        sinks[a.index()].push(Sink::Setup(model.bram_setup));
                    }
                    if let Some(en) = en {
                        endpoints.push((*en, model.bram_setup));
                        sinks[en.index()].push(Sink::Setup(model.bram_setup));
                    }
                    // Write-port pins are sampled state updates, not capture
                    // endpoints, exactly as in `analyze`.
                }
                Cell::Const { output, .. } => {
                    launch[output.index()] = Launch::Const;
                }
                Cell::Lut { .. } => {}
            }
        }
        for (_, net) in netlist.outputs() {
            endpoints.push((*net, model.pad));
            sinks[net.index()].push(Sink::Setup(model.pad));
        }

        let mut kernel = TimingKernel {
            model: *model,
            launch,
            rank,
            sinks,
            lut_inputs,
            lut_output,
            endpoints,
            wire: vec![model.net_base; n],
            arrival: vec![0.0; n],
            downstream: vec![f64::NEG_INFINITY; n],
            dmax: 0.0,
            dirty_fwd: BTreeSet::new(),
            dirty_bwd: BTreeSet::new(),
        };
        kernel.full_retime();
        Ok(kernel)
    }

    /// Number of nets the kernel tracks.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.wire.len()
    }

    /// The current wire delay of `net`.
    #[must_use]
    pub fn wire_delay(&self, net: NetId) -> f64 {
        self.wire[net.index()]
    }

    /// Sets `net`'s wire delay, dirtying exactly the values that depend on
    /// it: the net's own arrival (forward cone) and the downstream of its
    /// driver LUT's inputs (backward cone). Bit-equal writes are no-ops.
    /// Call [`flush`](Self::flush) before reading timing quantities.
    pub fn set_wire_delay(&mut self, net: NetId, delay_ns: f64) {
        let i = net.index();
        if self.wire[i].to_bits() == delay_ns.to_bits() {
            return;
        }
        self.wire[i] = delay_ns;
        self.dirty_fwd.insert((self.rank[i], net.0));
        // `wire[net]` feeds the downstream of every net fanning into the
        // LUT that drives `net` (the Sink::Lut term).
        if let Launch::Lut(li) = self.launch[i] {
            for input in &self.lut_inputs[li as usize] {
                self.dirty_bwd.insert((self.rank[input.index()], input.0));
            }
        }
    }

    /// Re-propagates all pending dirty nets (forward in ascending rank,
    /// backward in descending rank), stopping each wavefront where the
    /// recomputed value is bit-identical to the stored one, then refreshes
    /// the worst-endpoint arrival.
    pub fn flush(&mut self) {
        while let Some(&(r, id)) = self.dirty_fwd.iter().next() {
            self.dirty_fwd.remove(&(r, id));
            let i = id as usize;
            let a = self.arrival_of(i);
            if a.to_bits() != self.arrival[i].to_bits() {
                self.arrival[i] = a;
                for s in &self.sinks[i] {
                    if let Sink::Lut(li) = s {
                        let out = self.lut_output[*li as usize];
                        self.dirty_fwd.insert((self.rank[out.index()], out.0));
                    }
                }
            }
        }
        while let Some(&(r, id)) = self.dirty_bwd.iter().next_back() {
            self.dirty_bwd.remove(&(r, id));
            let i = id as usize;
            let d = self.downstream_of(i);
            if d.to_bits() != self.downstream[i].to_bits() {
                self.downstream[i] = d;
                if let Launch::Lut(li) = self.launch[i] {
                    for input in &self.lut_inputs[li as usize] {
                        self.dirty_bwd.insert((self.rank[input.index()], input.0));
                    }
                }
            }
        }
        self.dmax = self.scan_dmax();
    }

    /// Recomputes every arrival/downstream from scratch in the fixed
    /// levelized order, adopts the fresh state, and reports whether it was
    /// bit-identical to the incremental state it replaced — the committed
    /// differential invariant (true after any [`flush`](Self::flush);
    /// pending dirty nets make the comparison trivially meaningless, so
    /// flush first when using this as a check).
    pub fn full_retime(&mut self) -> bool {
        let n = self.wire.len();
        let mut order: Vec<(u32, u32)> = (0..n).map(|i| (self.rank[i], i as u32)).collect();
        order.sort_unstable();

        let mut matched = true;
        let prev_arrival = std::mem::replace(&mut self.arrival, vec![0.0; n]);
        for &(_, id) in &order {
            let i = id as usize;
            self.arrival[i] = self.arrival_of(i);
            matched &= self.arrival[i].to_bits() == prev_arrival[i].to_bits();
        }
        let prev_downstream = std::mem::replace(&mut self.downstream, vec![f64::NEG_INFINITY; n]);
        for &(_, id) in order.iter().rev() {
            let i = id as usize;
            self.downstream[i] = self.downstream_of(i);
            matched &= self.downstream[i].to_bits() == prev_downstream[i].to_bits();
        }
        self.dirty_fwd.clear();
        self.dirty_bwd.clear();
        self.dmax = self.scan_dmax();
        matched
    }

    /// Arrival time at `net`'s sinks (includes the net's own wire delay).
    #[must_use]
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival[net.index()]
    }

    /// Longest remaining delay from `net`'s sinks to any capture endpoint.
    /// `f64::NEG_INFINITY` when the net has no timing sinks.
    #[must_use]
    pub fn downstream(&self, net: NetId) -> f64 {
        self.downstream[net.index()]
    }

    /// Critical path in ns — the worst endpoint arrival, floored at
    /// `f64::MIN_POSITIVE` exactly like [`crate::timing::analyze`].
    #[must_use]
    pub fn critical_ns(&self) -> f64 {
        self.dmax.max(f64::MIN_POSITIVE)
    }

    /// Maximum clock frequency in MHz implied by [`critical_ns`](Self::critical_ns).
    #[must_use]
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / self.critical_ns()
    }

    /// Slack of the worst path through `net` against the current critical
    /// path (`critical_ns − (arrival + downstream)`); `f64::INFINITY` for
    /// nets with no timing sinks. The critical path itself has slack 0.
    #[must_use]
    pub fn slack(&self, net: NetId) -> f64 {
        let i = net.index();
        if self.downstream[i] == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            self.critical_ns() - (self.arrival[i] + self.downstream[i])
        }
    }

    /// VPR-style criticality of `net` in `[0, 1]`: the worst path through
    /// the net as a fraction of the critical path. Nets without timing
    /// sinks score 0. Callers apply their own criticality exponent.
    #[must_use]
    pub fn criticality(&self, net: NetId) -> f64 {
        let i = net.index();
        if self.dmax <= 0.0 {
            return 0.0;
        }
        ((self.arrival[i] + self.downstream[i]) / self.dmax).clamp(0.0, 1.0)
    }

    /// The arrival-time formula — the single source of truth shared by the
    /// incremental wavefront and the full recompute (bit-identity between
    /// them is by construction).
    fn arrival_of(&self, i: usize) -> f64 {
        match self.launch[i] {
            Launch::Input => self.model.pad + self.wire[i],
            Launch::FfQ => self.model.ff_clk_to_q + self.wire[i],
            Launch::BramDout => self.model.bram_clk_to_out + self.wire[i],
            Launch::Const | Launch::Undriven => 0.0,
            Launch::Lut(li) => {
                let mut worst = 0.0f64;
                for input in &self.lut_inputs[li as usize] {
                    worst = worst.max(self.arrival[input.index()]);
                }
                worst + self.model.lut + self.wire[i]
            }
        }
    }

    /// The downstream-delay formula (same single-source-of-truth role as
    /// [`Self::arrival_of`]).
    fn downstream_of(&self, i: usize) -> f64 {
        let mut worst = f64::NEG_INFINITY;
        for s in &self.sinks[i] {
            let c = match s {
                Sink::Setup(extra) => *extra,
                Sink::Lut(li) => {
                    let out = self.lut_output[*li as usize].index();
                    self.model.lut + self.wire[out] + self.downstream[out]
                }
            };
            worst = worst.max(c);
        }
        worst
    }

    fn scan_dmax(&self) -> f64 {
        let mut m = 0.0f64;
        for (net, extra) in &self.endpoints {
            m = m.max(self.arrival[net.index()] + extra);
        }
        m
    }
}

/// Estimated critical path (ns) of a placement, before routing: kernel
/// wire delays from each net's placed bounding box
/// (`net_base + net_per_hop · hpwl`, zero-hop for sub-2-pin nets). This is
/// the quantity the timing-driven anneal optimizes, re-derived
/// deterministically from the final placement.
///
/// # Errors
///
/// Propagates [`NetlistError`] if the netlist fails validation.
pub fn estimate_critical_ns(
    netlist: &Netlist,
    packed: &PackedDesign,
    placement: &Placement,
    model: &DelayModel,
) -> Result<f64, NetlistError> {
    let mut kernel = TimingKernel::new(netlist, model)?;
    let pins = crate::place::build_net_pins(netlist, packed);
    let loc = |e| placement.location(e);
    for (i, p) in pins.iter().enumerate() {
        let hpwl = crate::place::hpwl_of_net(p, &loc);
        kernel.set_wire_delay(NetId(i as u32), model.net_base + model.net_per_hop * hpwl);
    }
    kernel.flush();
    Ok(kernel.critical_ns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BramShape, Device};
    use crate::pack::pack;
    use crate::place::{place, PlaceOptions};
    use crate::route::{route, RouteOptions};
    use crate::timing::analyze;

    /// FF -> chain of `depth` LUTs -> FF, one primary input mixed in.
    fn chain(depth: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let pi = n.add_net("pi");
        n.add_input("pi", pi);
        let q0 = n.add_net("q0");
        let mut prev = q0;
        for i in 0..depth {
            let o = n.add_net(format!("l{i}"));
            let ins = if i == 0 { vec![prev, pi] } else { vec![prev] };
            let truth = if ins.len() == 2 { 0b0110 } else { 0b01 };
            n.add_cell(Cell::Lut {
                inputs: ins,
                output: o,
                truth,
            });
            prev = o;
        }
        n.add_cell(Cell::Ff {
            d: prev,
            q: q0,
            ce: None,
            init: false,
        });
        n.add_output("o", prev);
        n
    }

    /// With wire delays taken from the routed design, the kernel must
    /// reproduce `analyze`'s critical path exactly — same formulas, same
    /// operands.
    #[test]
    fn kernel_reproduces_analyze_on_routed_wirelengths() {
        for netlist in [chain(1), chain(6), bram_design()] {
            let packed = pack(&netlist);
            let opts = PlaceOptions {
                timing_weight: 0.0,
                ..PlaceOptions::default()
            };
            let pl = place(&netlist, &packed, Device::xc2v250(), opts).unwrap();
            let routed = route(&netlist, &packed, &pl, RouteOptions::default()).unwrap();
            let model = DelayModel::default();
            let report = analyze(&netlist, &routed, &model);

            let mut kernel = TimingKernel::new(&netlist, &model).unwrap();
            for i in 0..netlist.num_nets() {
                let w = model.net_base + model.net_per_hop * routed.wirelength(NetId(i as u32)) as f64;
                kernel.set_wire_delay(NetId(i as u32), w);
            }
            kernel.flush();
            assert_eq!(
                kernel.critical_ns().to_bits(),
                report.critical_path_ns.to_bits(),
                "kernel vs analyze on {}",
                netlist.name
            );
            assert!(kernel.full_retime(), "incremental drifted from full");
        }
    }

    fn bram_design() -> Netlist {
        let mut n = Netlist::new("bram");
        let addr: Vec<NetId> = (0..4).map(|i| n.add_net(format!("a{i}"))).collect();
        let dout: Vec<NetId> = (0..4).map(|i| n.add_net(format!("d{i}"))).collect();
        let en = n.add_net("en");
        let eni = n.add_net("eni");
        n.add_input("eni", eni);
        n.add_cell(Cell::Lut {
            inputs: vec![eni, dout[3]],
            output: en,
            truth: 0b1000,
        });
        n.add_cell(Cell::Bram {
            shape: BramShape {
                addr_bits: 4,
                data_bits: 4,
            },
            addr: addr.clone(),
            dout: dout.clone(),
            en: Some(en),
            init: vec![0b0101; 16],
            output_init: 0,
            write: None,
        });
        for (i, a) in addr.iter().enumerate() {
            n.add_cell(Cell::Lut {
                inputs: vec![dout[i]],
                output: *a,
                truth: 0b01,
            });
        }
        n.add_output("d0", dout[0]);
        n
    }

    #[test]
    fn incremental_updates_match_full_recompute() {
        let n = chain(8);
        let model = DelayModel::default();
        let mut kernel = TimingKernel::new(&n, &model).unwrap();
        let nets = n.num_nets();
        // A deterministic little LCG drives wire edits; after each flush
        // the incremental state must be bit-identical to a full recompute.
        let mut state = 0x1234_5678u64;
        for step in 0..200 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let net = NetId((state >> 33) as u32 % nets as u32);
            let hops = (state >> 17) % 40;
            kernel.set_wire_delay(net, model.net_base + model.net_per_hop * hops as f64);
            if step % 3 == 0 {
                kernel.flush();
                let mut fresh = kernel.clone();
                fresh.full_retime();
                assert!(kernel.clone().full_retime(), "drift at step {step}");
                assert_eq!(fresh.critical_ns().to_bits(), kernel.critical_ns().to_bits());
            }
        }
    }

    #[test]
    fn criticality_is_one_on_the_critical_path_and_bounded() {
        let n = chain(5);
        let model = DelayModel::default();
        let mut kernel = TimingKernel::new(&n, &model).unwrap();
        kernel.flush();
        let mut saw_one = false;
        for i in 0..n.num_nets() {
            let c = kernel.criticality(NetId(i as u32));
            assert!((0.0..=1.0).contains(&c), "criticality out of range: {c}");
            if (c - 1.0).abs() < 1e-15 {
                saw_one = true;
                assert!(kernel.slack(NetId(i as u32)).abs() < 1e-9);
            }
        }
        assert!(saw_one, "some net must be critical");
    }

    #[test]
    fn longer_wire_on_the_critical_path_slows_the_clock() {
        let n = chain(4);
        let model = DelayModel::default();
        let mut kernel = TimingKernel::new(&n, &model).unwrap();
        kernel.flush();
        let before = kernel.critical_ns();
        // Find the critical net and stretch it.
        let crit = (0..n.num_nets())
            .map(|i| NetId(i as u32))
            .find(|&net| kernel.criticality(net) >= 1.0 - 1e-12)
            .unwrap();
        kernel.set_wire_delay(crit, kernel.wire_delay(crit) + 5.0);
        kernel.flush();
        assert!(kernel.critical_ns() > before + 4.9);
        assert!(kernel.full_retime());
    }
}
