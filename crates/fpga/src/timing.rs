//! Static timing analysis.
//!
//! Computes the critical register-to-register (or pad-to-pad) path of a
//! placed-and-routed design using Virtex-II-flavoured delays: LUT logic
//! delay, per-hop interconnect delay, FF clock-to-out/setup, and the
//! block RAM's clock-to-data-out and address setup.
//!
//! The model backs two of the paper's claims:
//!
//! * a BRAM FSM's critical path is *fixed* — BRAM output back to its own
//!   address pins — regardless of FSM complexity ("no matter how many
//!   state transitions an FSM may have the timing of it does not change",
//!   Sec. 4), while the FF FSM's path grows with its LUT depth;
//! * clock-control logic sits in front of the enable pin and *slows the
//!   design* proportionally to its own depth (Sec. 6).

use crate::netlist::{Cell, CellId, NetId, Netlist};
use crate::route::RoutedDesign;
use std::collections::HashMap;

/// Delay parameters in nanoseconds (Virtex-II -6 speed-grade flavour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// LUT4 logic delay.
    pub lut: f64,
    /// FF clock-to-out.
    pub ff_clk_to_q: f64,
    /// FF setup time.
    pub ff_setup: f64,
    /// BRAM clock-to-data-out.
    pub bram_clk_to_out: f64,
    /// BRAM address/enable setup.
    pub bram_setup: f64,
    /// Fixed net delay per connection.
    pub net_base: f64,
    /// Additional net delay per routed tile hop.
    pub net_per_hop: f64,
    /// Pad delay (IBUF/OBUF).
    pub pad: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel {
            lut: 0.44,
            ff_clk_to_q: 0.37,
            ff_setup: 0.23,
            bram_clk_to_out: 2.10,
            bram_setup: 0.42,
            net_base: 0.25,
            net_per_hop: 0.08,
            pad: 0.80,
        }
    }
}

/// Result of timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Critical path delay in ns.
    pub critical_path_ns: f64,
    /// Maximum clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Nets on the critical path (driver-ordered), for reporting.
    pub critical_nets: Vec<NetId>,
}

/// Analyzes a validated, routed design.
///
/// # Panics
///
/// Panics if the netlist fails validation (callers validate first).
#[must_use]
pub fn analyze(netlist: &Netlist, routed: &RoutedDesign, model: &DelayModel) -> TimingReport {
    let order = netlist
        .validate()
        .expect("timing analysis requires a valid netlist");
    let driver = netlist.driver_map();

    let net_delay =
        |net: NetId| -> f64 { model.net_base + model.net_per_hop * routed.wirelength(net) as f64 };

    // Arrival time at each net, plus the predecessor net for path recovery.
    let mut arrival: HashMap<NetId, f64> = HashMap::new();
    let mut pred: HashMap<NetId, NetId> = HashMap::new();

    // Launch points: top inputs (pad), FF outputs, BRAM outputs.
    for (_, net) in netlist.inputs() {
        arrival.insert(*net, model.pad + net_delay(*net));
    }
    for cell in netlist.cells() {
        match cell {
            Cell::Ff { q, .. } => {
                arrival.insert(*q, model.ff_clk_to_q + net_delay(*q));
            }
            Cell::Bram { dout, .. } => {
                for d in dout {
                    arrival.insert(*d, model.bram_clk_to_out + net_delay(*d));
                }
            }
            Cell::Const { output, .. } => {
                arrival.insert(*output, 0.0);
            }
            Cell::Lut { .. } => {}
        }
    }

    // Propagate through combinational cells in topological order.
    for id in &order {
        if let Cell::Lut { inputs, output, .. } = netlist.cell(*id) {
            let mut worst = 0.0f64;
            let mut worst_net = None;
            for i in inputs {
                let a = arrival.get(i).copied().unwrap_or(0.0);
                if a >= worst {
                    worst = a;
                    worst_net = Some(*i);
                }
            }
            arrival.insert(*output, worst + model.lut + net_delay(*output));
            if let Some(wn) = worst_net {
                pred.insert(*output, wn);
            }
        }
    }

    // Required points: FF D/CE (setup), BRAM addr/en (setup), top outputs
    // (pad).
    let mut critical = 0.0f64;
    let mut critical_end: Option<NetId> = None;
    let consider = |net: NetId, extra: f64, critical: &mut f64, end: &mut Option<NetId>| {
        let a = arrival.get(&net).copied().unwrap_or(0.0) + extra;
        if a > *critical {
            *critical = a;
            *end = Some(net);
        }
    };
    for cell in netlist.cells() {
        match cell {
            Cell::Ff { d, ce, .. } => {
                consider(*d, model.ff_setup, &mut critical, &mut critical_end);
                if let Some(ce) = ce {
                    consider(*ce, model.ff_setup, &mut critical, &mut critical_end);
                }
            }
            Cell::Bram { addr, en, .. } => {
                for a in addr {
                    consider(*a, model.bram_setup, &mut critical, &mut critical_end);
                }
                if let Some(en) = en {
                    consider(*en, model.bram_setup, &mut critical, &mut critical_end);
                }
            }
            _ => {}
        }
    }
    for (_, net) in netlist.outputs() {
        consider(*net, model.pad, &mut critical, &mut critical_end);
    }

    // Recover the critical net chain.
    let mut critical_nets = Vec::new();
    let mut cur = critical_end;
    while let Some(net) = cur {
        critical_nets.push(net);
        cur = pred.get(&net).copied();
        if critical_nets.len() > netlist.num_nets() {
            break; // defensive: cannot cycle in a valid design
        }
    }
    critical_nets.reverse();

    let _ = driver; // driver map retained for future hold analysis
    let critical_path_ns = critical.max(f64::MIN_POSITIVE);
    TimingReport {
        critical_path_ns,
        fmax_mhz: 1000.0 / critical_path_ns,
        critical_nets,
    }
}

/// The set of sequential cells (used by reports).
#[must_use]
pub fn sequential_cells(netlist: &Netlist) -> Vec<CellId> {
    netlist
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_sequential())
        .map(|(i, _)| CellId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BramShape, Device};
    use crate::pack::pack;
    use crate::place::{place, PlaceOptions};
    use crate::route::{route, RouteOptions};

    fn analyze_netlist(n: &Netlist) -> TimingReport {
        let p = pack(n);
        let pl = place(n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let r = route(n, &p, &pl, RouteOptions::default()).unwrap();
        analyze(n, &r, &DelayModel::default())
    }

    /// FF -> chain of `depth` LUTs -> FF.
    fn lut_chain(depth: usize) -> Netlist {
        let mut n = Netlist::new("lc");
        let q0 = n.add_net("q0");
        let mut prev = q0;
        for i in 0..depth {
            let o = n.add_net(format!("l{i}"));
            n.add_cell(Cell::Lut {
                inputs: vec![prev],
                output: o,
                truth: 0b01,
            });
            prev = o;
        }
        let q1 = n.add_net("q1");
        n.add_cell(Cell::Ff {
            d: prev,
            q: q0,
            ce: None,
            init: false,
        });
        n.add_cell(Cell::Ff {
            d: prev,
            q: q1,
            ce: None,
            init: false,
        });
        n.add_output("q1", q1);
        n
    }

    #[test]
    fn deeper_logic_is_slower() {
        let shallow = analyze_netlist(&lut_chain(2));
        let deep = analyze_netlist(&lut_chain(10));
        assert!(deep.critical_path_ns > shallow.critical_path_ns);
        assert!(deep.fmax_mhz < shallow.fmax_mhz);
    }

    #[test]
    fn bram_loop_timing_is_flat() {
        // BRAM dout -> own addr: the EMB FSM's fixed critical path.
        let make = |addr_bits: usize, data_bits: usize, shape: BramShape| {
            let mut n = Netlist::new("rom");
            let addr: Vec<NetId> = (0..addr_bits).map(|i| n.add_net(format!("a{i}"))).collect();
            let dout: Vec<NetId> = (0..data_bits).map(|i| n.add_net(format!("d{i}"))).collect();
            // Feed low dout bits back to addr (pad shortfall with inputs).
            let mut full_addr = Vec::new();
            for i in 0..addr_bits {
                if i < dout.len() {
                    full_addr.push(dout[i]);
                } else {
                    let pin = n.add_net(format!("in{i}"));
                    n.add_input(format!("in{i}"), pin);
                    full_addr.push(pin);
                }
            }
            let _ = addr;
            n.add_cell(Cell::Bram {
                shape,
                addr: full_addr,
                dout: dout.clone(),
                en: None,
                init: vec![0; shape.depth()],
                output_init: 0,
                write: None,
            });
            n.add_output("d0", dout[0]);
            n
        };
        let s9 = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let small = analyze_netlist(&make(9, 4, s9));
        let large = analyze_netlist(&make(9, 16, s9));
        // Same structure, more data pins: path delay stays within routing
        // noise (no LUT levels added).
        let ratio = large.critical_path_ns / small.critical_path_ns;
        assert!(ratio < 1.5, "BRAM loop timing should be ~flat, got {ratio}");
    }

    #[test]
    fn critical_path_nets_are_recovered() {
        let rep = analyze_netlist(&lut_chain(5));
        assert!(!rep.critical_nets.is_empty());
        assert!(rep.critical_nets.len() >= 5, "chain should dominate");
    }

    #[test]
    fn fmax_matches_period() {
        let rep = analyze_netlist(&lut_chain(3));
        assert!((rep.fmax_mhz - 1000.0 / rep.critical_path_ns).abs() < 1e-9);
    }
}
