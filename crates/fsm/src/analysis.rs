//! Structural analyses over an [`Stg`]: reachability, input support, and
//! the idle-condition extraction that drives the paper's clock-control
//! technique (Sec. 6).
//!
//! [`Stg`]: crate::stg::Stg

use crate::pattern::{Pattern, Trit};
use crate::stg::{StateId, Stg};
use std::collections::{BTreeSet, VecDeque};

/// States reachable from the reset state (including it).
#[must_use]
pub fn reachable_states(stg: &Stg) -> Vec<StateId> {
    let mut seen = vec![false; stg.num_states()];
    let mut queue = VecDeque::new();
    seen[stg.reset_state().index()] = true;
    queue.push_back(stg.reset_state());
    while let Some(s) = queue.pop_front() {
        for t in stg.transitions_from(s) {
            if !seen[t.to.index()] {
                seen[t.to.index()] = true;
                queue.push_back(t.to);
            }
        }
    }
    (0..stg.num_states())
        .filter(|&i| seen[i])
        .map(|i| StateId(i as u32))
        .collect()
}

/// Returns a copy of the machine restricted to reachable states.
///
/// State ids are compacted; the reset state keeps its role. Transitions from
/// unreachable states are dropped.
#[must_use]
pub fn prune_unreachable(stg: &Stg) -> Stg {
    let reach = reachable_states(stg);
    if reach.len() == stg.num_states() {
        return stg.clone();
    }
    let mut remap = vec![None; stg.num_states()];
    for (new, old) in reach.iter().enumerate() {
        remap[old.index()] = Some(StateId(new as u32));
    }
    let names: Vec<String> = reach
        .iter()
        .map(|s| stg.state_name(*s).to_string())
        .collect();
    let transitions = stg
        .transitions()
        .iter()
        .filter(|t| remap[t.from.index()].is_some() && remap[t.to.index()].is_some())
        .map(|t| crate::stg::Transition {
            from: remap[t.from.index()].expect("filtered"),
            input: t.input.clone(),
            to: remap[t.to.index()].expect("filtered"),
            output: t.output.clone(),
        })
        .collect();
    let reset = remap[stg.reset_state().index()].expect("reset is always reachable");
    Stg::new(
        stg.name().to_string(),
        stg.num_inputs(),
        stg.num_outputs(),
        names,
        transitions,
        reset,
    )
    .expect("pruning preserves validity")
}

/// The set of input columns a state actually reads: the union, over its
/// outgoing transitions, of the specified (non-don't-care) input positions.
///
/// This is the per-state quantity `i` in the paper's column-compaction step
/// (Fig. 4 / Fig. 5 lines 11–14): if all rows of a state leave a column
/// don't-care, that column can be dropped for that state.
#[must_use]
pub fn state_input_support(stg: &Stg, state: StateId) -> BTreeSet<usize> {
    let mut used = BTreeSet::new();
    for t in stg.transitions_from(state) {
        used.extend(t.input.specified_positions());
    }
    used
}

/// The maximum, over all states, of the number of input columns the state
/// reads — the `i` of Fig. 5 line 11 ("the maximum number of inputs any
/// state uses excluding don't care bits").
#[must_use]
pub fn max_state_input_support(stg: &Stg) -> usize {
    stg.states()
        .map(|s| state_input_support(stg, s).len())
        .max()
        .unwrap_or(0)
}

/// An idle condition: while in `state`, any input matching `input` causes
/// no state change and no output change, so the implementation's clock (or
/// BRAM enable) can be safely stopped (paper Sec. 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleCondition {
    /// The state in which the machine idles.
    pub state: StateId,
    /// Input cube under which it idles.
    pub input: Pattern,
    /// The outputs held while idling (zero-resolved).
    pub held_outputs: Vec<bool>,
}

/// Extracts all idle conditions from the STG.
///
/// A transition contributes an idle condition when it is a self-loop whose
/// output equals the output the machine is already holding. For a Moore
/// machine the held output is the state's entry output; for a Mealy machine
/// the held output depends on the previous transition, so a self-loop is
/// idle only relative to a *given* held output — the clock-control logic
/// must then also observe the output register, which is exactly why the
/// paper feeds FSM outputs into the Mealy clock-control cone.
///
/// This function enumerates `(state, input-cube, held-output)` triples:
/// self-loop transitions `s --c/o--> s` are idle whenever the latched output
/// already equals `o`.
#[must_use]
pub fn idle_conditions(stg: &Stg) -> Vec<IdleCondition> {
    let mut out = Vec::new();
    for t in stg.transitions() {
        if t.from == t.to {
            out.push(IdleCondition {
                state: t.from,
                input: t.input.clone(),
                held_outputs: t.output.resolve_zero(),
            });
        }
    }
    out
}

/// Summary statistics of an STG, as used for Table 1-style reporting and the
/// synthetic benchmark generator's signature matching.
#[derive(Debug, Clone, PartialEq)]
pub struct StgStats {
    /// Number of states.
    pub states: usize,
    /// Number of inputs.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Number of transitions (STG edges / KISS2 products).
    pub transitions: usize,
    /// Fraction of input-field trits that are don't-cares.
    pub input_dc_density: f64,
    /// Number of self-loop transitions.
    pub self_loops: usize,
    /// Maximum per-state input support (see [`max_state_input_support`]).
    pub max_input_support: usize,
}

/// Computes [`StgStats`] for a machine.
#[must_use]
pub fn stats(stg: &Stg) -> StgStats {
    let total_trits: usize = stg.transitions().len() * stg.num_inputs();
    let dc: usize = stg
        .transitions()
        .iter()
        .map(|t| {
            t.input
                .trits()
                .iter()
                .filter(|x| matches!(x, Trit::DontCare))
                .count()
        })
        .sum();
    StgStats {
        states: stg.num_states(),
        inputs: stg.num_inputs(),
        outputs: stg.num_outputs(),
        transitions: stg.transitions().len(),
        input_dc_density: if total_trits == 0 {
            0.0
        } else {
            dc as f64 / total_trits as f64
        },
        self_loops: stg.transitions().iter().filter(|t| t.from == t.to).count(),
        max_input_support: max_state_input_support(stg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StgBuilder;

    fn with_unreachable() -> Stg {
        let mut b = StgBuilder::new("u", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        let dead = b.state("Z");
        b.transition(a, "1", c, "0");
        b.transition(c, "-", a, "1");
        b.transition(dead, "-", a, "0");
        b.build().unwrap()
    }

    #[test]
    fn reachability_excludes_dead_states() {
        let stg = with_unreachable();
        let r = reachable_states(&stg);
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&StateId(2)));
    }

    #[test]
    fn prune_compacts_ids() {
        let stg = with_unreachable();
        let pruned = prune_unreachable(&stg);
        assert_eq!(pruned.num_states(), 2);
        assert_eq!(pruned.transitions().len(), 2);
        assert_eq!(pruned.state_name(pruned.reset_state()), "A");
        // Behaviour preserved on reachable part.
        let (n1, o1) = stg.step(StateId(0), &[true]);
        let (n2, o2) = pruned.step(StateId(0), &[true]);
        assert_eq!(stg.state_name(n1), pruned.state_name(n2));
        assert_eq!(o1, o2);
    }

    #[test]
    fn prune_noop_when_all_reachable() {
        let mut b = StgBuilder::new("r", 1, 1);
        let a = b.state("A");
        b.transition(a, "-", a, "0");
        let stg = b.build().unwrap();
        assert_eq!(prune_unreachable(&stg), stg);
    }

    #[test]
    fn input_support_ignores_dont_cares() {
        let mut b = StgBuilder::new("s", 4, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "1--0", c, "0"); // reads columns 0 and 3
        b.transition(a, "0---", a, "0"); // reads column 0
        b.transition(c, "-1--", a, "0"); // reads column 1
        let stg = b.build().unwrap();
        let sup_a: Vec<usize> = state_input_support(&stg, StateId(0)).into_iter().collect();
        assert_eq!(sup_a, vec![0, 3]);
        let sup_b: Vec<usize> = state_input_support(&stg, StateId(1)).into_iter().collect();
        assert_eq!(sup_b, vec![1]);
        assert_eq!(max_state_input_support(&stg), 2);
    }

    #[test]
    fn idle_conditions_are_self_loops() {
        let mut b = StgBuilder::new("i", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "0", a, "0"); // idle when holding 0
        b.transition(a, "1", c, "1");
        b.transition(c, "1", c, "1"); // idle when holding 1
        b.transition(c, "0", a, "0");
        let stg = b.build().unwrap();
        let idles = idle_conditions(&stg);
        assert_eq!(idles.len(), 2);
        assert_eq!(idles[0].state, StateId(0));
        assert_eq!(idles[0].held_outputs, vec![false]);
        assert_eq!(idles[1].state, StateId(1));
        assert_eq!(idles[1].held_outputs, vec![true]);
    }

    #[test]
    fn stats_shape() {
        let stg = with_unreachable();
        let st = stats(&stg);
        assert_eq!(st.states, 3);
        assert_eq!(st.transitions, 3);
        assert_eq!(st.self_loops, 0);
        assert!(st.input_dc_density > 0.0);
    }
}
