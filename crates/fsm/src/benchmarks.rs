//! The paper's benchmark suite.
//!
//! The evaluation (Sec. 5) uses nine FSMs: eight from the MCNC LOGIC
//! SYNTHESIS '91 set (dk16, tbk, keyb, donfile, sand, styr, ex1, planet)
//! plus PREP4 from the PREP suite. The original KISS2 files are not
//! bundled; [`paper_suite`] regenerates machines with each benchmark's
//! published structural signature via the seeded generator (see
//! `DESIGN.md` §2 for why this preserves the experiments' shape). Real
//! KISS2 files can be used instead through [`crate::kiss2::parse`].
//!
//! Hand-written machines used by the paper's worked examples (the 0101
//! sequence detector of Fig. 2) and by this crate's own examples are also
//! provided.

use crate::generate::{generate, StgSpec};
use crate::stg::{Stg, StgBuilder};

/// Signature of one benchmark: the published MCNC/PREP statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSignature {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// States.
    pub states: usize,
    /// KISS2 product terms (transitions).
    pub transitions: usize,
    /// Cap on per-state input support used for regeneration; chosen so
    /// machines with many inputs exhibit the per-state don't-care columns
    /// that make the paper's column compaction (Fig. 4) applicable.
    pub max_support: usize,
}

/// Published signatures of the nine benchmarks in the paper's tables,
/// in the paper's row order.
pub const PAPER_BENCHMARKS: [BenchmarkSignature; 9] = [
    BenchmarkSignature {
        name: "prep4",
        inputs: 8,
        outputs: 8,
        states: 16,
        transitions: 61,
        max_support: 4,
    },
    BenchmarkSignature {
        name: "dk16",
        inputs: 2,
        outputs: 3,
        states: 27,
        transitions: 108,
        max_support: 2,
    },
    BenchmarkSignature {
        name: "tbk",
        inputs: 6,
        outputs: 3,
        states: 32,
        transitions: 1569,
        max_support: 6,
    },
    BenchmarkSignature {
        name: "keyb",
        inputs: 7,
        outputs: 2,
        states: 19,
        transitions: 170,
        max_support: 5,
    },
    BenchmarkSignature {
        name: "donfile",
        inputs: 2,
        outputs: 1,
        states: 24,
        transitions: 96,
        max_support: 2,
    },
    BenchmarkSignature {
        name: "sand",
        inputs: 11,
        outputs: 9,
        states: 32,
        transitions: 184,
        max_support: 4,
    },
    BenchmarkSignature {
        name: "styr",
        inputs: 9,
        outputs: 10,
        states: 30,
        transitions: 166,
        max_support: 4,
    },
    BenchmarkSignature {
        name: "ex1",
        inputs: 9,
        outputs: 19,
        states: 20,
        transitions: 138,
        max_support: 4,
    },
    BenchmarkSignature {
        name: "planet",
        inputs: 7,
        outputs: 19,
        states: 48,
        transitions: 115,
        max_support: 3,
    },
];

/// Deterministic seed for a benchmark name (stable across releases).
fn seed_for(name: &str) -> u64 {
    // FNV-1a, fixed parameters: reproducible forever, independent of std.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Regenerates one benchmark from its signature.
#[must_use]
pub fn from_signature(sig: &BenchmarkSignature) -> Stg {
    generate(&StgSpec {
        name: sig.name.to_string(),
        states: sig.states,
        inputs: sig.inputs,
        outputs: sig.outputs,
        transitions: sig.transitions,
        max_support: Some(sig.max_support),
        self_loop_bias: 0.0,
        moore: false,
        // Real control FSMs have a quiescent condition (no request
        // pending); modeling it keeps the Sec. 6 idle logic compact, as in
        // the paper's Table 4.
        idle_line: Some(0),
        dont_care_density: 0.0,
        fanout_skew: 0.0,
        seed: seed_for(sig.name),
    })
    // The nine signatures are static and well-formed; a failure here is a
    // generator regression, not an input problem.
    .expect("paper-suite signatures generate")
}

/// The benchmark by name, if it is part of the paper suite.
#[must_use]
pub fn by_name(name: &str) -> Option<Stg> {
    PAPER_BENCHMARKS
        .iter()
        .find(|s| s.name == name)
        .map(from_signature)
}

/// All nine paper benchmarks, in table row order.
#[must_use]
pub fn paper_suite() -> Vec<Stg> {
    PAPER_BENCHMARKS.iter().map(from_signature).collect()
}

/// The 0101 sequence detector of the paper's Figure 2 (Mealy).
///
/// "The output of this sequence detector is 0 till the last 1; if the
/// sequence is detected, at which time it becomes 1."
#[must_use]
pub fn sequence_detector_0101() -> Stg {
    let mut b = StgBuilder::new("seq0101", 1, 1);
    let a = b.state("A");
    let s_b = b.state("B");
    let c = b.state("C");
    let d = b.state("D");
    b.transition(a, "0", s_b, "0"); // saw 0
    b.transition(a, "1", a, "0");
    b.transition(s_b, "1", c, "0"); // saw 01
    b.transition(s_b, "0", s_b, "0");
    b.transition(c, "0", d, "0"); // saw 010
    b.transition(c, "1", a, "0");
    b.transition(d, "1", c, "1"); // saw 0101 -> detect, overlap continues at 01
    b.transition(d, "0", s_b, "0");
    b.build().expect("detector is valid")
}

/// A Moore traffic-light controller with a pedestrian request input and a
/// long idle period — a classic control unit of the kind the paper's
/// introduction motivates (battery-powered devices idling most of the
/// time).
///
/// Inputs: `[timer_expired, ped_request]`.
/// Outputs: `[car_green, car_yellow, car_red, walk]`.
#[must_use]
pub fn traffic_light() -> Stg {
    let mut b = StgBuilder::new("traffic", 2, 4);
    let green = b.state("GREEN");
    let yellow = b.state("YELLOW");
    let red = b.state("RED");
    let walk = b.state("WALK");
    // GREEN: idle until a pedestrian request AND timer expiry.
    b.transition(green, "0-", green, "1000");
    b.transition(green, "10", green, "1000");
    b.transition(green, "11", yellow, "0100");
    // YELLOW: one timer period then red.
    b.transition(yellow, "0-", yellow, "0100");
    b.transition(yellow, "1-", red, "0010");
    // RED: grant the walk phase.
    b.transition(red, "0-", red, "0010");
    b.transition(red, "1-", walk, "0011");
    // WALK: back to green when the timer expires.
    b.transition(walk, "0-", walk, "0011");
    b.transition(walk, "1-", green, "1000");
    b.build().expect("traffic light is valid")
}

/// An 8-state one-hot-output rotary sequencer (Moore): a microprogram-style
/// step counter with a `halt` input that freezes it — maximally idle when
/// halted, exercising the clock-control path.
///
/// Inputs: `[halt]`. Outputs: one-hot step indicator (8 bits).
#[must_use]
pub fn rotary_sequencer() -> Stg {
    let mut b = StgBuilder::new("rotary8", 1, 8);
    let ids: Vec<_> = (0..8).map(|i| b.state(format!("STEP{i}"))).collect();
    for i in 0..8usize {
        let onehot: String = (0..8)
            .map(|k| if k == (i + 1) % 8 { '1' } else { '0' })
            .collect();
        let hold: String = (0..8).map(|k| if k == i { '1' } else { '0' }).collect();
        b.transition(ids[i], "0", ids[(i + 1) % 8], &onehot);
        b.transition(ids[i], "1", ids[i], &hold);
    }
    b.build().expect("rotary sequencer is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{reachable_states, stats};
    use crate::machine::{classify, FsmKind};

    #[test]
    fn suite_has_nine_rows_in_paper_order() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 9);
        assert_eq!(suite[0].name(), "prep4");
        assert_eq!(suite[8].name(), "planet");
    }

    #[test]
    fn signatures_are_respected() {
        for sig in &PAPER_BENCHMARKS {
            let stg = from_signature(sig);
            let st = stats(&stg);
            assert_eq!(st.states, sig.states, "{}", sig.name);
            assert_eq!(st.inputs, sig.inputs, "{}", sig.name);
            assert_eq!(st.outputs, sig.outputs, "{}", sig.name);
            assert!(st.max_input_support <= sig.max_support, "{}", sig.name);
            assert!(stg.is_deterministic(), "{} must be deterministic", sig.name);
            assert_eq!(
                reachable_states(&stg).len(),
                sig.states,
                "{} must be fully reachable",
                sig.name
            );
        }
    }

    #[test]
    fn transition_counts_are_close_to_published() {
        for sig in &PAPER_BENCHMARKS {
            let stg = from_signature(sig);
            let got = stg.transitions().len();
            // The splitter can fall short when per-state subspaces saturate;
            // require the right order of magnitude.
            assert!(
                got as f64 >= 0.5 * sig.transitions as f64,
                "{}: got {} transitions, signature says {}",
                sig.name,
                got,
                sig.transitions
            );
        }
    }

    #[test]
    fn by_name_finds_and_rejects() {
        assert!(by_name("planet").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn regeneration_is_stable() {
        let a = by_name("keyb").unwrap();
        let b = by_name("keyb").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn handwritten_machines_classify_correctly() {
        assert_eq!(classify(&sequence_detector_0101()), FsmKind::Mealy);
        assert_eq!(classify(&traffic_light()), FsmKind::Moore);
        assert_eq!(classify(&rotary_sequencer()), FsmKind::Moore);
    }

    #[test]
    fn traffic_light_cycles() {
        let stg = traffic_light();
        let mut sim = crate::simulate::StgSimulator::new(&stg);
        // ped request + timer -> yellow -> red -> walk -> green
        sim.clock(&[true, true]);
        assert_eq!(stg.state_name(sim.state()), "YELLOW");
        sim.clock(&[true, false]);
        assert_eq!(stg.state_name(sim.state()), "RED");
        sim.clock(&[true, false]);
        assert_eq!(stg.state_name(sim.state()), "WALK");
        assert_eq!(sim.outputs(), &[false, false, true, true]);
        sim.clock(&[true, false]);
        assert_eq!(stg.state_name(sim.state()), "GREEN");
    }

    #[test]
    fn rotary_halt_freezes() {
        let stg = rotary_sequencer();
        let mut sim = crate::simulate::StgSimulator::new(&stg);
        sim.clock(&[false]);
        sim.clock(&[false]);
        let s = sim.state();
        sim.clock(&[true]);
        assert_eq!(sim.state(), s);
        let out = sim.outputs().to_vec();
        assert_eq!(out.iter().filter(|&&b| b).count(), 1, "one-hot output");
    }
}
